//! The flight recorder must observe, never perturb — and everything it
//! emits (Chrome traces, transfer accounting, flight dumps) must be
//! internally consistent and reproducible.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;

use owan::chaos::{run_chaos_traced, seeded_scenario, ChaosConfig, OpFaultModel};
use owan::core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, TrafficEngineer, TransferRequest,
};
use owan::obs::Recorder;
use owan::scope::{jsonv, FlightDump, MetricsServer, ScopeConfig, ScopeRecorder};
use owan::sim::runner::{run_engine, run_engine_traced, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::isp::ISP_SITES;
use owan::topo::{internet2_testbed, isp_backbone, Network};
use owan::workload::{generate, WorkloadConfig};

fn fast_runner(iters: usize) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            max_slots: 400,
            ..Default::default()
        },
        anneal_iterations: iters,
        seed: 11,
        ..Default::default()
    }
}

fn isp_workload(load: f64, take: usize) -> (Network, Vec<TransferRequest>) {
    let net = isp_backbone(42);
    let mut cfg = WorkloadConfig::simulation(load, 42);
    cfg.duration_s = 3_000.0;
    let requests: Vec<_> = generate(&net, &cfg).into_iter().take(take).collect();
    (net, requests)
}

/// The Fig-10 network (40-site ISP backbone) run under the scope must
/// export a valid Chrome trace: parseable JSON, properly nested B/E
/// pairs, and spans from all five subsystems.
#[test]
fn isp_fig10_run_exports_valid_nested_chrome_trace() {
    assert_eq!(ISP_SITES, 40, "Fig-10 backbone must have 40 sites");
    let (net, requests) = isp_workload(0.6, 10);
    let recorder = Recorder::enabled();
    let scope = ScopeRecorder::enabled(ScopeConfig::default());
    let result = run_engine_traced(
        EngineKind::Owan,
        &net,
        &requests,
        &fast_runner(40),
        &recorder,
        &scope,
    );
    assert!(result.all_completed(), "ISP run left transfers unfinished");

    let mut raw: Vec<u8> = Vec::new();
    let snapshot = recorder.snapshot();
    scope
        .export_chrome_trace(Some(&snapshot), &mut raw)
        .unwrap();
    let text = String::from_utf8(raw).unwrap();
    let doc = jsonv::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .expect("trace must have a traceEvents key")
        .as_arr()
        .expect("traceEvents must be an array")
        .to_vec();
    assert!(!events.is_empty());

    // B/E events must pair like a well-formed bracket sequence, and an
    // E must close the B that opened it (same name and category).
    let mut stack: Vec<(String, String)> = Vec::new();
    let mut cats: BTreeSet<String> = BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for ev in &events {
        let ph = ev.get("ph").unwrap().as_str().unwrap().to_string();
        let cat = ev.get("cat").unwrap().as_str().unwrap().to_string();
        let name = ev.get("name").unwrap().as_str().unwrap().to_string();
        let ts = ev.get("ts").unwrap().as_f64().unwrap();
        assert!(ts >= 0.0);
        match ph.as_str() {
            "B" => {
                // Children start no earlier than their parent opened.
                assert!(ts + 1e-9 >= last_ts.max(0.0) || stack.is_empty() || ts >= 0.0);
                stack.push((name.clone(), cat.clone()));
                last_ts = ts;
            }
            "E" => {
                let (open_name, open_cat) = stack.pop().expect("E without matching B");
                assert_eq!(open_name, name, "E closes a different span than it opened");
                assert_eq!(open_cat, cat);
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        cats.insert(cat);
    }
    assert!(stack.is_empty(), "unclosed B spans: {stack:?}");
    for required in ["sim", "anneal", "circuits", "rates", "update"] {
        assert!(
            cats.contains(required),
            "trace is missing subsystem {required:?} (got {cats:?})"
        );
    }
}

/// Every transfer's tracked delivered volume must account for its full
/// requested volume (delivered + remaining = volume), and the tracker's
/// aggregate must equal the per-transfer sum.
#[test]
fn transfer_accounting_matches_aggregate_to_float_tolerance() {
    let (net, requests) = isp_workload(0.6, 12);
    let scope = ScopeRecorder::enabled(ScopeConfig::default());
    let result = run_engine_traced(
        EngineKind::Owan,
        &net,
        &requests,
        &fast_runner(40),
        &Recorder::enabled(),
        &scope,
    );

    let tracker = scope.tracker_snapshot().unwrap();
    assert_eq!(tracker.transfers().len(), requests.len());
    let mut sum = 0.0;
    for (t, req) in tracker.transfers().iter().zip(&requests) {
        let accounted = t.delivered_gbits + t.remaining_gbits;
        assert!(
            (accounted - req.volume_gbits).abs() < 1e-6 * req.volume_gbits.max(1.0),
            "transfer {}: delivered {} + remaining {} != volume {}",
            t.id,
            t.delivered_gbits,
            t.remaining_gbits,
            req.volume_gbits
        );
        if result.completions[t.id].completion_s.is_some() {
            assert!(
                (t.delivered_gbits - req.volume_gbits).abs() < 1e-6 * req.volume_gbits.max(1.0),
                "completed transfer {} delivered {} of {}",
                t.id,
                t.delivered_gbits,
                req.volume_gbits
            );
        }
        sum += t.delivered_gbits;
    }
    let total = scope.total_delivered_gbits();
    assert!(
        (total - sum).abs() < 1e-6 * sum.max(1.0),
        "aggregate {total} != per-transfer sum {sum}"
    );
    assert!(total > 0.0);
}

/// A disabled scope must not change a single simulation outcome.
#[test]
fn disabled_scope_is_zero_perturbation() {
    let (net, requests) = isp_workload(0.6, 8);
    let cfg = fast_runner(40);
    let plain = run_engine(EngineKind::Owan, &net, &requests, &cfg);
    let traced = run_engine_traced(
        EngineKind::Owan,
        &net,
        &requests,
        &cfg,
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
    );
    assert_eq!(plain.makespan_s, traced.makespan_s);
    assert_eq!(plain.slots, traced.slots);
    assert_eq!(plain.throughput_series, traced.throughput_series);
    for (a, b) in plain.completions.iter().zip(&traced.completions) {
        assert_eq!(a.completion_s, b.completion_s);
    }
}

fn chaos_scope_run(seed: u64) -> (ScopeRecorder, Result<(), String>) {
    let net = internet2_testbed();
    let requests = generate(&net, &WorkloadConfig::testbed(0.5, seed));
    let plant = net.plant;
    let config = ChaosConfig {
        slot_len_s: 300.0,
        max_slots: 16,
        // Longer than the horizon: the mid-run fiber cut stays undetected
        // and blackholes live circuits, triggering the anomaly dump.
        detection_delay_s: 400.0,
        ..Default::default()
    };
    let events = seeded_scenario(&plant, seed, 300.0 * 16.0);
    let op_faults = OpFaultModel {
        seed,
        timeout_prob: 0.1,
        fail_prob: 0.05,
    };
    let mut make_engine = |p: &owan::optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: 30,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
    };
    let scope = ScopeRecorder::enabled(ScopeConfig::default());
    scope.set_meta("mode", "chaos");
    scope.set_meta("net", "internet2");
    scope.set_meta("seed", seed);
    let outcome = run_chaos_traced(
        &plant,
        &requests,
        &mut make_engine,
        &config,
        &events,
        &op_faults,
        &Recorder::disabled(),
        &scope,
        None,
    )
    .map(|_| ());
    (scope, outcome)
}

/// An undetected fiber cut must freeze the flight ring into a dump, and
/// two same-seed runs must produce byte-identical dump files.
#[test]
fn chaos_flight_dump_is_byte_deterministic() {
    let (first, outcome) = chaos_scope_run(42);
    outcome.expect("chaos run failed");
    let (second, _) = chaos_scope_run(42);

    let a = first
        .dump_text()
        .expect("undetected cut must trigger a dump");
    let b = second.dump_text().expect("second run must dump too");
    assert_eq!(a, b, "same-seed dumps differ");

    let dump = FlightDump::from_text(&a).expect("dump must parse");
    assert_eq!(dump.reason, "blackhole.undetected_cut");
    assert!(!dump.frames.is_empty());
    assert_eq!(dump.meta["net"], "internet2");
}

/// End to end through the binary: `chaos --scope-dump` writes a dump that
/// `verify --replay` reconstructs, re-runs under the invariant audit, and
/// accepts byte for byte.
#[test]
fn flight_dump_replays_through_verify_cli() {
    let dir = std::env::temp_dir().join("owan_scope_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("flight.dump");
    let _ = std::fs::remove_file(&dump_path);

    let chaos = Command::new(env!("CARGO_BIN_EXE_owan-cli"))
        .args([
            "chaos",
            "--net",
            "internet2",
            "--seed",
            "42",
            "--load",
            "0.5",
            "--slots",
            "16",
            "--iters",
            "30",
            "--detect",
            "400",
            "--scope-dump",
        ])
        .arg(&dump_path)
        .output()
        .expect("chaos run failed to start");
    let stdout = String::from_utf8_lossy(&chaos.stdout);
    assert!(chaos.status.success(), "chaos run failed: {stdout}");
    assert!(stdout.contains("scope_dumped,yes"), "no dump: {stdout}");
    assert!(dump_path.exists());

    let verify = Command::new(env!("CARGO_BIN_EXE_owan-cli"))
        .args(["verify", "--replay"])
        .arg(&dump_path)
        .output()
        .expect("verify failed to start");
    let stdout = String::from_utf8_lossy(&verify.stdout);
    let stderr = String::from_utf8_lossy(&verify.stderr);
    assert!(
        verify.status.success(),
        "verify --replay rejected the dump: {stdout} {stderr}"
    );
    assert!(stdout.contains("OK"), "unexpected verify output: {stdout}");
}

/// The live endpoint serves the run's counters over plain HTTP.
#[test]
fn metrics_endpoint_serves_run_counters() {
    let recorder = Recorder::enabled();
    recorder.counter("anneal.accepted").add(7);
    let server = MetricsServer::spawn("127.0.0.1:0", recorder.clone()).unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"));
    assert!(response.contains("owan_anneal_accepted 7"));
    server.shutdown();
}
