//! The region profiler must observe, never perturb — disabled it changes
//! no simulation outcome, enabled it still reproduces the same plans and
//! its miss-attribution counters must account for every single cache
//! miss. The `perf diff` CLI parser is strict: a typo'd flag exits 2
//! instead of silently dropping a gate.

use std::process::Command;

use owan::core::{Profiler, TransferRequest};
use owan::obs::Recorder;
use owan::scope::ScopeRecorder;
use owan::sim::runner::{run_engine, run_engine_profiled, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::isp::ISP_SITES;
use owan::topo::{isp_backbone, Network};
use owan::workload::{generate, WorkloadConfig};

fn fast_runner(iters: usize) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            max_slots: 400,
            ..Default::default()
        },
        anneal_iterations: iters,
        seed: 11,
        ..Default::default()
    }
}

fn isp_workload(load: f64, take: usize) -> (Network, Vec<TransferRequest>) {
    let net = isp_backbone(42);
    let mut cfg = WorkloadConfig::simulation(load, 42);
    cfg.duration_s = 3_000.0;
    let requests: Vec<_> = generate(&net, &cfg).into_iter().take(take).collect();
    (net, requests)
}

/// A disabled profiler must not change a single simulation outcome.
#[test]
fn disabled_profiler_is_zero_perturbation() {
    let (net, requests) = isp_workload(0.6, 8);
    let cfg = fast_runner(40);
    let plain = run_engine(EngineKind::Owan, &net, &requests, &cfg);
    let profiled = run_engine_profiled(
        EngineKind::Owan,
        &net,
        &requests,
        &cfg,
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
        &Profiler::disabled(),
    );
    assert_eq!(plain.makespan_s, profiled.makespan_s);
    assert_eq!(plain.slots, profiled.slots);
    assert_eq!(plain.throughput_series, profiled.throughput_series);
    for (a, b) in plain.completions.iter().zip(&profiled.completions) {
        assert_eq!(a.completion_s, b.completion_s);
    }
}

/// An enabled profiler still reproduces the same plans, and its region
/// tree covers the whole pipeline: slot → plan_slot → anneal → eval →
/// circuits/rates, plus update. The folded-stack export is well-formed
/// `path;to;leaf <self_ns>` lines over those same regions.
#[test]
fn enabled_profiler_preserves_results_and_exports_folded_stacks() {
    let (net, requests) = isp_workload(0.6, 8);
    let cfg = fast_runner(40);
    let plain = run_engine(EngineKind::Owan, &net, &requests, &cfg);
    let prof = Profiler::enabled();
    // Recorder enabled so the telemetry-only update-scheduling stage runs
    // and its region shows up; observed runs are result-identical.
    let profiled = run_engine_profiled(
        EngineKind::Owan,
        &net,
        &requests,
        &cfg,
        &Recorder::enabled(),
        &ScopeRecorder::disabled(),
        &prof,
    );
    assert_eq!(plain.makespan_s, profiled.makespan_s);
    assert_eq!(plain.throughput_series, profiled.throughput_series);

    let snap = prof.snapshot();
    let names: Vec<&str> = snap.nodes.iter().map(|n| n.name.as_str()).collect();
    for required in [
        "slot",
        "plan_slot",
        "anneal",
        "eval",
        "circuits",
        "rates",
        "update",
    ] {
        assert!(
            names.contains(&required),
            "region tree is missing {required:?} (got {names:?})"
        );
    }
    // Self time can never exceed total time, and calls are non-zero for
    // every node that exists.
    for node in &snap.nodes {
        assert!(node.self_ns <= node.total_ns, "{}", node.name);
        assert!(node.calls > 0, "{}", node.name);
    }

    let mut folded = Vec::new();
    snap.write_folded(&mut folded).unwrap();
    let text = String::from_utf8(folded).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`path value` shape");
        assert!(!path.is_empty());
        assert!(path.starts_with("slot"), "all stacks root at slot: {line}");
        value.parse::<u64>().expect("self-time must be integer ns");
    }
    assert!(
        text.lines().any(|l| l.contains("slot;plan_slot;anneal")),
        "expected the anneal stack in the folded output:\n{text}"
    );
}

/// On the Fig-10 network (40-site ISP backbone) every cache miss must be
/// attributed to exactly one reason: the `anneal.cache_miss.<reason>`
/// counters sum to `anneal.cache_miss`, and a dominant cause exists.
#[test]
fn isp_fig10_cache_misses_are_fully_attributed() {
    assert_eq!(ISP_SITES, 40, "Fig-10 backbone must have 40 sites");
    let (net, requests) = isp_workload(0.6, 10);
    let recorder = Recorder::enabled();
    let result = run_engine_profiled(
        EngineKind::Owan,
        &net,
        &requests,
        &fast_runner(40),
        &recorder,
        &ScopeRecorder::disabled(),
        &Profiler::disabled(),
    );
    assert!(result.all_completed(), "ISP run left transfers unfinished");

    let snap = recorder.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let total = counter("anneal.cache_miss");
    assert!(total > 0, "run recorded no cache misses at all");
    let attributed: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("anneal.cache_miss."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(
        attributed, total,
        "per-reason counters must account for 100% of misses"
    );
    // With the fast path on, no eval should fall through uncached.
    assert_eq!(counter("anneal.cache_miss.uncached"), 0);
    // A dominant cause must be nameable from the counters alone.
    let dominant = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("anneal.cache_miss."))
        .max_by_key(|(_, v)| **v)
        .expect("at least one reason counter");
    assert!(*dominant.1 > 0, "dominant cause {} is zero", dominant.0);
}

// ---------------------------------------------------------------- CLI --

fn owan_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_owan-cli"))
}

/// A bench report JSON with every key `perf diff` looks at.
fn sample_report(scale: &str, fast_wall: f64, cores: usize) -> String {
    format!(
        concat!(
            "{{\n\"scale\": \"{scale}\",\n\"commit\": \"test\",\n",
            "\"cores\": {cores},\n",
            "\"naive_wall_s\": 1.0,\n\"fast_wall_s\": {fw:.6},\n",
            "\"naive_evals_per_s\": 100.0,\n\"fast_evals_per_s\": {rate:.2},\n",
            "\"pipeline_naive_wall_s\": 2.0,\n\"pipeline_fast_wall_s\": 1.0,\n",
            "\"pipeline_obs_wall_s\": 1.0,\n\"pipeline_scope_wall_s\": 1.02,\n",
            "\"pipeline_prof_wall_s\": 1.01,\n\"pipeline_slots_per_s\": 6.0,\n",
            "\"chains_seq_wall_s\": 1.0,\n\"chains_par_wall_s\": 0.5,\n",
            "\"scope_overhead\": 0.02,\n\"prof_overhead\": 0.01\n}}\n"
        ),
        scale = scale,
        cores = cores,
        fw = fast_wall,
        rate = 100.0 / fast_wall,
    )
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every malformed `perf` invocation exits 2 — never silently succeeds.
#[test]
fn perf_cli_parser_is_strict() {
    let dir = temp_dir("owan_prof_cli_strict");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    std::fs::write(&a, sample_report("quick", 0.25, 4)).unwrap();
    std::fs::write(&b, sample_report("quick", 0.25, 4)).unwrap();

    // `perf` without the `diff` verb.
    let out = owan_cli().arg("perf").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Too few / too many files.
    let out = owan_cli().args(["perf", "diff"]).arg(&a).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = owan_cli()
        .args(["perf", "diff"])
        .args([&a, &b, &a])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Unknown flag must be fatal: a typo'd --gate can never turn a
    // gating CI job into a no-op.
    let out = owan_cli()
        .args(["perf", "diff", "--gat"])
        .args([&a, &b])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    // Bad threshold value.
    let out = owan_cli()
        .args(["perf", "diff", "--threshold", "bogus"])
        .args([&a, &b])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Unreadable file is a runtime error, also exit 2.
    let out = owan_cli()
        .args(["perf", "diff"])
        .arg(&a)
        .arg(dir.join("missing.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// The happy path prints the comparison table and exits 0; `--gate` on a
/// regressed pair exits 1.
#[test]
fn perf_cli_diffs_reports_and_gates_regressions() {
    let dir = temp_dir("owan_prof_cli_diff");
    let a = dir.join("base.json");
    let b = dir.join("slow.json");
    std::fs::write(&a, sample_report("quick", 0.25, 4)).unwrap();
    std::fs::write(&b, sample_report("quick", 0.60, 4)).unwrap();

    // Identical pair: table, no regressions, exit 0 even with --gate.
    let out = owan_cli()
        .args(["perf", "diff", "--gate"])
        .args([&a, &a])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fast_wall_s"), "{stdout}");

    // 2.4x slower fast path: report-only exits 0, --gate exits 1.
    let out = owan_cli()
        .args(["perf", "diff"])
        .args([&a, &b])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    let out = owan_cli()
        .args(["perf", "diff", "--gate"])
        .args([&a, &b])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Scale mismatch is refused outright.
    let c = dir.join("full.json");
    std::fs::write(&c, sample_report("full", 0.25, 4)).unwrap();
    let out = owan_cli()
        .args(["perf", "diff"])
        .args([&a, &c])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// `--prof FILE` writes a folded-stack file and `--prof-report` prints
/// the region tree, end to end through the binary.
#[test]
fn prof_flags_write_folded_stacks_and_print_the_region_tree() {
    let dir = temp_dir("owan_prof_cli_run");
    let folded = dir.join("profile.folded");
    let _ = std::fs::remove_file(&folded);

    let run_args = [
        "--net",
        "internet2",
        "--load",
        "0.5",
        "--duration",
        "1200",
        "--max-requests",
        "4",
        "--iters",
        "10",
    ];
    let out = owan_cli()
        .args(run_args)
        .arg("--prof")
        .arg(&folded)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&folded).unwrap();
    assert!(
        text.lines().any(|l| l.starts_with("slot")),
        "folded stacks must root at slot:\n{text}"
    );
    for line in text.lines() {
        let (_, value) = line.rsplit_once(' ').unwrap();
        value.parse::<u64>().expect("self-time must be integer ns");
    }

    let out = owan_cli()
        .args(run_args)
        .arg("--prof-report")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for required in ["slot", "plan_slot", "anneal"] {
        assert!(stdout.contains(required), "{stdout}");
    }
}
