//! End-to-end integration tests: the full pipeline (topology → workload →
//! engines → simulator → metrics) across crates, checking the paper's
//! headline qualitative claims at reduced scale.

use owan::sim::metrics::{self, SizeBin};
use owan::sim::runner::{run_comparison, run_engine, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::{inter_dc, internet2_testbed, isp_backbone};
use owan::workload::{generate, WorkloadConfig};

fn runner(anneal_iterations: usize) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            max_slots: 1_000,
            ..Default::default()
        },
        anneal_iterations,
        ..Default::default()
    }
}

#[test]
fn owan_beats_fixed_topology_baselines_on_internet2() {
    let net = internet2_testbed();
    let mut wl = WorkloadConfig::testbed(1.0, 42);
    wl.duration_s = 3_600.0;
    let reqs = generate(&net, &wl);
    assert!(reqs.len() >= 20, "meaningful workload, got {}", reqs.len());

    let results = run_comparison(&EngineKind::UNCONSTRAINED, &net, &reqs, &runner(120));
    for r in &results {
        assert!(r.all_completed(), "{} left transfers unfinished", r.engine);
    }
    let (owan_avg, _) = metrics::summary(&results[0], SizeBin::All);
    for r in &results[1..] {
        let (avg, _) = metrics::summary(r, SizeBin::All);
        assert!(
            owan_avg <= avg * 1.05,
            "Owan avg {owan_avg:.0}s should not lose to {} at {avg:.0}s",
            r.engine
        );
    }
    // And it should win big against at least one baseline (paper: 4.45x
    // vs MaxFlow on Internet2; shapes vary with the synthetic workload).
    let best_factor = results[1..]
        .iter()
        .map(|r| {
            let (avg, _) = metrics::summary(r, SizeBin::All);
            metrics::improvement_factor(owan_avg, avg)
        })
        .fold(0.0, f64::max);
    assert!(
        best_factor > 1.5,
        "expected a clear win, best factor {best_factor:.2}"
    );
}

#[test]
fn owan_wins_makespan_on_interdc() {
    let net = inter_dc(7);
    let mut wl = WorkloadConfig::simulation(1.0, 7).with_hotspots();
    wl.duration_s = 1_800.0;
    let reqs: Vec<_> = generate(&net, &wl).into_iter().take(80).collect();

    let owan = run_engine(EngineKind::Owan, &net, &reqs, &runner(120));
    let maxflow = run_engine(EngineKind::MaxFlow, &net, &reqs, &runner(120));
    assert!(owan.all_completed());
    assert!(maxflow.all_completed());
    assert!(
        owan.makespan_s <= maxflow.makespan_s,
        "Owan makespan {} vs MaxFlow {}",
        owan.makespan_s,
        maxflow.makespan_s
    );
}

#[test]
fn isp_workload_drains_for_all_unconstrained_engines() {
    let net = isp_backbone(7);
    let mut wl = WorkloadConfig::simulation(0.5, 13);
    wl.duration_s = 1_800.0;
    let reqs: Vec<_> = generate(&net, &wl).into_iter().take(60).collect();
    let results = run_comparison(&EngineKind::UNCONSTRAINED, &net, &reqs, &runner(80));
    for r in &results {
        assert!(
            r.all_completed(),
            "{} failed to drain the ISP workload",
            r.engine
        );
    }
}

#[test]
fn deadline_engines_meet_more_deadlines_with_looser_factors() {
    let net = internet2_testbed();
    let pct_for = |sigma: f64| -> f64 {
        let mut wl = WorkloadConfig::testbed(1.0, 42).with_deadlines(300.0, sigma);
        wl.duration_s = 1_800.0;
        let reqs: Vec<_> = generate(&net, &wl).into_iter().take(30).collect();
        let mut cfg = runner(100);
        cfg.policy = owan::core::SchedulingPolicy::EarliestDeadlineFirst;
        let res = run_engine(EngineKind::Owan, &net, &reqs, &cfg);
        metrics::pct_deadlines_met(&res, SizeBin::All)
    };
    let tight = pct_for(2.0);
    let loose = pct_for(50.0);
    assert!(
        loose >= tight,
        "looser deadlines can only help: tight {tight:.0}% vs loose {loose:.0}%"
    );
    assert!(
        loose > 80.0,
        "nearly everything meets very loose deadlines, got {loose:.0}%"
    );
}

#[test]
fn deadline_comparison_runs_all_six_engines() {
    let net = internet2_testbed();
    let mut wl = WorkloadConfig::testbed(1.0, 42).with_deadlines(300.0, 10.0);
    wl.duration_s = 1_200.0;
    let reqs: Vec<_> = generate(&net, &wl).into_iter().take(20).collect();
    let mut cfg = runner(80);
    cfg.policy = owan::core::SchedulingPolicy::EarliestDeadlineFirst;
    let results = run_comparison(&EngineKind::DEADLINE, &net, &reqs, &cfg);
    assert_eq!(results.len(), 6);
    for r in &results {
        let pct = metrics::pct_deadlines_met(r, SizeBin::All);
        assert!((0.0..=100.0).contains(&pct), "{}: {pct}", r.engine);
    }
}
