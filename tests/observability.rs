//! Telemetry must observe, never perturb: recording a run may not change
//! a single planning decision, and the recorder's own primitives must
//! measure exactly what the injected clock says.

use std::sync::Arc;

use owan::core::engine::{OwanConfig, OwanEngine, SlotInput, TrafficEngineer};
use owan::core::types::Transfer;
use owan::core::AnnealConfig;
use owan::obs::{ManualClock, Recorder};
use owan::sim::runner::{run_engine, run_engine_observed, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::internet2_testbed;
use owan::workload::{generate, WorkloadConfig};

fn small_workload() -> (owan::topo::Network, Vec<owan::core::TransferRequest>) {
    let net = internet2_testbed();
    let mut cfg = WorkloadConfig::testbed(0.5, 7);
    cfg.duration_s = 1_200.0;
    let requests: Vec<_> = generate(&net, &cfg).into_iter().take(6).collect();
    (net, requests)
}

fn fast_runner() -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            max_slots: 200,
            ..Default::default()
        },
        anneal_iterations: 50,
        seed: 11,
        ..Default::default()
    }
}

/// The Owan engine, slot by slot: a recording recorder and the no-op
/// recorder must produce bit-identical `SlotPlan`s from the same seed.
#[test]
fn recording_does_not_change_slot_plans() {
    let (net, requests) = small_workload();
    let owan_cfg = OwanConfig {
        anneal: AnnealConfig {
            max_iterations: 50,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };
    let initial = net.static_topology.clone();
    let mut observed = OwanEngine::new(initial.clone(), owan_cfg);
    observed.set_recorder(Recorder::enabled());
    let mut plain = OwanEngine::new(initial, owan_cfg);

    let transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    for slot in 0..4 {
        let input = SlotInput {
            transfers: &transfers,
            slot_len_s: 300.0,
            now_s: slot as f64 * 300.0,
        };
        let a = observed.plan_slot(&net.plant, &input);
        let b = plain.plan_slot(&net.plant, &input);
        assert_eq!(a, b, "slot {slot} diverged under telemetry");
    }
}

/// Whole-run determinism on Internet2: same seed, recording vs. no-op
/// recorder, identical results (the telemetry field aside).
#[test]
fn recording_does_not_change_simulation_results() {
    let (net, requests) = small_workload();
    let cfg = fast_runner();
    let recorder = Recorder::enabled();
    let observed = run_engine_observed(EngineKind::Owan, &net, &requests, &cfg, &recorder);
    let plain = run_engine(EngineKind::Owan, &net, &requests, &cfg);

    assert_eq!(observed.completions, plain.completions);
    assert_eq!(observed.throughput_series, plain.throughput_series);
    assert_eq!(observed.makespan_s, plain.makespan_s);
    assert_eq!(observed.slots, plain.slots);
    assert!(plain.telemetry.is_none());

    // The observed run carries one row per planned slot, with the stage
    // splits nested inside the measured planning time.
    let rows = observed.telemetry.as_ref().expect("telemetry rows");
    assert_eq!(rows.len(), observed.throughput_series.len());
    for row in rows {
        assert!(row.anneal_ns <= row.plan_ns, "{row:?}");
        assert!(row.circuits_ns + row.rates_ns <= row.anneal_ns, "{row:?}");
        assert!((row.throughput_gbps - observed.throughput_series[row.slot].1).abs() < 1e-12);
    }
    // And the recorder saw the whole pipeline.
    let snap = recorder.snapshot();
    for stage in [
        "stage.slot",
        "stage.anneal",
        "stage.circuits",
        "stage.rates",
        "stage.update",
    ] {
        assert!(
            snap.counters
                .get(&format!("{stage}.calls"))
                .copied()
                .unwrap_or(0)
                > 0,
            "{stage} never ran"
        );
    }
    assert!(snap.counters["anneal.iterations"] > 0);
}

/// Span nesting under a [`ManualClock`]: a parent span's duration covers
/// its children plus its own time; `cancel` discards a span entirely.
#[test]
fn manual_clock_span_nesting() {
    let clock = Arc::new(ManualClock::new());
    let recorder = Recorder::with_clock(clock.clone());
    let parent = recorder.stage("parent");
    let child = recorder.stage("child");

    {
        let _outer = parent.enter();
        clock.advance_ns(5_000_000);
        {
            let _inner = child.enter();
            clock.advance_ns(2_000_000);
        }
        clock.advance_ns(1_000_000);
    }
    child.enter().cancel();

    assert_eq!(child.total_ns(), 2_000_000);
    assert_eq!(parent.total_ns(), 8_000_000);
    let snap = recorder.snapshot();
    assert_eq!(snap.counters["parent.calls"], 1);
    assert_eq!(
        snap.counters["child.calls"], 1,
        "cancelled span must not count"
    );
}

/// Histogram bucket boundaries are inclusive on the upper bound, with one
/// overflow bucket past the last bound.
#[test]
fn histogram_bucket_boundaries() {
    let recorder = Recorder::enabled();
    let hist = recorder.histogram("lat", &[1.0, 10.0]);
    hist.observe(0.5); // <= 1.0
    hist.observe(1.0); // boundary: still the first bucket
    hist.observe(1.0 + 1e-9); // > 1.0: second bucket
    hist.observe(10.0); // boundary: second bucket
    hist.observe(11.0); // overflow
    let snap = recorder.snapshot().histograms["lat"].clone();
    assert_eq!(snap.counts, vec![2, 2, 1]);
    assert_eq!(snap.total, 5);
    assert!((snap.sum - 23.5).abs() < 1e-6);
    assert!((snap.mean() - 4.7).abs() < 1e-6);
}

/// Every exported line is a self-contained JSON object (checked
/// structurally: object delimiters, quoting, and no raw control bytes —
/// CI parses the CLI's export with a real JSON parser on top of this).
#[test]
fn jsonl_export_is_line_structured() {
    let recorder = Recorder::enabled();
    recorder.counter("c").add(3);
    recorder.gauge("g").set(2.5);
    recorder.histogram("h", &[1.0]).observe(0.5);
    recorder.event("e", &[("msg", "with \"quotes\" and\nnewline".into())]);
    let mut out: Vec<u8> = Vec::new();
    recorder.export_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    for line in lines {
        assert!(line.starts_with("{\"type\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(
            line.bytes().all(|b| b >= 0x20),
            "control byte leaked unescaped: {line:?}"
        );
        let quotes = line.chars().filter(|&c| c == '"').count();
        assert_eq!(quotes % 2, 0, "unbalanced quotes: {line}");
    }
}
