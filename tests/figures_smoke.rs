//! Smoke tests for every figure pipeline at tiny scale: each experiment in
//! EXPERIMENTS.md must run end to end and produce sane shapes.

use owan::sim::metrics::SizeBin;
use owan_bench::figs::{fig7, fig8, fig9};
use owan_bench::micro::{fig10a, fig10b, fig10c, fig10d, validation};
use owan_bench::scale::{net_by_name, Scale};

fn tiny() -> Scale {
    Scale {
        duration_s: 900.0,
        max_requests: 10,
        anneal_iterations: 40,
        loads: vec![1.0],
        deadline_factors: vec![10.0],
        ..Scale::quick()
    }
}

#[test]
fn fig7_and_fig8_all_networks() {
    for name in ["internet2", "isp", "interdc"] {
        let net = net_by_name(name);
        let scale = Scale {
            max_requests: 8,
            ..tiny()
        };
        let points = fig7(&net, &scale);
        assert_eq!(points.len(), 1, "{name}");
        for p in &points {
            for r in &p.results {
                assert!(r.all_completed(), "{name}/{}", r.engine);
            }
            let (avg, p95) = p.improvement(1, SizeBin::All);
            assert!(avg > 0.0 && p95 > 0.0);
        }
        let f8 = fig8(&points);
        assert!(f8[0].improvements.iter().all(|&v| v > 0.0));
    }
}

#[test]
fn fig9_internet2() {
    let net = net_by_name("internet2");
    let points = fig9(&net, &tiny());
    for p in &points {
        let met = p.pct_met(SizeBin::All);
        assert_eq!(met.len(), 6);
        for v in met {
            assert!((0.0..=100.0).contains(&v));
        }
    }
}

#[test]
fn fig10a_annealing_vs_greedy() {
    let (sa, greedy) = fig10a(&tiny());
    assert!(!sa.is_empty() && !greedy.is_empty());
    let avg = |s: &[(f64, f64)]| s.iter().map(|p| p.1).sum::<f64>() / s.len() as f64;
    // At tiny scale the gap fluctuates; just require SA not be crushed.
    assert!(avg(&sa) > 0.0);
    assert!(avg(&greedy) >= 0.0);
}

#[test]
fn fig10b_oneshot_dips_consistent_does_not() {
    let fig = fig10b(&tiny());
    let min = |s: &[owan::update::TimelinePoint]| {
        s.iter()
            .map(|p| p.throughput_gbps)
            .fold(f64::INFINITY, f64::min)
    };
    // Consistent keeps live traffic flowing; one-shot loses strictly more
    // (in this scenario, everything crossing a reconfigured circuit).
    assert!(
        min(&fig.consistent) > 0.0,
        "consistent update lost all traffic"
    );
    // The comparison is only meaningful when circuits actually move: a
    // pure path swap has nothing to darken, and the consistent schedule's
    // capacity-ordered staging can transiently carry less than an
    // instantaneous swap. At tiny annealing scales the search may settle
    // on such a plan; at full scale the demand shift forces optical churn
    // and one-shot strictly loses.
    if fig.circuit_ops > 0 {
        assert!(
            min(&fig.one_shot) <= min(&fig.consistent) + 1e-6,
            "one-shot ({}) cannot lose less than consistent ({})",
            min(&fig.one_shot),
            min(&fig.consistent)
        );
    }
}

#[test]
fn fig10c_monotone_in_control() {
    let rows = fig10c(&Scale {
        loads: vec![1.0],
        ..tiny()
    });
    for (_, [rate, routing, topo]) in &rows {
        assert!(
            *rate >= *routing - 0.3,
            "routing should help: {rate} vs {routing}"
        );
        assert!(
            *routing >= *topo - 0.3,
            "topology should help: {routing} vs {topo}"
        );
    }
}

#[test]
fn fig10d_budget_sweep_runs() {
    let scale = Scale {
        max_requests: 6,
        ..tiny()
    };
    let rows = fig10d(&scale);
    assert_eq!(rows.len(), 5);
    for (budget, avg) in &rows {
        assert!(*budget > 0.0);
        assert!(*avg > 0.0);
    }
    // More search time never catastrophically hurts (within noise).
    let first = rows[0].1;
    let last = rows.last().unwrap().1;
    assert!(last <= first * 1.5, "5.12s budget {last} vs 0.02s {first}");
}

#[test]
fn validation_deltas_reported() {
    let reports = validation(&tiny());
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(r.avg_delta() >= 0.0);
        assert!(
            r.avg_delta() <= 0.5,
            "{}: delta {}",
            r.engine,
            r.avg_delta()
        );
    }
}
