//! Tier-4 (`owan-why`) acceptance tests: the attribution buckets must
//! partition wall time on the paper's Fig-10 network, the blackhole
//! bucket must agree bit-for-bit with the chaos runner's loss ledger,
//! and a disabled why recorder must never perturb a run.

use owan::chaos::{run_chaos_explained, seeded_scenario, ChaosConfig, OpFaultModel};
use owan::core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, Profiler, TrafficEngineer,
    TransferRequest,
};
use owan::obs::Recorder;
use owan::scope::ScopeRecorder;
use owan::sim::runner::{run_engine, run_engine_explained, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::isp::ISP_SITES;
use owan::topo::{internet2_testbed, isp_backbone, Network};
use owan::why::{render_explain, WhyConfig, WhyRecorder, WhyReport};
use owan::workload::{generate, WorkloadConfig};

fn fast_runner(iters: usize) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            max_slots: 400,
            ..Default::default()
        },
        anneal_iterations: iters,
        seed: 11,
        ..Default::default()
    }
}

fn isp_deadline_workload(load: f64, take: usize) -> (Network, Vec<TransferRequest>) {
    let net = isp_backbone(42);
    let mut cfg = WorkloadConfig::simulation(load, 42).with_deadlines(300.0, 1.5);
    cfg.duration_s = 3_000.0;
    let requests: Vec<_> = generate(&net, &cfg).into_iter().take(take).collect();
    (net, requests)
}

fn assert_partition(report: &WhyReport) {
    assert!(!report.transfers.is_empty());
    for attr in &report.transfers {
        let sum = attr.buckets.sum_s();
        assert!(
            (sum - attr.wall_s).abs() <= 1e-6 * attr.wall_s.max(1.0),
            "transfer {}: buckets sum {} != wall {} (buckets {:?})",
            attr.id,
            sum,
            attr.wall_s,
            attr.buckets
        );
        for (name, value) in attr.buckets.named() {
            assert!(value >= 0.0, "transfer {}: bucket {name} negative", attr.id);
        }
    }
}

/// Fig-10 acceptance: on the 40-site ISP backbone with a deadline
/// workload, every transfer's seven buckets partition its in-system wall
/// time, and `render_explain` agrees (`partition,ok` footer).
#[test]
fn fig10_isp_buckets_partition_wall_time() {
    assert_eq!(ISP_SITES, 40, "Fig-10 backbone must have 40 sites");
    let (net, requests) = isp_deadline_workload(0.6, 12);
    let recorder = Recorder::enabled();
    let why = WhyRecorder::enabled(WhyConfig::default(), &recorder);
    let result = run_engine_explained(
        EngineKind::Owan,
        &net,
        &requests,
        &fast_runner(40),
        &recorder,
        &ScopeRecorder::disabled(),
        &Profiler::disabled(),
        &why,
    );
    assert!(result.all_completed(), "ISP run left transfers unfinished");
    let report = why.report().expect("enabled why recorder yields a report");
    assert_eq!(report.transfers.len(), requests.len());
    assert_partition(&report);

    // No faults in a plain sim run: nothing may be blamed on the plant.
    assert_eq!(report.total_blackhole_gbits, 0.0);
    for attr in &report.transfers {
        assert_eq!(attr.buckets.blackhole_s, 0.0);
        assert_eq!(attr.buckets.preempted_s, 0.0);
    }

    // Completed transfers must show serving time, and the rendered
    // explanation must confirm the partition for every transfer.
    for attr in &report.transfers {
        assert!(attr.completion_s.is_some());
        assert!(
            attr.buckets.serving_s > 0.0,
            "transfer {} never served",
            attr.id
        );
        let text = render_explain(&report, attr.id).expect("known id renders");
        assert!(
            text.contains("partition,ok"),
            "transfer {}: explain footer broken:\n{text}",
            attr.id
        );
    }

    // worst_slack prefers deadline transfers and ranks by slack.
    let worst = report.worst_slack().expect("non-empty report");
    assert!(worst.slack_s.is_some());
    for attr in &report.transfers {
        if let (Some(w), Some(s)) = (worst.slack_s, attr.slack_s) {
            assert!(w <= s + 1e-9);
        }
    }
}

fn chaos_why_run(seed: u64) -> (owan::chaos::ChaosResult, WhyReport) {
    let net = internet2_testbed();
    let requests = generate(&net, &WorkloadConfig::testbed(0.5, seed));
    let plant = net.plant;
    let config = ChaosConfig {
        slot_len_s: 300.0,
        max_slots: 16,
        // Longer than the horizon: the mid-run fiber cut stays
        // undetected and blackholes live circuits, so the ledger and the
        // blackhole bucket both see real loss.
        detection_delay_s: 400.0,
        ..Default::default()
    };
    let events = seeded_scenario(&plant, seed, 300.0 * 16.0);
    let op_faults = OpFaultModel {
        seed,
        timeout_prob: 0.1,
        fail_prob: 0.05,
    };
    let mut make_engine = |p: &owan::optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: 30,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
    };
    let recorder = Recorder::enabled();
    let why = WhyRecorder::enabled(WhyConfig::default(), &recorder);
    let result = run_chaos_explained(
        &plant,
        &requests,
        &mut make_engine,
        &config,
        &events,
        &op_faults,
        &recorder,
        &ScopeRecorder::disabled(),
        &why,
        None,
    )
    .expect("chaos run failed");
    let report = why.report().expect("enabled why recorder yields a report");
    (result, report)
}

/// The why report's blackhole ledger is computed from the same per-slot
/// samples with the same expression and iteration order the chaos runner
/// uses to book `ChaosStats::blackhole_gbits` — so the two f64 totals
/// must be *identical*, not merely close.
#[test]
fn blackhole_bucket_matches_chaos_ledger_exactly() {
    let (result, report) = chaos_why_run(42);
    assert!(
        result.stats.blackhole_gbits > 0.0,
        "seed 42 must blackhole traffic for this test to bite"
    );
    assert_eq!(
        report.total_blackhole_gbits, result.stats.blackhole_gbits,
        "why ledger diverged from the chaos runner's booking"
    );
    // And the per-transfer buckets still partition under faults.
    assert_partition(&report);
    let blamed: f64 = report.transfers.iter().map(|t| t.buckets.blackhole_s).sum();
    assert!(
        blamed > 0.0,
        "loss booked but no transfer blames a blackhole"
    );
}

/// A disabled why recorder must not change a single simulation outcome,
/// and an enabled one must not either (observe, never perturb).
#[test]
fn why_recorder_is_zero_perturbation() {
    let (net, requests) = isp_deadline_workload(0.6, 8);
    let cfg = fast_runner(40);
    let plain = run_engine(EngineKind::Owan, &net, &requests, &cfg);
    for why in [
        WhyRecorder::disabled(),
        WhyRecorder::enabled(WhyConfig::default(), &Recorder::enabled()),
    ] {
        let explained = run_engine_explained(
            EngineKind::Owan,
            &net,
            &requests,
            &cfg,
            &Recorder::disabled(),
            &ScopeRecorder::disabled(),
            &Profiler::disabled(),
            &why,
        );
        assert_eq!(plain.makespan_s, explained.makespan_s);
        assert_eq!(plain.slots, explained.slots);
        assert_eq!(plain.throughput_series, explained.throughput_series);
        for (a, b) in plain.completions.iter().zip(&explained.completions) {
            assert_eq!(a.completion_s, b.completion_s);
        }
    }
}
