//! Fast-path equivalence suite: the relay/outcome caches, the delta
//! circuit rebuilds, and parallel multi-chain annealing are pure
//! accelerations — every test here pins the accelerated paths bit-for-bit
//! to the naive reference, across benchmark networks, seeds, an exact
//! enumeration oracle, and plant-mutating invalidations.
//!
//! Debug builds additionally cross-check every cached circuit build
//! against a from-scratch rebuild inside `owan-core` (`debug_assert_eq!`),
//! so running this suite under `cargo test` exercises far more equality
//! checks than the explicit asserts below.

use owan::core::{
    anneal_observed, anneal_parallel, anneal_parallel_pooled, anneal_with_cache, default_topology,
    AnnealConfig, CircuitBuildConfig, CoreTelemetry, EnergyCache, EnergyContext, OwanConfig,
    OwanEngine, RateAssignConfig, SchedulingPolicy, SlotInput, Topology, TrafficEngineer, Transfer,
};
use owan::oracle::anneal_gap;
use owan::topo::Network;
use owan_bench::{net_by_name, workload_for, Scale};

/// A small fixed-size fixture: network, transfers, and initial topology.
fn fixture(net_name: &str, seed: u64) -> (Network, Vec<Transfer>, Topology) {
    let scale = Scale {
        duration_s: 900.0,
        max_requests: 10,
        seed,
        ..Scale::quick()
    };
    let net = net_by_name(net_name);
    let reqs = workload_for(&net, 1.0, None, &scale);
    let transfers: Vec<Transfer> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| Transfer::from_request(i, r))
        .collect();
    let initial = if net.static_topology.total_links() > 0 {
        net.static_topology.clone()
    } else {
        default_topology(&net.plant)
    };
    (net, transfers, initial)
}

fn context<'a>(
    net: &'a Network,
    fiber_dist: &'a [Vec<f64>],
    transfers: &'a [Transfer],
) -> EnergyContext<'a> {
    EnergyContext {
        plant: &net.plant,
        fiber_dist,
        transfers,
        policy: SchedulingPolicy::ShortestJobFirst,
        slot_len_s: 300.0,
        circuit_config: CircuitBuildConfig::default(),
        rate_config: RateAssignConfig::default(),
        prof: owan::prof::Profiler::disabled(),
    }
}

/// The cached fast path must be bit-identical to the naive reference on
/// every benchmark network, across 20 seeds each (seeds vary both the
/// workload and the annealing walk).
#[test]
fn cached_anneal_is_bit_identical_to_naive() {
    for net_name in ["internet2", "isp", "interdc"] {
        for seed in 0..20u64 {
            let (net, transfers, initial) = fixture(net_name, seed);
            let fiber_dist = net.plant.fiber_distance_matrix();
            let ctx = context(&net, &fiber_dist, &transfers);
            let config = AnnealConfig {
                max_iterations: 25,
                seed,
                ..Default::default()
            };
            let telemetry = CoreTelemetry::disabled();
            let mut cache = EnergyCache::new();
            let fast = anneal_with_cache(&ctx, &initial, &config, Some(&mut cache), &telemetry);
            let naive = anneal_with_cache(&ctx, &initial, &config, None, &telemetry);
            assert_eq!(
                fast.topology, naive.topology,
                "{net_name} seed {seed}: cached topology diverged"
            );
            assert_eq!(
                fast.energy_gbps().to_bits(),
                naive.energy_gbps().to_bits(),
                "{net_name} seed {seed}: cached energy diverged"
            );
            assert_eq!(fast.iterations, naive.iterations);
            assert_eq!(
                fast.initial_energy_gbps.to_bits(),
                naive.initial_energy_gbps.to_bits()
            );
        }
    }
}

/// `anneal_parallel` with one chain is the sequential search, exactly.
#[test]
fn parallel_single_chain_equals_sequential() {
    for seed in [0u64, 7, 19] {
        let (net, transfers, initial) = fixture("isp", seed);
        let fiber_dist = net.plant.fiber_distance_matrix();
        let ctx = context(&net, &fiber_dist, &transfers);
        let config = AnnealConfig {
            max_iterations: 25,
            seed,
            ..Default::default()
        };
        let telemetry = CoreTelemetry::disabled();
        let seq = anneal_observed(&ctx, &initial, &config, &telemetry);
        let par = anneal_parallel(&ctx, &initial, &config, 1, &telemetry);
        assert_eq!(seq.topology, par.topology);
        assert_eq!(seq.energy_gbps().to_bits(), par.energy_gbps().to_bits());
    }
}

/// Multi-chain annealing is deterministic: two four-chain runs agree
/// bit-for-bit regardless of thread scheduling.
#[test]
fn parallel_multi_chain_is_deterministic() {
    let (net, transfers, initial) = fixture("internet2", 3);
    let fiber_dist = net.plant.fiber_distance_matrix();
    let ctx = context(&net, &fiber_dist, &transfers);
    let config = AnnealConfig {
        max_iterations: 25,
        seed: 3,
        ..Default::default()
    };
    let telemetry = CoreTelemetry::disabled();
    let a = anneal_parallel(&ctx, &initial, &config, 4, &telemetry);
    let b = anneal_parallel(&ctx, &initial, &config, 4, &telemetry);
    assert_eq!(a.topology, b.topology);
    assert_eq!(a.energy_gbps().to_bits(), b.energy_gbps().to_bits());
}

/// The evaluation pool's worker count is a pure scheduling knob: the same
/// four-chain search through 1, 2, and 8 workers (inline, under-, and
/// over-subscribed relative to the chains) returns the identical winner,
/// bit for bit, and matches the machine-sized default.
#[test]
fn eval_pool_worker_count_never_changes_the_plan() {
    let (net, transfers, initial) = fixture("isp", 13);
    let fiber_dist = net.plant.fiber_distance_matrix();
    let ctx = context(&net, &fiber_dist, &transfers);
    let config = AnnealConfig {
        max_iterations: 25,
        seed: 13,
        ..Default::default()
    };
    let telemetry = CoreTelemetry::disabled();
    let chains = 4;
    let run = |workers: Option<usize>| {
        let mut caches: Vec<EnergyCache> = (0..chains).map(|_| EnergyCache::new()).collect();
        anneal_parallel_pooled(
            &ctx,
            &initial,
            &config,
            chains,
            &mut caches,
            workers,
            &telemetry,
        )
    };
    let reference = run(Some(1));
    for workers in [Some(2), Some(8), None] {
        let r = run(workers);
        assert_eq!(
            reference.topology, r.topology,
            "workers {workers:?}: pooled topology diverged from inline"
        );
        assert_eq!(
            reference.energy_gbps().to_bits(),
            r.energy_gbps().to_bits(),
            "workers {workers:?}: pooled energy diverged from inline"
        );
        assert_eq!(reference.iterations, r.iterations);
    }
}

/// Differential against the exact oracle: turning the cache on must leave
/// the annealing gap untouched on an enumerable instance (the cache may
/// make the search faster, never different).
#[test]
fn oracle_gap_is_unchanged_by_the_cache() {
    use owan::optical::{FiberPlant, OpticalParams};
    let params = OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 8,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    for i in 0..4 {
        plant.add_site(&format!("S{i}"), 2, 2);
    }
    for i in 0..4 {
        plant.add_fiber(i, (i + 1) % 4, 300.0);
    }
    let mk = |id: usize, src: usize, dst: usize| Transfer {
        id,
        src,
        dst,
        volume_gbits: 400.0,
        remaining_gbits: 400.0,
        arrival_s: 0.0,
        deadline_s: None,
        starved_slots: 0,
    };
    let transfers = vec![mk(0, 0, 1), mk(1, 2, 3), mk(2, 1, 2)];
    let fiber_dist = plant.fiber_distance_matrix();
    let ctx = EnergyContext {
        plant: &plant,
        fiber_dist: &fiber_dist,
        transfers: &transfers,
        policy: SchedulingPolicy::ShortestJobFirst,
        slot_len_s: 300.0,
        circuit_config: CircuitBuildConfig::default(),
        rate_config: RateAssignConfig::default(),
        prof: owan::prof::Profiler::disabled(),
    };
    let initial = default_topology(&plant);
    let base = AnnealConfig {
        max_iterations: 60,
        seed: 11,
        ..Default::default()
    };
    let on = AnnealConfig {
        use_cache: true,
        ..base
    };
    let off = AnnealConfig {
        use_cache: false,
        ..base
    };
    let gap_on = anneal_gap(&ctx, &initial, &on).expect("instance is enumerable");
    let gap_off = anneal_gap(&ctx, &initial, &off).expect("instance is enumerable");
    assert_eq!(
        gap_on.heuristic_gbps.to_bits(),
        gap_off.heuristic_gbps.to_bits(),
        "cache changed the heuristic result"
    );
    assert_eq!(
        gap_on.optimal_gbps.to_bits(),
        gap_off.optimal_gbps.to_bits()
    );
    assert_eq!(
        gap_on.gap_fraction.to_bits(),
        gap_off.gap_fraction.to_bits()
    );
}

/// Plant invalidation: degrading an amplifier between slots (the chaos
/// fault model shrinks a fiber's usable band) must flush the plant-scoped
/// cache layers — and the post-fault plans must still match a cache-less
/// engine fed the identical slot sequence.
#[test]
fn plant_degradation_flushes_and_stays_equivalent() {
    let (net, transfers, initial) = fixture("internet2", 5);
    let mk_engine = |use_cache: bool| {
        let config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: 25,
                use_cache,
                ..Default::default()
            },
            ..Default::default()
        };
        OwanEngine::new(initial.clone(), config)
    };
    let mut fast = mk_engine(true);
    let mut naive = mk_engine(false);

    let mut plant = net.plant.clone();
    let input = SlotInput {
        transfers: &transfers,
        slot_len_s: 300.0,
        now_s: 0.0,
    };
    let p1_fast = fast.plan_slot(&plant, &input);
    let p1_naive = naive.plan_slot(&plant, &input);
    assert_eq!(p1_fast.topology, p1_naive.topology);
    assert_eq!(fast.energy_caches()[0].stats.flushes, 0);

    // Degrade one fiber's amplifier: usable wavelengths shrink, the plant
    // fingerprint moves, and stale relay/footprint entries must go.
    let cap = plant.usable_wavelengths(0).saturating_sub(2).max(1);
    plant.set_fiber_wavelength_cap(0, Some(cap));
    let input2 = SlotInput {
        transfers: &transfers,
        slot_len_s: 300.0,
        now_s: 300.0,
    };
    let p2_fast = fast.plan_slot(&plant, &input2);
    let p2_naive = naive.plan_slot(&plant, &input2);
    assert_eq!(
        p2_fast.topology, p2_naive.topology,
        "post-degradation plan diverged"
    );
    assert_eq!(
        p2_fast.throughput_gbps.to_bits(),
        p2_naive.throughput_gbps.to_bits()
    );
    assert!(
        fast.energy_caches()[0].stats.flushes >= 1,
        "degradation did not flush the plant-scoped cache layers"
    );
}
