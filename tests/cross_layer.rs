//! Cross-layer integration tests: every plan an engine emits must be
//! realizable — network-layer rates within circuit capacities, Owan
//! topologies actually buildable in the optical layer, and consecutive
//! Owan states updatable by the consistent scheduler.

use owan::core::{build_topology, CircuitBuildConfig, SlotInput, Transfer, TransferRequest};
use owan::sim::plan_is_feasible;
use owan::sim::runner::{make_engine, EngineKind, RunnerConfig};
use owan::topo::{internet2_testbed, internet2_wan, Network};
use owan::update::{plan_consistent, NetworkDelta, OpKind, UpdateParams};
use owan::workload::{generate, WorkloadConfig};

fn transfers_for(net: &Network, n: usize) -> Vec<Transfer> {
    let mut wl = WorkloadConfig::testbed(1.0, 42);
    wl.duration_s = 600.0;
    let reqs: Vec<TransferRequest> = generate(net, &wl).into_iter().take(n).collect();
    reqs.iter()
        .enumerate()
        .map(|(i, r)| Transfer::from_request(i, r))
        .collect()
}

#[test]
fn every_engine_emits_feasible_plans() {
    let net = internet2_testbed();
    let theta = net.plant.params().wavelength_capacity_gbps;
    let transfers = transfers_for(&net, 12);
    let cfg = RunnerConfig {
        anneal_iterations: 80,
        ..Default::default()
    };
    for kind in [
        EngineKind::Owan,
        EngineKind::MaxFlow,
        EngineKind::MaxMinFract,
        EngineKind::Swan,
        EngineKind::Tempus,
        EngineKind::Amoeba,
        EngineKind::Greedy,
        EngineKind::RateOnly,
        EngineKind::RoutingRate,
    ] {
        let mut engine = make_engine(kind, &net, &cfg);
        let plan = engine.plan_slot(
            &net.plant,
            &SlotInput {
                transfers: &transfers,
                slot_len_s: 300.0,
                now_s: 0.0,
            },
        );
        plan_is_feasible(&plan, theta).unwrap_or_else(|e| panic!("{kind:?} infeasible: {e}"));
    }
}

#[test]
fn owan_topologies_are_optically_buildable() {
    // The plan's topology is the *achieved* one; rebuilding its circuits
    // from scratch on the same plant must succeed in full.
    let net = internet2_wan();
    let transfers = transfers_for(&net, 10);
    let cfg = RunnerConfig {
        anneal_iterations: 80,
        ..Default::default()
    };
    let mut engine = make_engine(EngineKind::Owan, &net, &cfg);
    let fd = net.plant.fiber_distance_matrix();
    for slot in 0..3 {
        let plan = engine.plan_slot(
            &net.plant,
            &SlotInput {
                transfers: &transfers,
                slot_len_s: 300.0,
                now_s: slot as f64 * 300.0,
            },
        );
        let built = build_topology(
            &net.plant,
            &plan.topology,
            &fd,
            &CircuitBuildConfig::default(),
        );
        assert_eq!(
            built.achieved, plan.topology,
            "slot {slot}: achieved topology must be rebuildable verbatim"
        );
        built.optical.check_invariants(&net.plant).unwrap();
        assert!(plan.topology.ports_feasible(&net.plant));
    }
}

#[test]
fn consecutive_owan_states_update_consistently() {
    let net = internet2_testbed();
    let transfers = transfers_for(&net, 12);
    let cfg = RunnerConfig {
        anneal_iterations: 80,
        ..Default::default()
    };
    let mut engine = make_engine(EngineKind::Owan, &net, &cfg);
    let half = transfers.len() / 2;
    let plan1 = engine.plan_slot(
        &net.plant,
        &SlotInput {
            transfers: &transfers[..half],
            slot_len_s: 300.0,
            now_s: 0.0,
        },
    );
    let plan2 = engine.plan_slot(
        &net.plant,
        &SlotInput {
            transfers: &transfers[half..],
            slot_len_s: 300.0,
            now_s: 300.0,
        },
    );
    let delta = NetworkDelta::from_plans(
        &plan1.topology,
        &plan1.allocations,
        &plan2.topology,
        &plan2.allocations,
        net.plant.params().wavelengths_per_fiber,
    );
    let params = UpdateParams {
        theta_gbps: net.plant.params().wavelength_capacity_gbps,
        circuit_time_s: net.plant.params().circuit_reconfig_time_s,
        path_time_s: 0.1,
    };
    let plan = plan_consistent(&delta, &params);
    assert_eq!(plan.ops.len(), delta.op_count(), "every op scheduled");
    // The schedule respects the circuit→path dependency: no AddPath whose
    // links gained circuits starts before those setups complete.
    for op in &plan.ops {
        if let OpKind::AddPath(i) = op.kind {
            let p = &delta.added_paths[i];
            for w in p.nodes.windows(2) {
                let needed_setups: Vec<_> = plan
                    .ops
                    .iter()
                    .filter(|o| {
                        matches!(o.kind, OpKind::SetupCircuit(j)
                        if {
                            let c = &delta.added_circuits[j];
                            (c.u == w[0] && c.v == w[1]) || (c.u == w[1] && c.v == w[0])
                        })
                    })
                    .collect();
                // If this link needed new circuits AND had none before, the
                // path cannot start before the first setup completes.
                let had_before = delta
                    .initial_circuits
                    .get(&(w[0].min(w[1]), w[0].max(w[1])))
                    .copied()
                    .unwrap_or(0);
                if had_before == 0 && !needed_setups.is_empty() {
                    let earliest_setup_end = needed_setups
                        .iter()
                        .map(|o| o.end_s)
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        op.start_s >= earliest_setup_end - 1e-9,
                        "path installed before its circuit was lit"
                    );
                }
            }
        }
    }
    // Update stays bounded: a handful of circuit times, not minutes.
    assert!(plan.makespan_s <= 10.0 * params.circuit_time_s + 5.0);
}

#[test]
fn workspace_umbrella_reexports_work() {
    // The `owan` facade exposes every subsystem.
    let _ = owan::graph::Graph::new(3);
    let _ = owan::optical::OpticalParams::default();
    let _ = owan::solver::LinearProgram::maximize(1);
    let _ = owan::topo::internet2_testbed();
    let _ = owan::core::Topology::empty(4);
    let _ = owan::update::UpdateParams::default();
    let _ = owan::sim::SimConfig::default();
}
