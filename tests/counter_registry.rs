//! Counter-registry audit: every counter a production code path emits
//! must be documented in DESIGN.md's "Counter registry" table, and every
//! table row must correspond to a real emitter.
//!
//! The scan is textual but conservative: it walks every `.rs` file under
//! `crates/*/src` and `src/`, truncates each file at its first
//! `#[cfg(test)]` line (the workspace convention puts tests at the end
//! of the file), skips comment lines, and extracts counter-name string
//! literals from the two emission idioms:
//!
//! - `counter = "name"` (the `telemetry_bundle!` field syntax), and
//! - `.counter("name")` (direct recorder calls).
//!
//! Dynamically-built names (`format!`) would be invisible to this scan;
//! the workspace has none, and introducing one should come with a
//! rethink of this audit rather than a silent hole.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts every string literal following `pattern` on this line.
fn literals_after<'a>(line: &'a str, pattern: &str) -> Vec<&'a str> {
    let mut found = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find(pattern) {
        rest = &rest[at + pattern.len()..];
        if let Some(end) = rest.find('"') {
            found.push(&rest[..end]);
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    found
}

/// Counter names emitted by production (pre-`#[cfg(test)]`) code,
/// mapped to the files that emit them.
fn emitted_counters() -> BTreeMap<String, BTreeSet<String>> {
    let root = repo_root();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            rust_files_under(&entry.path().join("src"), &mut files);
        }
    }
    rust_files_under(&root.join("src"), &mut files);
    assert!(
        files.len() > 20,
        "workspace scan found only {} .rs files — layout changed?",
        files.len()
    );

    let mut emitted: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for path in files {
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .display()
            .to_string();
        for line in text.lines() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("#[cfg(test)") {
                break; // tests-at-end convention: nothing below is production
            }
            if trimmed.starts_with("//") {
                continue;
            }
            for name in literals_after(line, "counter = \"") {
                emitted
                    .entry(name.to_string())
                    .or_default()
                    .insert(rel.clone());
            }
            for name in literals_after(line, ".counter(\"") {
                emitted
                    .entry(name.to_string())
                    .or_default()
                    .insert(rel.clone());
            }
        }
    }
    emitted
}

/// Counter names documented in DESIGN.md's "Counter registry" table.
fn documented_counters() -> BTreeSet<String> {
    let design = fs::read_to_string(repo_root().join("DESIGN.md")).expect("DESIGN.md readable");
    let section = design
        .split("### Counter registry")
        .nth(1)
        .expect("DESIGN.md has a '### Counter registry' section");
    let mut names = BTreeSet::new();
    for line in section.lines() {
        // Table rows look like: | `anneal.accepted` | solver | ... |
        let Some(rest) = line.trim_start().strip_prefix("| `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            names.insert(rest[..end].to_string());
        }
    }
    assert!(
        names.len() >= 30,
        "registry table parse found only {} rows — format changed?",
        names.len()
    );
    names
}

#[test]
fn every_emitted_counter_is_documented() {
    let emitted = emitted_counters();
    let documented = documented_counters();
    let missing: Vec<String> = emitted
        .iter()
        .filter(|(name, _)| !documented.contains(*name))
        .map(|(name, files)| format!("  {name} (emitted in {files:?})"))
        .collect();
    assert!(
        missing.is_empty(),
        "counters emitted by production code but absent from DESIGN.md's \
         Counter registry table:\n{}",
        missing.join("\n")
    );
}

#[test]
fn every_documented_counter_has_an_emitter() {
    let emitted = emitted_counters();
    let documented = documented_counters();
    let stale: Vec<&String> = documented
        .iter()
        .filter(|name| !emitted.contains_key(*name))
        .collect();
    assert!(
        stale.is_empty(),
        "DESIGN.md Counter registry rows with no production emitter \
         (stale docs?): {stale:?}"
    );
}

#[test]
fn scan_sees_the_known_families() {
    // Sanity-check the extraction itself: one representative per family.
    let emitted = emitted_counters();
    for name in [
        "anneal.cache_miss.cold",
        "circuits.built",
        "rates.delta_evals",
        "chaos.faults_detected",
        "chaos.attack.waves",
        "oracle.invariant_checked",
        "slo.trips",
    ] {
        assert!(emitted.contains_key(name), "scan failed to find {name}");
    }
    // And that test-only fixtures stayed invisible.
    for name in [
        "demo.items",
        "inner.ops",
        "outer.hits",
        "update.ops",
        "hits",
        "x",
    ] {
        assert!(
            !emitted.contains_key(name),
            "scan leaked test-only counter fixture {name}"
        );
    }
}
