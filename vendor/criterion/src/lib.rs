//! Offline mini benchmark harness.
//!
//! A dependency-free stand-in for `criterion` implementing the subset this
//! workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. It times a handful of
//! iterations and prints the mean per iteration — no statistics, no
//! warm-up, no reports. Good enough to smoke-run benches offline.

use std::time::Instant;

pub use std::hint::black_box;

const SAMPLES: usize = 10;

/// Entry point handed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness always runs a fixed
    /// small number of samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a named benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.as_ref()), &mut f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `f` a fixed number of times, accumulating wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..SAMPLES {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += SAMPLES as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean_ns = bencher.total_ns / bencher.iters as u128;
        println!("bench {name}: {mean_ns} ns/iter (n={})", bencher.iters);
    } else {
        println!("bench {name}: no iterations recorded");
    }
}

/// Collects bench functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
