//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses serde derives as forward-looking annotations —
//! nothing takes `T: Serialize` bounds or performs serialization — so in
//! offline builds the derives expand to nothing. If a future change
//! actually serializes through serde, vendor the real crate instead.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
