//! Offline stand-in for the `rand` crate.
//!
//! The build environments this workspace targets have no access to the
//! crates.io registry, so the workspace vendors a minimal, dependency-free
//! implementation of exactly the API surface it uses:
//!
//! * [`rngs::StdRng`] — a seedable deterministic generator
//!   (xoshiro256++, seeded through SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random`] for `bool` / `f64` / the integer primitives,
//! * [`RngExt::random_range`] over half-open and inclusive ranges of
//!   integers and floats.
//!
//! The streams differ from upstream `rand`'s, but every consumer in this
//! workspace only requires determinism-per-seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed. Only the `u64` entry point is needed
/// here.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface used across the workspace.
pub trait RngExt {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a primitive type.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value inside `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Primitive types samplable from raw bits.
pub trait FromRng {
    /// Draws one value from `rng`.
    fn from_rng<R: RngExt>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for i64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRng for i32 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from `rng` inside the range.
    fn sample_from<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

/// Widening-multiply range reduction (Lemire); bias is < 2^-64 per draw,
/// far below anything the simulations can resolve.
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = rng.random();
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngExt>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit: $t = rng.random();
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngExt, SeedableRng};

    /// A deterministic xoshiro256++ generator. Stream quality is more than
    /// sufficient for simulated annealing and workload synthesis; the
    /// stream is a pure function of the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.random_range(-400.0..400.0f64);
            assert!((-400.0..400.0).contains(&f));
            let g: f64 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
