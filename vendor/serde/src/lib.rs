//! Offline stand-in for `serde`.
//!
//! The workspace annotates domain types with `#[derive(Serialize,
//! Deserialize)]` but never serializes through serde (the telemetry layer
//! hand-rolls its JSON). This stub provides the trait names and no-op
//! derive macros so those annotations compile without registry access.
//! Like real serde with the `derive` feature, the macro and the trait
//! share each name — they live in different namespaces.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; carries no methods.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; carries no methods.
pub trait Deserialize<'de> {}
