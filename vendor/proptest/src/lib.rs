//! Offline mini property-testing harness.
//!
//! A dependency-free stand-in for the `proptest` crate, implementing the
//! subset this workspace's test suites use: integer/float range strategies,
//! tuples, `Just`, `any`, `collection::vec`, `option::of`,
//! `prop_map`/`prop_flat_map`, the `proptest!` macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), and the
//! `prop_assert*` family.
//!
//! Differences from upstream, on purpose:
//! * no shrinking — a failing case reports the case number and seed; rerun
//!   with the same build to reproduce (generation is deterministic);
//! * `prop_assert*` panic instead of returning `Err`, which reports the
//!   failure at the assertion site;
//! * the default case count is 64.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test-identity hash and the case number.
    pub fn deterministic(test_hash: u64, case: u32) -> Self {
        TestRng {
            state: test_hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// FNV-1a over a test name, used to decorrelate per-test streams.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. Unlike upstream there is no value tree: strategies
/// sample directly and nothing shrinks.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, panicking after too many
    /// rejections (mirrors upstream's global rejection cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
}

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (full range for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive, produced by [`any`].
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_from_bits {
    ($($t:ty => $conv:expr),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let bits = rng.next_u64();
                let f: fn(u64) -> $t = $conv;
                f(bits)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_from_bits! {
    bool => |b| b & 1 == 1,
    u8 => |b| b as u8,
    u16 => |b| b as u16,
    u32 => |b| b as u32,
    u64 => |b| b,
    usize => |b| b as usize,
    i8 => |b| b as i8,
    i16 => |b| b as i16,
    i32 => |b| b as i32,
    i64 => |b| b as i64,
    isize => |b| b as isize
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy yielding `Some(inner)` about four times out of five.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Harness configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure produced by `TestCaseError::fail` or `?` on a
/// failing fallible operation inside a `proptest!` body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(message: String) -> Self {
        TestCaseError { message }
    }
}

impl From<&str> for TestCaseError {
    fn from(message: &str) -> Self {
        TestCaseError {
            message: message.to_string(),
        }
    }
}

/// Result alias used by fallible helpers inside `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! Upstream-compatible module path for the error types.
    pub use super::{TestCaseError, TestCaseResult, TestRng};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a proptest body (panics on failure; this
/// mini-harness does not shrink, so the panic carries the case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests. Supports the subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn name(x in strategy, (a, b) in other) { body }
/// }
/// ```
///
/// Bodies may use `?` with errors convertible to [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let hash = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::deterministic(hash, case);
                    let ( $($arg,)+ ) =
                        ( $($crate::Strategy::sample(&($strat), &mut __rng),)+ );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}
