//! Quickstart: build a small optical WAN, submit bulk transfers, and let
//! the Owan engine jointly pick the topology, routing, and rates for one
//! time slot.
//!
//! Run with: `cargo run --release --example quickstart`

use owan::core::{
    default_topology, OwanConfig, OwanEngine, SlotInput, TrafficEngineer, Transfer, TransferRequest,
};
use owan::optical::{FiberPlant, OpticalParams};

fn main() {
    // ---- The physical plant: four sites on a 300 km ring. Each site has a
    // router with two WAN-facing ports, one regenerator, and a ROADM.
    let params = OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 8,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    for name in ["SEA", "SFO", "LAX", "DEN"] {
        plant.add_site(name, 2, 1);
    }
    for i in 0..4 {
        plant.add_fiber(i, (i + 1) % 4, 300.0);
    }

    // ---- Two bulk transfers: SEA->SFO and LAX->DEN, 100 Gb each
    // (the motivating example of the paper's Figure 3).
    let requests = [
        TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: 100.0,
            arrival_s: 0.0,
            deadline_s: None,
        },
        TransferRequest {
            src: 2,
            dst: 3,
            volume_gbits: 100.0,
            arrival_s: 0.0,
            deadline_s: None,
        },
    ];
    let transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| Transfer::from_request(i, r))
        .collect();

    // ---- One slot of joint optimization.
    let mut engine = OwanEngine::new(default_topology(&plant), OwanConfig::default());
    let plan = engine.plan_slot(
        &plant,
        &SlotInput {
            transfers: &transfers,
            slot_len_s: 10.0,
            now_s: 0.0,
        },
    );

    println!("chosen network-layer topology:");
    for (u, v, m) in plan.topology.links() {
        println!(
            "  {} = {} x{m}  ({} Gbps)",
            plant.site(u).name,
            plant.site(v).name,
            m as f64 * plant.params().wavelength_capacity_gbps
        );
    }
    println!("\nrate allocations:");
    for alloc in &plan.allocations {
        for (path, rate) in &alloc.paths {
            let names: Vec<&str> = path.iter().map(|&s| plant.site(s).name.as_str()).collect();
            println!(
                "  transfer {} via {}: {rate:.1} Gbps",
                alloc.transfer,
                names.join("-")
            );
        }
    }
    println!("\ntotal throughput: {:.1} Gbps", plan.throughput_gbps);
    assert!(plan.throughput_gbps > 0.0);
}
