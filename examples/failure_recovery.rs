//! Failure recovery (§3.4): a fiber cut mid-transfer. The controller
//! removes the failed fiber from its physical-network view and recomputes
//! the network state; because Owan re-optimizes the optical layer every
//! slot, the transfers reroute over surviving fibers.
//!
//! Run with: `cargo run --release --example failure_recovery`

use owan::core::{default_topology, OwanConfig, OwanEngine, TransferRequest};
use owan::sim::{simulate_with_failures, Failure, FailureEvent, SimConfig};
use owan::topo::internet2_wan;

fn main() {
    let net = internet2_wan();
    let plant = &net.plant;
    let seat = plant.site_by_name("SEAT").unwrap();
    let kans = plant.site_by_name("KANS").unwrap();

    // A large backup from SEAT to KANS — big enough (62.5 TB) to span the
    // failure: SEAT's two 100 Gbps ports need ~42 minutes.
    let requests = vec![TransferRequest {
        src: seat,
        dst: kans,
        volume_gbits: 500_000.0,
        arrival_s: 0.0,
        deadline_s: None,
    }];

    // Cut the SEAT-SALT fiber twenty minutes in.
    let cut = plant
        .fibers()
        .iter()
        .position(|f| (f.a == seat || f.b == seat) && (plant.site(f.other(seat)).name == "SALT"))
        .expect("SEAT-SALT fiber exists");
    let events = [FailureEvent {
        time_s: 1_200.0,
        failure: Failure::FiberCut(cut),
    }];

    let mut engine = OwanEngine::new(default_topology(plant), OwanConfig::default());
    let cfg = SimConfig {
        slot_len_s: 300.0,
        ..Default::default()
    };
    let result = simulate_with_failures(plant, &requests, &mut engine, &cfg, &events);

    println!("fiber SEAT-SALT cut at t=1200 s");
    for (t, gbps) in &result.throughput_series {
        println!("t={t:>6.0}s  allocated {gbps:>7.1} Gbps");
    }
    match result.completions[0].completion_s {
        Some(t) => println!("\nbackup completed at t={t:.0} s despite the cut"),
        None => println!("\nbackup did NOT complete"),
    }
    assert!(result.all_completed(), "Owan must reroute around the cut");
}
