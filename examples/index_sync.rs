//! Inter-datacenter search-index synchronization: the search-engine
//! workload from the paper's introduction ("the time to finish search
//! index synchronization directly impacts the search quality").
//!
//! Generates the hotspot-style inter-DC workload of §5.1 and compares how
//! fast Owan and the fixed-topology baselines complete the sync.
//!
//! Run with: `cargo run --release --example index_sync`

use owan::sim::metrics::{self, SizeBin};
use owan::sim::runner::{run_comparison, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::inter_dc;
use owan::workload::{generate, WorkloadConfig};

fn main() {
    let net = inter_dc(7);
    // One hour of index-shard pushes with moving hotspots (a freshly
    // rebuilt index fans out from whichever DC rebuilt it).
    let mut wl = WorkloadConfig::simulation(1.0, 11).with_hotspots();
    wl.duration_s = 3_600.0;
    let requests = generate(&net, &wl);

    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            ..Default::default()
        },
        anneal_iterations: 150,
        ..Default::default()
    };
    let results = run_comparison(&EngineKind::UNCONSTRAINED, &net, &requests, &cfg);

    println!(
        "index sync: {} shard transfers across {} DCs",
        requests.len(),
        24
    );
    println!("engine,avg_completion_s,p95_completion_s,makespan_s");
    for r in &results {
        let (avg, p95) = metrics::summary(r, SizeBin::All);
        println!("{},{avg:.0},{p95:.0},{:.0}", r.engine, r.makespan_s);
    }
    let (owan_avg, _) = metrics::summary(&results[0], SizeBin::All);
    let (maxflow_avg, _) = metrics::summary(&results[1], SizeBin::All);
    println!(
        "\nOwan finishes the sync {:.2}x faster than MaxFlow on average",
        metrics::improvement_factor(owan_avg, maxflow_avg)
    );
}
