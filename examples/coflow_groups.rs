//! Transfer groups (coflows), the §3.4 extension: when an application
//! pushes data to many destinations at once, the metric that matters is
//! the completion of the *last* member of the group.
//!
//! This example also shows how to extend the system with a custom
//! scheduling discipline: a tiny engine implementing
//! [`TrafficEngineer`](owan::core::TrafficEngineer) that orders transfers
//! with Smallest-Effective-Bottleneck-First instead of SJF, reusing the
//! rest of the machinery via `assign_rates_ordered`.
//!
//! Run with: `cargo run --release --example coflow_groups`

use owan::core::{
    assign_rates_ordered, group_completion_s, sebf_order, RateAssignConfig, SchedulingPolicy,
    SlotInput, SlotPlan, Topology, TrafficEngineer, TransferGroup, TransferRequest,
};
use owan::optical::FiberPlant;
use owan::sim::{simulate, SimConfig};
use owan::te::RoutingRateTe;
use owan::topo::internet2_testbed;

/// A fixed-topology engine that schedules coflows SEBF-first.
struct SebfTe {
    topology: Topology,
    theta: f64,
    groups: Vec<TransferGroup>,
}

impl TrafficEngineer for SebfTe {
    fn name(&self) -> &str {
        "SEBF"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let order = sebf_order(&self.topology, self.theta, input.transfers, &self.groups);
        let rates = assign_rates_ordered(
            &self.topology,
            self.theta,
            input.transfers,
            &order,
            input.slot_len_s,
            &RateAssignConfig::default(),
        );
        SlotPlan {
            topology: self.topology.clone(),
            throughput_gbps: rates.throughput_gbps,
            allocations: rates.allocations,
        }
    }
}

fn main() {
    let net = internet2_testbed();
    let theta = net.plant.params().wavelength_capacity_gbps;
    let chic = net.plant.site_by_name("CHIC").unwrap();
    let kans = net.plant.site_by_name("KANS").unwrap();

    // The classic coflow scheduling instance: two coflows compete for the
    // same bottleneck (the CHIC-KANS link). Coflow 0 has two 3,000 Gb
    // members; coflow 1 has one 4,500 Gb member. Per-transfer SJF runs the
    // 3,000s first even though coflow 1's *group* bottleneck (450 s) is
    // smaller than coflow 0's (600 s) — SEBF fixes the order and improves
    // average coflow completion time.
    let mut requests = Vec::new();
    let mut groups = vec![TransferGroup::new(0, vec![]), TransferGroup::new(1, vec![])];
    for i in 0..2 {
        requests.push(TransferRequest {
            src: chic,
            dst: kans,
            volume_gbits: 3_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        });
        groups[0].members.push(i);
    }
    requests.push(TransferRequest {
        src: chic,
        dst: kans,
        volume_gbits: 4_500.0,
        arrival_s: 0.0,
        deadline_s: None,
    });
    groups[1].members.push(2);

    let cfg = SimConfig {
        slot_len_s: 30.0,
        ..Default::default()
    };

    let mut sebf = SebfTe {
        topology: net.static_topology.clone(),
        theta,
        groups: groups.clone(),
    };
    let sebf_res = simulate(&net.plant, &requests, &mut sebf, &cfg);

    let mut sjf = RoutingRateTe::new(
        net.static_topology.clone(),
        theta,
        SchedulingPolicy::ShortestJobFirst,
    );
    let sjf_res = simulate(&net.plant, &requests, &mut sjf, &cfg);

    println!("coflow completion times (last member):");
    println!("group,SEBF_s,SJF_s");
    for g in &groups {
        let of = |res: &owan::sim::SimResult| {
            group_completion_s(g, |id| res.completions[id].completion_s).unwrap_or(f64::NAN)
        };
        println!("{},{:.0},{:.0}", g.id, of(&sebf_res), of(&sjf_res));
    }
    let avg = |res: &owan::sim::SimResult| {
        groups
            .iter()
            .map(|g| group_completion_s(g, |id| res.completions[id].completion_s).unwrap_or(0.0))
            .sum::<f64>()
            / groups.len() as f64
    };
    println!(
        "\naverage coflow completion: SEBF {:.0} s vs SJF {:.0} s",
        avg(&sebf_res),
        avg(&sjf_res)
    );
    assert!(sebf_res.all_completed() && sjf_res.all_completed());
    assert!(
        avg(&sebf_res) <= avg(&sjf_res) + 1.0,
        "SEBF should not lose on coflow CCT"
    );
}
