//! The full controller loop (§3.1 + §3.3): the same workload run twice,
//! once applying topology changes with the consistent (Dionysus-extended)
//! scheduler and once firing every device operation at the slot boundary
//! in one shot. The controller charges transition windows against
//! delivered volume, so the one-shot run loses real gigabits whenever the
//! annealer moves circuits.
//!
//! Run with: `cargo run --release --example update_disciplines`

use owan::core::{default_topology, OwanConfig, OwanEngine};
use owan::sim::{run_controller, ControllerConfig, UpdateDiscipline};
use owan::topo::internet2_testbed;
use owan::workload::{generate, WorkloadConfig};

fn main() {
    let net = internet2_testbed();
    let mut wl = WorkloadConfig::testbed(1.5, 21);
    wl.duration_s = 3_600.0;
    let requests = generate(&net, &wl);
    println!("workload: {} transfers over an hour\n", requests.len());

    println!("discipline,completed,makespan_s,update_ops,transition_loss_gbits");
    for discipline in [UpdateDiscipline::Consistent, UpdateDiscipline::OneShot] {
        let mut engine = OwanEngine::new(default_topology(&net.plant), OwanConfig::default());
        let cfg = ControllerConfig {
            slot_len_s: 300.0,
            discipline,
            ..Default::default()
        };
        let res = run_controller(&net.plant, &requests, &mut engine, &cfg);
        println!(
            "{discipline:?},{}/{},{:.0},{},{:.1}",
            res.completions
                .iter()
                .filter(|c| c.completion_s.is_some())
                .count(),
            res.completions.len(),
            res.makespan_s,
            res.update_ops,
            res.transition_loss_gbits,
        );
        assert!(res.all_completed());
    }
    println!("\nthe loss column charges each plan's own transition window against the");
    println!("ideal allocation: one-shot loses real packets on darkened circuits,");
    println!("while the consistent plan's 'loss' is serialization delay (make-before-");
    println!("break ramps the new rates in later). For the per-instant carried-traffic");
    println!("comparison — where consistent never dips — see `fig10b`.");
}
