//! Deadline-constrained bulk delivery: a media company pushes
//! high-definition video releases from a master site to distribution
//! areas, each with a hard delivery deadline (one of the motivating
//! applications of the paper's introduction).
//!
//! Compares Owan (EDF) against Amoeba and SWAN on the Internet2 testbed
//! network and reports how many releases ship on time.
//!
//! Run with: `cargo run --release --example video_delivery`

use owan::core::{SchedulingPolicy, TransferRequest};
use owan::sim::metrics::{pct_bytes_by_deadline, pct_deadlines_met, SizeBin};
use owan::sim::runner::{run_comparison, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::internet2_testbed;

fn main() {
    let net = internet2_testbed();
    let master = net.plant.site_by_name("CHIC").expect("master site exists");

    // A release wave: 3 TB of video to every other site, due in two hours; a couple of rush jobs with tight deadlines.
    let mut requests = Vec::new();
    for dst in 0..net.plant.site_count() {
        if dst == master {
            continue;
        }
        requests.push(TransferRequest {
            src: master,
            dst,
            volume_gbits: 3_000.0 * 8.0,
            arrival_s: 0.0,
            deadline_s: Some(2.0 * 3_600.0),
        });
    }
    // Rush: breaking-news package to the coasts, due in 30 minutes.
    for name in ["SEAT", "WASH"] {
        let dst = net.plant.site_by_name(name).expect("site");
        requests.push(TransferRequest {
            src: master,
            dst,
            volume_gbits: 120.0 * 8.0,
            arrival_s: 0.0,
            deadline_s: Some(1_800.0),
        });
    }

    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: 300.0,
            ..Default::default()
        },
        policy: SchedulingPolicy::EarliestDeadlineFirst,
        anneal_iterations: 150,
        ..Default::default()
    };
    let kinds = [EngineKind::Owan, EngineKind::Amoeba, EngineKind::Swan];
    let results = run_comparison(&kinds, &net, &requests, &cfg);

    println!("release wave: {} transfers from CHIC", requests.len());
    println!("engine,releases_on_time_pct,bytes_on_time_pct");
    for r in &results {
        println!(
            "{},{:.1},{:.1}",
            r.engine,
            pct_deadlines_met(r, SizeBin::All),
            pct_bytes_by_deadline(r)
        );
    }
    let owan_met = pct_deadlines_met(&results[0], SizeBin::All);
    assert!(owan_met > 0.0, "Owan must deliver something on time");
}
