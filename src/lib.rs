//! Umbrella crate re-exporting the full Owan public API.
//!
//! See the individual crates for details:
//! - [`owan_core`] — the Owan joint-optimization algorithms (the paper's contribution)
//! - [`owan_optical`] — optical-layer substrate (ROADMs, circuits, regenerators)
//! - [`owan_te`] — baseline traffic-engineering algorithms
//! - [`owan_sim`] — the time-slotted flow simulator and controller loop
pub use owan_bench as bench;
pub use owan_chaos as chaos;
pub use owan_core as core;
pub use owan_graph as graph;
pub use owan_obs as obs;
pub use owan_optical as optical;
pub use owan_oracle as oracle;
pub use owan_prof as prof;
pub use owan_scope as scope;
pub use owan_sim as sim;
pub use owan_solver as solver;
pub use owan_te as te;
pub use owan_topo as topo;
pub use owan_update as update;
pub use owan_why as why;
pub use owan_workload as workload;
