//! Command-line driver: run any engine on any evaluation network and
//! print the §5.1 metrics, verify the control loop against the oracle,
//! or introspect a run with the flight recorder.
//!
//! ```text
//! owan-cli [RUN OPTIONS]
//! owan-cli transfers [RUN OPTIONS] [--trace ID]
//! owan-cli top [RUN OPTIONS] [--interval SECS]
//! owan-cli verify [VERIFY OPTIONS]
//! owan-cli chaos [CHAOS OPTIONS]
//! owan-cli attack [ATTACK OPTIONS]
//! owan-cli explain [RUN OPTIONS] [--chaos] [--id N]
//! owan-cli slo [RUN OPTIONS] [--chaos] [--slo-burn F] [--slo-p99 MS]
//! owan-cli perf diff A.json B.json [--threshold F] [--gate]
//! ```
//!
//! With `--sigma` the workload carries deadlines and the deadline metrics
//! are reported; without it, completion-time metrics. `--obs` exports the
//! run's telemetry as JSON Lines; `--obs-summary` prints a per-stage
//! timing table. `--scope` attaches the flight recorder: per-transfer
//! lifecycle tracking, the causal slot timeline (`--scope-trace` exports
//! Chrome trace-event JSON for Perfetto), and anomaly-triggered flight
//! dumps (`--scope-dump`). `--prof FILE` attaches the tier-3 region
//! profiler and writes folded stacks for flamegraph tooling;
//! `--prof-report` prints the region tree and the cache-miss attribution
//! table instead. `--serve ADDR` exposes live Prometheus text
//! (`/metrics`, `/healthz`) while the run executes. Every flag is off by
//! default and a disabled recorder/scope/profiler changes no engine
//! output. `perf diff` compares two `bench_anneal` JSON reports phase by
//! phase with noise-aware thresholds; `--gate` exits 1 on regression.
//!
//! `attack` composes adversarial traffic (coremelt, flash crowd, drift)
//! with the chaos fault machinery and measures recovery — delivered-volume
//! and victim-utilization timelines, time-to-restore against a fault-free
//! baseline — for the annealed engine or any fixed-topology baseline.
//!
//! `explain` and `slo` attach the tier-4 why recorder: the run's obs,
//! scope, profiler, and fault streams are joined into one per-transfer
//! timeline, completion time decomposes into causal buckets that provably
//! partition in-system wall time, and online SLO monitors (deadline-miss
//! burn rate, p99 slot-planning latency, delivered-Gb deficit) freeze the
//! flight recorder when a `--slo-*` threshold trips.
//!
//! `verify` replays fuzzed or named-network scenarios through the real
//! controller with every cross-layer invariant checked each slot. On
//! divergence it exits 1 and prints (or writes, with `--out`) a minimized
//! reproducer that `--replay FILE` re-runs exactly. `--replay` also
//! accepts a flight dump written by `chaos --scope-dump`: the embedded
//! metadata reconstructs the scenario, the run is re-executed under the
//! full invariant audit, and the regenerated dump must match the file
//! byte for byte.
//!
//! Example:
//! `cargo run --release --bin owan-cli -- --net internet2 --engine owan --load 1.5`

use owan::chaos::{
    run_attack_explained, run_chaos, run_chaos_explained, seeded_scenario, AttackOutcome,
    AttackTimeline, ChaosConfig, ChaosResult, OpFaultModel, SlotAudit,
};
use owan::core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, Profiler, SchedulingPolicy,
    TrafficEngineer, TransferRequest,
};
use owan::obs::{format_counter_table, format_stage_table, Recorder};
use owan::oracle::{
    check_plan, check_timeline, fuzz_attack_observed, fuzz_chaos_observed, fuzz_seeds_observed,
    replay_scenario_observed, ChaosReplayConfig, ReplayConfig, Reproducer, Scenario,
};
use owan::scope::{render_top, FlightDump, MetricsServer, ScopeConfig, ScopeRecorder};
use owan::sim::metrics::{self, SizeBin};
use owan::sim::runner::{
    run_engine_explained, run_engine_profiled, run_engine_traced, EngineKind, RunnerConfig,
};
use owan::sim::SimConfig;
use owan::topo::{inter_dc, internet2_testbed, isp_backbone, Network};
use owan::why::{render_explain, render_slo, SloConfig, WhyConfig, WhyRecorder, WhyReport};
use owan::workload::attack::{
    coremelt, drift, flash_crowd, CoremeltConfig, DriftConfig, FlashCrowdConfig,
};
use owan::workload::{generate, WorkloadConfig};
use std::path::PathBuf;

const USAGE: &str = "usage: owan-cli [OPTIONS]
       owan-cli transfers [OPTIONS] [--trace ID]
       owan-cli top [OPTIONS] [--interval SECS]
       owan-cli verify [OPTIONS]
       owan-cli chaos [OPTIONS]
       owan-cli attack [OPTIONS]
       owan-cli explain [OPTIONS] [--chaos] [--id N]
       owan-cli slo [OPTIONS] [--chaos]
       owan-cli perf diff A.json B.json [--threshold F] [--gate]

run options:
  --net NAME          evaluation network: internet2 | isp | interdc  [internet2]
  --engine NAME       owan | maxflow | maxmin | swan | tempus | amoeba | greedy  [owan]
  --load L            workload load factor lambda  [1.0]
  --sigma S           deadline tightness; enables deadline workload and metrics
  --slot SECS         slot length, seconds  [300]
  --duration SECS     workload arrival window, seconds  [7200]
  --seed N            workload + annealing seed  [42]
  --iters N           annealing iterations per slot  [150]
  --chains N          parallel annealing chains per slot (owan)  [1]
  --no-fastpath       disable the energy-cache fast path (owan); plans are
                      bit-identical either way, only slower
  --max-requests N    truncate the workload to N transfers
  --obs FILE.jsonl    export run telemetry as JSON Lines to FILE
  --obs-summary       print a per-stage timing table after the metrics
  --scope             attach the flight recorder / timeline collector
  --scope-slots N     flight-recorder ring depth, slots  [16]
  --scope-dump FILE   write the anomaly-triggered flight dump here
  --scope-trace FILE  export the causal slot timeline as Chrome trace JSON
                      (profiler regions merged in when --prof* is also set)
  --prof FILE         attach the region profiler; write folded stacks to
                      FILE for flamegraph tooling
  --prof-report       attach the region profiler; print the region tree
                      and the cache-miss attribution table after the run
  --serve ADDR        serve live /metrics + /healthz on ADDR while running
  -h, --help          show this help

transfers: run the workload with the flight recorder attached and print
the per-transfer lifecycle table (state, slots served, delivered Gb by
path, queue time, preemptions, deadline slack). `--trace ID` prints one
transfer's slot-by-slot history instead. Takes all run options.

top: run the workload and print a live-refreshing dashboard (throughput,
active/queued/at-risk transfers, per-stage timings, chaos and oracle
counters) every `--interval` seconds [2] until the run finishes. Takes
all run options plus `--serve`.

verify options (modes are mutually exclusive; default is --seeds):
  --seeds N           fuzz N consecutive seeds through the oracle  [200]
  --start S           first fuzz seed  [0]
  --replay FILE       re-run a reproducer file written by a failed verify,
                      or a flight dump written by chaos --scope-dump
  --net NAME          replay a generated workload on a named network instead
  --slots N           replay horizon in slots (with --net)  [60]
  --iters N           annealing iterations per slot  [40]
  --load L            workload load factor (with --net)  [1.0]
  --seed N            workload seed (with --net)  [42]
  --out FILE          write the minimized reproducer here on divergence
  --obs FILE.jsonl    export oracle.invariant_* counters as JSON Lines
  --chaos             fuzz seeds through the hardened chaos controller
                      (cuts+repairs, op faults, crashes) instead of the
                      fault-free loop; failures name the seed directly
  --attack            fuzz seeds with adversarial traffic (coremelt and/or
                      flash-crowd waves) composed into each chaos scenario;
                      failures name the seed directly

verify exits 0 when every invariant holds on every slot, 1 on divergence
(printing the minimized reproducer), 2 on bad arguments.

chaos options:
  --net NAME          evaluation network: internet2 | isp | interdc  [internet2]
  --seed N            scenario + workload + annealing seed  [42]
  --load L            workload load factor lambda  [1.0]
  --sigma S           deadline tightness; enables the deadline workload
                      (the burn-rate and deficit SLOs judge deadlines)
  --slot SECS         slot length, seconds  [300]
  --slots N           horizon, slots  [60]
  --iters N           annealing iterations per slot  [60]
  --detect SECS       fault detection delay, seconds  [30]
  --timeout-prob P    per-attempt update-op timeout probability  [0.1]
  --fail-prob P       per-attempt update-op failure probability  [0.05]
  --obs FILE.jsonl    export telemetry (chaos.* counters included) to FILE
  --scope             attach the flight recorder to the faulted run
  --scope-slots N     flight-recorder ring depth, slots  [16]
  --scope-dump FILE   write the anomaly-triggered flight dump here; the
                      file replays through `verify --replay`
  --scope-trace FILE  export the faulted run's timeline as Chrome trace JSON
  --slo-burn F        attach the why recorder; freeze the flight recorder
                      when the deadline-miss burn rate exceeds F
  --slo-window N      burn-rate sliding window, slots  [8]
  --slo-p99 MS        trip when p99 slot-planning latency exceeds MS
                      (wall-clock: trips may differ between reruns)
  --slo-deficit G     trip when delivered Gb falls G behind the pro-rata
                      deadline promise

chaos runs a seeded scenario (fiber cut + amp degradation + op faults +
controller crash + repairs) through the hardened controller twice — once
fault-free, once with faults — checking every cross-layer invariant each
slot, and reports the delivered-volume loss. Exits 0 when all invariants
hold and the runs are deterministic, 1 otherwise, 2 on bad arguments.

attack options:
  --net NAME          evaluation network: internet2 | isp | interdc  [isp]
  --engine NAME       owan | maxflow | maxmin | swan | tempus | amoeba | greedy  [owan]
  --attack NAME       coremelt | flashcrowd | drift | mix  [coremelt]
  --seed N            workload + attack + annealing seed  [42]
  --load L            background workload load factor lambda  [0.4]
  --sigma S           deadline tightness for the background workload
  --slot SECS         slot length, seconds  [300]
  --slots N           horizon, slots  [40]
  --duration SECS     background arrival window, seconds  [min(horizon, 7200)]
  --max-requests N    truncate the background workload to N transfers  [200]
  --iters N           annealing iterations per slot  [60]
  --onset SECS        attack onset  [4 slots]
  --attack-duration S coremelt / drift window length, seconds  [6 slots]
  --intensity F       coremelt demand as a multiple of victim capacity  [1.5]
  --target-fibers N   coremelt: max-betweenness fibers to saturate  [2]
  --pairs-per-fiber N coremelt: adversarial src/dst pairs per fiber  [3]
  --sources N         flash crowd: sites surging onto the victim  [6]
  --peak-gbps F       flash crowd: aggregate peak rate (0 = 2x victim ports)  [0]
  --hold SECS         flash crowd: time held at peak  [1200]
  --restore F         recovery bar, fraction of baseline delivery  [0.9]
  --with-faults       compose the seeded chaos fault timeline and op faults
                      into the attacked run
  --detect SECS       fault detection delay, seconds  [30]
  --timeout-prob P    per-attempt update-op timeout probability  [0.1]
  --fail-prob P       per-attempt update-op failure probability  [0.05]
  --timeline          print the per-slot recovery timeline rows
  --obs FILE.jsonl    export telemetry (chaos.attack.* counters included)
  --scope / --scope-slots / --scope-dump / --scope-trace   as in chaos
  --slo-burn / --slo-window / --slo-p99 / --slo-deficit    as in chaos
                      (monitors attach to the attacked run)

attack derives an adversarial timeline from the seed, composes it (and,
with --with-faults, the seeded fault scenario) into the background
workload, and runs the hardened controller twice — attack-free and
attacked — checking every cross-layer invariant each slot. It reports
time-to-restore (slots until cumulative background delivery is back to
--restore of baseline and stays there), residual loss, and peak victim
utilization. Exits 0 when all invariants hold and the runs are
deterministic, 1 otherwise, 2 on bad arguments.

explain / slo options (take all run options, plus):
  --chaos             run the seeded chaos scenario (chaos options apply)
                      instead of the fault-free workload
  --id N              explain transfer N instead of the worst-slack one
  --slo-burn F        deadline-miss burn-rate threshold (unset: measured,
                      never tripped)
  --slo-window N      burn-rate sliding window, slots  [8]
  --slo-p99 MS        p99 slot-planning latency threshold, milliseconds
  --slo-deficit G     delivered-Gb deficit threshold vs pro-rata promise

explain re-runs the configured scenario with the tier-4 why recorder
joined onto the obs, scope, and profiler streams, then decomposes one
transfer's in-system wall time into causal buckets (serving, queue wait,
attack preemption, reconfiguration downtime, blackholed loss, rate
starvation vs fair share, stalled) that sum exactly to the wall time;
`bucket,*` rows carry seconds and share, `fault,*` rows the overlapping
fault instants, `prof_region,*` rows the controller hot spots. Exits 2
if --id names no transfer, 1 if the partition check fails.

slo runs the same scenario and prints the monitor report: deadline
outcomes and burn rate over the sliding window, p99 slot-planning
latency, delivered-Gb deficit, and which monitor (if any) tripped the
flight-recorder freeze.

perf diff options:
  --threshold F       relative change (fraction) a metric must move in the
                      bad direction to count as a regression  [0.15]
  --gate              exit 1 when any metric regressed past the threshold

perf diff compares two bench_anneal JSON reports phase by phase with
noise-aware thresholds. Reports at different scales are refused; a
core-count mismatch warns and masks the chain-scaling rows. Exits 0 when
comparable (regressions print but only --gate turns them into exit 1),
2 on bad arguments or incomparable reports.";

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    /// Parses `--key value`, returning `default` only when the flag is
    /// absent. A present-but-malformed value is an error (naming the
    /// flag), never a silent fallback to the default.
    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("owan-cli: invalid value '{raw}' for {key}");
                std::process::exit(2);
            }),
        }
    }
}

fn build_network(cmd: &str, name: &str) -> Network {
    match name {
        "internet2" => internet2_testbed(),
        "isp" => isp_backbone(7),
        "interdc" => inter_dc(7),
        other => {
            eprintln!("owan-cli{cmd}: unknown network '{other}' for --net");
            std::process::exit(2);
        }
    }
}

/// Writes the recorder snapshot as JSON Lines to `path` (if set).
fn write_obs(cmd: &str, recorder: &Recorder, path: &Option<String>) {
    let Some(path) = path else { return };
    if !recorder.is_enabled() {
        return;
    }
    let mut out: Vec<u8> = Vec::new();
    recorder
        .snapshot()
        .write_jsonl(&mut out)
        .expect("serializing to memory cannot fail");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("owan-cli{cmd}: cannot write --obs file '{path}': {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {} telemetry lines to {path}",
        out.iter().filter(|&&b| b == b'\n').count()
    );
}

/// Writes the scope's Chrome trace to `path` (if set). An enabled
/// profiler's retained spans are merged into the same trace (category
/// `prof`).
fn write_trace(
    cmd: &str,
    scope: &ScopeRecorder,
    recorder: &Recorder,
    prof: &Profiler,
    path: &Option<String>,
) {
    let Some(path) = path else { return };
    let snapshot = recorder.is_enabled().then(|| recorder.snapshot());
    let mut out: Vec<u8> = Vec::new();
    let prof_spans = if prof.is_enabled() {
        let snap = prof.snapshot();
        let n = snap.spans.len();
        scope
            .export_chrome_trace_with_prof(snapshot.as_ref(), &snap, &mut out)
            .expect("serializing to memory cannot fail");
        n
    } else {
        scope
            .export_chrome_trace(snapshot.as_ref(), &mut out)
            .expect("serializing to memory cannot fail");
        0
    };
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("owan-cli{cmd}: cannot write --scope-trace file '{path}': {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} spans to {path}", scope.span_count() + prof_spans);
}

/// Everything the run-shaped commands (default run, `transfers`, `top`)
/// share: network, engine kind, generated workload, runner config, and
/// the workload knobs echoed into scope metadata.
struct RunSetup {
    net_name: String,
    network: Network,
    engine_name: String,
    kind: EngineKind,
    requests: Vec<TransferRequest>,
    cfg: RunnerConfig,
    sigma: Option<f64>,
    load: f64,
    slot: f64,
    seed: u64,
    iters: usize,
}

fn run_setup(args: &Args) -> RunSetup {
    let net_name = args.get("--net").unwrap_or("internet2").to_string();
    let network = build_network("", &net_name);

    let engine_name = args.get("--engine").unwrap_or("owan").to_string();
    let kind = match engine_name.as_str() {
        "owan" => EngineKind::Owan,
        "maxflow" => EngineKind::MaxFlow,
        "maxmin" => EngineKind::MaxMinFract,
        "swan" => EngineKind::Swan,
        "tempus" => EngineKind::Tempus,
        "amoeba" => EngineKind::Amoeba,
        "greedy" => EngineKind::Greedy,
        other => {
            eprintln!("owan-cli: unknown engine '{other}' for --engine");
            std::process::exit(2);
        }
    };

    let load = args.parse("--load", 1.0f64);
    let sigma: Option<f64> = args.get("--sigma").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli: invalid value '{raw}' for --sigma");
            std::process::exit(2);
        })
    });
    let slot = args.parse("--slot", 300.0f64);
    let duration = args.parse("--duration", 7_200.0f64);
    let seed = args.parse("--seed", 42u64);
    let iters = args.parse("--iters", 150usize);
    let chains = args.parse("--chains", 1usize);
    let use_fastpath = !args.flag("--no-fastpath");
    let max_requests = args.parse("--max-requests", usize::MAX);

    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    wl.duration_s = duration;
    if net_name == "interdc" {
        wl = wl.with_hotspots();
    }
    if let Some(s) = sigma {
        wl = wl.with_deadlines(slot, s);
    }
    let mut requests = generate(&network, &wl);
    requests.truncate(max_requests);

    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: slot,
            max_slots: 5_000,
            ..Default::default()
        },
        anneal_iterations: iters,
        seed,
        policy: if sigma.is_some() {
            SchedulingPolicy::EarliestDeadlineFirst
        } else {
            SchedulingPolicy::ShortestJobFirst
        },
        anneal_chains: chains,
        anneal_use_cache: use_fastpath,
        ..Default::default()
    };

    RunSetup {
        net_name,
        network,
        engine_name,
        kind,
        requests,
        cfg,
        sigma,
        load,
        slot,
        seed,
        iters,
    }
}

/// Builds the scope from `--scope*` flags and stamps run-reconstruction
/// metadata. `force` enables the scope even without `--scope` (the
/// `transfers` command needs it unconditionally).
fn scope_from_args(args: &Args, setup: &RunSetup, mode: &str, force: bool) -> ScopeRecorder {
    let dump_path = args.get("--scope-dump").map(str::to_string);
    let enabled =
        force || args.flag("--scope") || dump_path.is_some() || args.get("--scope-trace").is_some();
    if !enabled {
        return ScopeRecorder::disabled();
    }
    let flight_slots = args.parse("--scope-slots", 16usize);
    let scope = ScopeRecorder::enabled(ScopeConfig {
        flight_slots,
        dump_path: dump_path.map(PathBuf::from),
    });
    scope.set_meta("mode", mode);
    scope.set_meta("net", &setup.net_name);
    scope.set_meta("engine", &setup.engine_name);
    scope.set_meta("seed", setup.seed);
    scope.set_meta("load", setup.load);
    scope.set_meta("slot_len_s", setup.slot);
    scope.set_meta("iters", setup.iters);
    scope.set_meta("scope_slots", flight_slots);
    scope
}

/// Builds the SLO monitor config from the `--slo-*` flags. Absent
/// thresholds stay `None`: the monitor measures but never trips.
fn slo_from_args(args: &Args) -> SloConfig {
    let mut slo = SloConfig::default();
    slo.burn_window_slots = args.parse("--slo-window", slo.burn_window_slots);
    if args.get("--slo-burn").is_some() {
        slo.burn_threshold = Some(args.parse("--slo-burn", 0.0f64));
    }
    if args.get("--slo-p99").is_some() {
        slo.plan_p99_ms = Some(args.parse("--slo-p99", 0.0f64));
    }
    if args.get("--slo-deficit").is_some() {
        slo.deficit_gbits = Some(args.parse("--slo-deficit", 0.0f64));
    }
    slo
}

/// True when any `--slo-*` threshold flag asks for the why recorder.
fn slo_flags_on(args: &Args) -> bool {
    args.get("--slo-burn").is_some()
        || args.get("--slo-p99").is_some()
        || args.get("--slo-deficit").is_some()
}

/// Stamps the SLO thresholds into scope metadata so a flight dump frozen
/// by a tripped monitor carries everything `verify --replay` needs to
/// rebuild the same why recorder. `slo_window` doubles as the marker
/// that the why recorder was attached at all.
fn stamp_slo_meta(scope: &ScopeRecorder, slo: &SloConfig) {
    scope.set_meta("slo_window", slo.burn_window_slots);
    if let Some(f) = slo.burn_threshold {
        scope.set_meta("slo_burn", f);
    }
    if let Some(ms) = slo.plan_p99_ms {
        scope.set_meta("slo_p99_ms", ms);
    }
    if let Some(g) = slo.deficit_gbits {
        scope.set_meta("slo_deficit", g);
    }
}

/// Everything `explain` and `slo` need back from a why-recorded run.
struct WhyRun {
    report: WhyReport,
    recorder: Recorder,
    scope: ScopeRecorder,
    prof: Profiler,
}

/// Runs the configured scenario for `explain` / `slo` with the tier-4
/// why recorder attached, joins the obs (and, on the sim path, profiler)
/// snapshots in, and distills the report. `--chaos` swaps the fault-free
/// workload for the seeded chaos scenario of `owan-cli chaos`.
fn why_run(args: &Args, cmd: &str) -> WhyRun {
    let recorder = Recorder::enabled();
    let slo = slo_from_args(args);
    let why = WhyRecorder::enabled(WhyConfig { slo: slo.clone() }, &recorder);

    let (scope, prof);
    if args.flag("--chaos") {
        let net_name = args.get("--net").unwrap_or("internet2").to_string();
        let network = build_network(cmd, &net_name);
        let seed = args.parse("--seed", 42u64);
        let load = args.parse("--load", 1.0f64);
        let sigma: Option<f64> = args.get("--sigma").map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("owan-cli{cmd}: invalid value '{raw}' for --sigma");
                std::process::exit(2);
            })
        });
        let slot = args.parse("--slot", 300.0f64);
        let slots = args.parse("--slots", 60usize);
        let iters = args.parse("--iters", 60usize);
        let detect = args.parse("--detect", 30.0f64);
        let timeout_prob = args.parse("--timeout-prob", 0.1f64);
        let fail_prob = args.parse("--fail-prob", 0.05f64);

        let mut wl = if net_name == "internet2" {
            WorkloadConfig::testbed(load, seed)
        } else {
            WorkloadConfig::simulation(load, seed)
        };
        if let Some(s) = sigma {
            wl = wl.with_deadlines(slot, s);
        }
        let requests = generate(&network, &wl);
        let plant = network.plant;
        let events = seeded_scenario(&plant, seed, slot * slots as f64);
        let op_faults = OpFaultModel {
            seed,
            timeout_prob,
            fail_prob,
        };
        let config = ChaosConfig {
            slot_len_s: slot,
            max_slots: slots,
            detection_delay_s: detect,
            ..Default::default()
        };
        let mut make_engine = |p: &owan::optical::FiberPlant| {
            let owan_config = OwanConfig {
                anneal: AnnealConfig {
                    max_iterations: iters,
                    seed: seed.wrapping_add(1),
                    ..Default::default()
                },
                ..Default::default()
            };
            Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
        };

        prof = Profiler::disabled();
        let dump_path = args.get("--scope-dump").map(str::to_string);
        let scope_on =
            args.flag("--scope") || dump_path.is_some() || args.get("--scope-trace").is_some();
        scope = if scope_on {
            let flight_slots = args.parse("--scope-slots", 16usize);
            let scope = ScopeRecorder::enabled(ScopeConfig {
                flight_slots,
                dump_path: dump_path.map(PathBuf::from),
            });
            scope.set_meta("mode", "chaos");
            scope.set_meta("net", &net_name);
            scope.set_meta("seed", seed);
            scope.set_meta("load", load);
            if let Some(s) = sigma {
                scope.set_meta("sigma", s);
            }
            scope.set_meta("slot_len_s", slot);
            scope.set_meta("slots", slots);
            scope.set_meta("iters", iters);
            scope.set_meta("detect_s", detect);
            scope.set_meta("timeout_prob", timeout_prob);
            scope.set_meta("fail_prob", fail_prob);
            scope.set_meta("scope_slots", flight_slots);
            stamp_slo_meta(&scope, &slo);
            scope
        } else {
            ScopeRecorder::disabled()
        };

        eprintln!(
            "owan-cli{cmd}: chaos {net_name}, {} transfers, {} fault events, \
             {slots} slots of {slot}s",
            requests.len(),
            events.len()
        );
        if let Err(e) = run_chaos_explained(
            &plant,
            &requests,
            &mut make_engine,
            &config,
            &events,
            &op_faults,
            &recorder,
            &scope,
            &why,
            None,
        ) {
            eprintln!("owan-cli{cmd}: FAIL: {e}");
            std::process::exit(1);
        }
    } else {
        let setup = run_setup(args);
        scope = scope_from_args(args, &setup, "sim", false);
        prof = Profiler::enabled();
        eprintln!(
            "owan-cli{cmd}: {} on {}, {} transfers, load {}, slot {}s",
            setup.engine_name,
            setup.net_name,
            setup.requests.len(),
            setup.load,
            setup.slot
        );
        run_engine_explained(
            setup.kind,
            &setup.network,
            &setup.requests,
            &setup.cfg,
            &recorder,
            &scope,
            &prof,
            &why,
        );
    }

    if prof.is_enabled() {
        why.attach_prof(&prof.snapshot());
    }
    why.attach_obs(&recorder.snapshot());
    let report = why.report().unwrap_or_else(|| {
        eprintln!("owan-cli{cmd}: the run recorded no slots");
        std::process::exit(1);
    });
    WhyRun {
        report,
        recorder,
        scope,
        prof,
    }
}

/// Shared tail of `explain` / `slo`: honor the export flags the run
/// options advertise (`--scope-trace`, `--prof`, `--obs`).
fn why_run_exports(args: &Args, cmd: &str, run: &WhyRun) {
    if run.scope.is_enabled() {
        write_trace(
            cmd,
            &run.scope,
            &run.recorder,
            &run.prof,
            &args.get("--scope-trace").map(str::to_string),
        );
    }
    if let Some(path) = args.get("--prof") {
        if run.prof.is_enabled() {
            let mut out: Vec<u8> = Vec::new();
            run.prof
                .write_folded(&mut out)
                .expect("serializing to memory cannot fail");
            if let Err(e) = std::fs::write(path, &out) {
                eprintln!("owan-cli{cmd}: cannot write --prof file '{path}': {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote folded stacks to {path} ({} lines)",
                out.iter().filter(|&&b| b == b'\n').count()
            );
        }
    }
    write_obs(cmd, &run.recorder, &args.get("--obs").map(str::to_string));
}

/// `owan-cli explain`: re-run the scenario with the why recorder joined
/// onto every stream and print one transfer's causal decomposition —
/// the worst-slack transfer by default, `--id N` to pick. Exits 1 when
/// the bucket partition check fails, 2 when `--id` names no transfer.
fn explain_main(args: &Args) -> ! {
    let run = why_run(args, " explain");
    let text = match args.get("--id") {
        Some(raw) => {
            let id: usize = raw.parse().unwrap_or_else(|_| {
                eprintln!("owan-cli explain: invalid value '{raw}' for --id");
                std::process::exit(2);
            });
            render_explain(&run.report, id).unwrap_or_else(|| {
                eprintln!("owan-cli explain: no transfer with id {id}");
                std::process::exit(2);
            })
        }
        None => {
            let worst = run.report.worst_slack().unwrap_or_else(|| {
                eprintln!("owan-cli explain: the run held no transfers");
                std::process::exit(1);
            });
            render_explain(&run.report, worst.id).expect("worst-slack transfer renders")
        }
    };
    print!("{text}");
    why_run_exports(args, " explain", &run);
    std::process::exit(if text.contains("partition,BROKEN") {
        1
    } else {
        0
    });
}

/// `owan-cli slo`: re-run the scenario with the why recorder attached
/// and print the monitor report (burn rate, p99 planning latency,
/// delivered-Gb deficit, and any tripped monitor).
fn slo_main(args: &Args) -> ! {
    let run = why_run(args, " slo");
    print!("{}", render_slo(&run.report));
    why_run_exports(args, " slo", &run);
    std::process::exit(0);
}

/// `owan-cli verify`: the oracle as a command. Three modes — seed fuzzing
/// (default), reproducer/flight-dump replay (`--replay`), and
/// named-network replay (`--net`) — all funnel through the same invariant
/// checkers the test suite uses.
fn verify_main(args: &Args) -> ! {
    let iters = args.parse("--iters", 40usize);
    let config = ReplayConfig {
        anneal_iterations: iters,
        check_updates: true,
    };
    let out_path = args.get("--out").map(str::to_string);
    let obs_path = args.get("--obs").map(str::to_string);
    let recorder = if obs_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let fail = |message: &str, repro: Option<&Reproducer>| -> ! {
        eprintln!("owan-cli verify: FAIL: {message}");
        if let Some(r) = repro {
            let text = r.to_text();
            match &out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("owan-cli verify: cannot write --out file '{path}': {e}");
                    } else {
                        eprintln!("owan-cli verify: reproducer written to {path}");
                    }
                }
                None => print!("{text}"),
            }
        }
        write_obs(" verify", &recorder, &obs_path);
        std::process::exit(1);
    };

    if let Some(path) = args.get("--replay") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("owan-cli verify: cannot read --replay file '{path}': {e}");
            std::process::exit(2);
        });
        if FlightDump::is_dump(&text) {
            replay_flight_dump(path, &text, iters, &recorder, &obs_path);
        }
        let repro = Reproducer::from_text(&text).unwrap_or_else(|e| {
            eprintln!("owan-cli verify: malformed reproducer '{path}': {e}");
            std::process::exit(2);
        });
        let scenario = repro.scenario();
        eprintln!(
            "replaying reproducer {path}: seed {}, {} requests, {} failures",
            scenario.seed,
            scenario.requests.len(),
            scenario.failures.len()
        );
        match replay_scenario_observed(&scenario, &config, &recorder) {
            Ok(stats) => {
                println!(
                    "OK: seed {} replayed clean ({} slots, {} plans, {} transitions checked)",
                    scenario.seed, stats.slots, stats.plans_checked, stats.updates_checked
                );
                write_obs(" verify", &recorder, &obs_path);
                std::process::exit(0);
            }
            Err(f) => fail(&f.to_string(), Some(&repro)),
        }
    }

    if let Some(net_name) = args.get("--net") {
        let network = build_network(" verify", net_name);
        let load = args.parse("--load", 1.0f64);
        let seed = args.parse("--seed", 42u64);
        let slots = args.parse("--slots", 60usize);
        let slot_len = args.parse("--slot", 300.0f64);
        let wl = if net_name == "internet2" {
            WorkloadConfig::testbed(load, seed)
        } else {
            WorkloadConfig::simulation(load, seed)
        };
        let requests = generate(&network, &wl);
        eprintln!(
            "verifying {net_name}: {} transfers, {slots} slots of {slot_len}s, {iters} anneal iters",
            requests.len()
        );
        let scenario = Scenario {
            seed,
            plant: network.plant,
            requests,
            failures: Vec::new(),
            slot_len_s: slot_len,
            max_slots: slots,
        };
        match replay_scenario_observed(&scenario, &config, &recorder) {
            Ok(stats) => {
                println!(
                    "OK: {net_name} replayed clean ({} slots, {} plans, {} transitions checked, \
                     {} transfers completed)",
                    stats.slots, stats.plans_checked, stats.updates_checked, stats.completed
                );
                write_obs(" verify", &recorder, &obs_path);
                std::process::exit(0);
            }
            // Named-network workloads are not seed-regenerable through the
            // fuzz generator, so there is no reproducer — the seed and net
            // name on the command line already pin the case.
            Err(f) => fail(&format!("{net_name}: {f}"), None),
        }
    }

    let count = args.parse("--seeds", 200u64);
    let start = args.parse("--start", 0u64);
    if args.flag("--attack") {
        eprintln!(
            "attack-fuzzing seeds {start}..{} with {iters} anneal iters",
            start + count
        );
        let chaos_config = ChaosReplayConfig {
            anneal_iterations: iters,
            ..Default::default()
        };
        match fuzz_attack_observed(start, count, &chaos_config, &recorder) {
            Ok(stats) => {
                println!(
                    "OK: {} attack scenarios replayed clean ({} slots, {} plans, {} update \
                     schedules checked, {} waves, {} recovered)",
                    stats.scenarios,
                    stats.slots,
                    stats.plans_checked,
                    stats.updates_checked,
                    stats.waves,
                    stats.recovered
                );
                write_obs(" verify", &recorder, &obs_path);
                std::process::exit(0);
            }
            // Attack scenarios regenerate deterministically from the
            // seed, so the seed itself is the reproducer.
            Err((seed, f)) => fail(&format!("attack seed {seed}: {f}"), None),
        }
    }
    if args.flag("--chaos") {
        eprintln!(
            "chaos-fuzzing seeds {start}..{} with {iters} anneal iters",
            start + count
        );
        let chaos_config = ChaosReplayConfig {
            anneal_iterations: iters,
            ..Default::default()
        };
        match fuzz_chaos_observed(start, count, &chaos_config, &recorder) {
            Ok(stats) => {
                println!(
                    "OK: {} chaos scenarios replayed clean ({} slots, {} plans, {} update \
                     schedules checked, {} crash restarts)",
                    stats.scenarios,
                    stats.slots,
                    stats.plans_checked,
                    stats.updates_checked,
                    stats.crashes
                );
                write_obs(" verify", &recorder, &obs_path);
                std::process::exit(0);
            }
            // Chaos scenarios regenerate deterministically from the seed,
            // so the seed itself is the reproducer.
            Err((seed, f)) => fail(&format!("chaos seed {seed}: {f}"), None),
        }
    }
    eprintln!(
        "fuzzing seeds {start}..{} with {iters} anneal iters",
        start + count
    );
    match fuzz_seeds_observed(start, count, &config, &recorder) {
        Ok(stats) => {
            println!(
                "OK: {} seeds replayed clean ({} slots, {} plans, {} transitions checked)",
                stats.seeds, stats.slots, stats.plans_checked, stats.updates_checked
            );
            write_obs(" verify", &recorder, &obs_path);
            std::process::exit(0);
        }
        Err(repro) => {
            let msg = repro.message.clone();
            fail(&format!("seed {}: {}", repro.seed, msg), Some(&repro))
        }
    }
}

/// `verify --replay` on a flight dump: the embedded metadata reconstructs
/// the chaos scenario, the run re-executes under the full invariant
/// audit, and the regenerated dump must match the input byte for byte.
fn replay_flight_dump(
    path: &str,
    text: &str,
    iters_flag: usize,
    recorder: &Recorder,
    obs_path: &Option<String>,
) -> ! {
    let dump = FlightDump::from_text(text).unwrap_or_else(|e| {
        eprintln!("owan-cli verify: malformed flight dump '{path}': {e}");
        std::process::exit(2);
    });
    let meta = |key: &str| -> String {
        dump.meta.get(key).cloned().unwrap_or_else(|| {
            eprintln!("owan-cli verify: flight dump '{path}' missing `{key}:` metadata");
            std::process::exit(2);
        })
    };
    let parse = |key: &str, raw: &str| -> f64 {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli verify: flight dump '{path}': bad `{key}: {raw}`");
            std::process::exit(2);
        })
    };
    let mode = meta("mode");
    if mode != "chaos" {
        eprintln!(
            "owan-cli verify: flight dump '{path}' has mode '{mode}'; only chaos dumps replay"
        );
        std::process::exit(2);
    }
    let net_name = meta("net");
    let seed = parse("seed", &meta("seed")) as u64;
    let load = parse("load", &meta("load"));
    let slot = parse("slot_len_s", &meta("slot_len_s"));
    let slots = parse("slots", &meta("slots")) as usize;
    let iters = dump
        .meta
        .get("iters")
        .map_or(iters_flag, |raw| parse("iters", raw) as usize);
    let detect = parse("detect_s", &meta("detect_s"));
    let timeout_prob = parse("timeout_prob", &meta("timeout_prob"));
    let fail_prob = parse("fail_prob", &meta("fail_prob"));
    let flight_slots = parse("scope_slots", &meta("scope_slots")) as usize;

    eprintln!(
        "replaying flight dump {path}: {} anomaly at slot {}, {} frames, net {net_name}, seed {seed}",
        dump.reason,
        dump.anomaly_slot,
        dump.frames.len()
    );

    let network = build_network(" verify", &net_name);
    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    if let Some(raw) = dump.meta.get("sigma") {
        wl = wl.with_deadlines(slot, parse("sigma", raw));
    }
    let requests = generate(&network, &wl);
    let plant = network.plant;
    let horizon = slot * slots as f64;
    let events = seeded_scenario(&plant, seed, horizon);
    let op_faults = OpFaultModel {
        seed,
        timeout_prob,
        fail_prob,
    };
    let config = ChaosConfig {
        slot_len_s: slot,
        max_slots: slots,
        detection_delay_s: detect,
        ..Default::default()
    };
    let mut make_engine = |p: &owan::optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: iters,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
    };

    let scope = ScopeRecorder::enabled(ScopeConfig {
        flight_slots,
        dump_path: None,
    });
    for (key, value) in &dump.meta {
        scope.set_meta(key, value);
    }

    // `slo_window` marks a dump whose run had the why recorder attached;
    // rebuilding the same monitors lets an SLO-tripped freeze reproduce
    // its anomaly (and so the dump) exactly.
    let why = match dump.meta.get("slo_window") {
        Some(raw) => {
            let mut slo = SloConfig {
                burn_window_slots: parse("slo_window", raw) as usize,
                ..Default::default()
            };
            if let Some(v) = dump.meta.get("slo_burn") {
                slo.burn_threshold = Some(parse("slo_burn", v));
            }
            if let Some(v) = dump.meta.get("slo_p99_ms") {
                slo.plan_p99_ms = Some(parse("slo_p99_ms", v));
            }
            if let Some(v) = dump.meta.get("slo_deficit") {
                slo.deficit_gbits = Some(parse("slo_deficit", v));
            }
            WhyRecorder::enabled(WhyConfig { slo }, recorder)
        }
        None => WhyRecorder::disabled(),
    };

    let checked = recorder.counter("oracle.invariant_checked");
    let violated = recorder.counter("oracle.invariant_violated");
    let mut audit = |a: &SlotAudit| -> Result<(), String> {
        checked.add(1);
        if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
            violated.add(1);
            scope.anomaly("oracle.invariant_violated", a.slot);
            return Err(format!("slot plan: {v}"));
        }
        if let (Some(delta), Some(update)) = (a.delta, a.update) {
            checked.add(1);
            if let Err(v) = check_timeline(delta, update, &a.params) {
                violated.add(1);
                scope.anomaly("oracle.invariant_violated", a.slot);
                return Err(format!("update: {v}"));
            }
        }
        Ok(())
    };

    if let Err(e) = run_chaos_explained(
        &plant,
        &requests,
        &mut make_engine,
        &config,
        &events,
        &op_faults,
        recorder,
        &scope,
        &why,
        Some(&mut audit),
    ) {
        eprintln!("owan-cli verify: FAIL: flight-dump replay violated an invariant: {e}");
        write_obs(" verify", recorder, obs_path);
        std::process::exit(1);
    }

    let regenerated = scope.dump_text();
    write_obs(" verify", recorder, obs_path);
    match regenerated {
        None => {
            eprintln!(
                "owan-cli verify: FAIL: replay of '{path}' triggered no anomaly \
                 (expected {} at slot {})",
                dump.reason, dump.anomaly_slot
            );
            std::process::exit(1);
        }
        Some(t) if t == text => {
            println!(
                "OK: flight dump {path} replayed exactly ({} anomaly at slot {}, {} frames, \
                 all invariants held)",
                dump.reason,
                dump.anomaly_slot,
                dump.frames.len()
            );
            std::process::exit(0);
        }
        Some(_) => {
            eprintln!(
                "owan-cli verify: FAIL: replay of '{path}' regenerated a different dump \
                 (non-deterministic run or stale metadata)"
            );
            std::process::exit(1);
        }
    }
}

/// `owan-cli chaos`: seeded fault injection end to end. Builds a named
/// network and workload, derives a chaos timeline from the seed, runs the
/// hardened controller fault-free and faulted (auditing every slot), and
/// reports the delivered-volume loss plus the fault/recovery counters.
fn chaos_main(args: &Args) -> ! {
    let net_name = args.get("--net").unwrap_or("internet2").to_string();
    let network = build_network(" chaos", &net_name);
    let seed = args.parse("--seed", 42u64);
    let load = args.parse("--load", 1.0f64);
    let sigma: Option<f64> = args.get("--sigma").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli chaos: invalid value '{raw}' for --sigma");
            std::process::exit(2);
        })
    });
    let slot = args.parse("--slot", 300.0f64);
    let slots = args.parse("--slots", 60usize);
    let iters = args.parse("--iters", 60usize);
    let detect = args.parse("--detect", 30.0f64);
    let timeout_prob = args.parse("--timeout-prob", 0.1f64);
    let fail_prob = args.parse("--fail-prob", 0.05f64);
    let obs_path = args.get("--obs").map(str::to_string);
    let scope_dump = args.get("--scope-dump").map(str::to_string);
    let scope_trace = args.get("--scope-trace").map(str::to_string);
    let scope_on = args.flag("--scope") || scope_dump.is_some() || scope_trace.is_some();
    let flight_slots = args.parse("--scope-slots", 16usize);
    let slo = slo_from_args(args);
    let why_enabled = slo_flags_on(args);

    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    if let Some(s) = sigma {
        wl = wl.with_deadlines(slot, s);
    }
    let requests = generate(&network, &wl);
    let plant = network.plant;

    let horizon = slot * slots as f64;
    let events = seeded_scenario(&plant, seed, horizon);
    let op_faults = OpFaultModel {
        seed,
        timeout_prob,
        fail_prob,
    };
    let config = ChaosConfig {
        slot_len_s: slot,
        max_slots: slots,
        detection_delay_s: detect,
        ..Default::default()
    };
    let mut make_engine = |p: &owan::optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: iters,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
    };

    eprintln!(
        "chaos on {net_name}: {} transfers, {} fault events, {slots} slots of {slot}s, \
         detect {detect}s, op faults t={timeout_prob} f={fail_prob}",
        requests.len(),
        events.len()
    );

    let recorder = if obs_path.is_some() || scope_on || why_enabled {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    // Dumps from both faulted runs must be byte-identical, so both scopes
    // carry the same reconstruction metadata; only the first writes a file.
    let make_scope = |dump_path: Option<&String>| -> ScopeRecorder {
        if !scope_on {
            return ScopeRecorder::disabled();
        }
        let scope = ScopeRecorder::enabled(ScopeConfig {
            flight_slots,
            dump_path: dump_path.map(PathBuf::from),
        });
        scope.set_meta("mode", "chaos");
        scope.set_meta("net", &net_name);
        scope.set_meta("seed", seed);
        scope.set_meta("load", load);
        if let Some(s) = sigma {
            scope.set_meta("sigma", s);
        }
        scope.set_meta("slot_len_s", slot);
        scope.set_meta("slots", slots);
        scope.set_meta("iters", iters);
        scope.set_meta("detect_s", detect);
        scope.set_meta("timeout_prob", timeout_prob);
        scope.set_meta("fail_prob", fail_prob);
        scope.set_meta("scope_slots", flight_slots);
        if why_enabled {
            stamp_slo_meta(&scope, &slo);
        }
        scope
    };
    let scope = make_scope(scope_dump.as_ref());
    let rerun_scope = make_scope(None);
    let make_why = |rec: &Recorder| -> WhyRecorder {
        if why_enabled {
            WhyRecorder::enabled(WhyConfig { slo: slo.clone() }, rec)
        } else {
            WhyRecorder::disabled()
        }
    };
    let why = make_why(&recorder);
    let rerun_why = make_why(&Recorder::disabled());

    let mut violations = 0usize;
    let baseline = run_chaos(
        &plant,
        &requests,
        &mut make_engine,
        &config,
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        None,
    )
    .expect("fault-free baseline cannot fail an absent audit");

    let mut run_with =
        |rec: &Recorder, scp: &ScopeRecorder, why: &WhyRecorder| -> Result<ChaosResult, String> {
            let checked = rec.counter("oracle.invariant_checked");
            let violated = rec.counter("oracle.invariant_violated");
            let mut audit = |a: &SlotAudit| -> Result<(), String> {
                checked.add(1);
                if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
                    violated.add(1);
                    scp.anomaly("oracle.invariant_violated", a.slot);
                    return Err(format!("slot plan: {v}"));
                }
                if let (Some(delta), Some(update)) = (a.delta, a.update) {
                    checked.add(1);
                    if let Err(v) = check_timeline(delta, update, &a.params) {
                        violated.add(1);
                        scp.anomaly("oracle.invariant_violated", a.slot);
                        return Err(format!("update: {v}"));
                    }
                }
                Ok(())
            };
            run_chaos_explained(
                &plant,
                &requests,
                &mut make_engine,
                &config,
                &events,
                &op_faults,
                rec,
                scp,
                why,
                Some(&mut audit),
            )
        };

    let faulted = match run_with(&recorder, &scope, &why) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("owan-cli chaos: FAIL: {e}");
            std::process::exit(1);
        }
    };
    // Same seed, same scenario: the rerun must reproduce the run exactly.
    let rerun = match run_with(&Recorder::disabled(), &rerun_scope, &rerun_why) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("owan-cli chaos: FAIL on rerun: {e}");
            std::process::exit(1);
        }
    };
    let mut deterministic = faulted.delivered_series == rerun.delivered_series
        && faulted.stats == rerun.stats
        && faulted.makespan_s == rerun.makespan_s;
    if scope_on && scope.dump_text() != rerun_scope.dump_text() {
        deterministic = false;
    }
    if !deterministic {
        eprintln!("owan-cli chaos: FAIL: rerun with seed {seed} diverged");
        violations += 1;
    }

    let completed = |r: &ChaosResult| {
        r.completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count()
    };
    println!("network,{net_name}");
    println!("seed,{seed}");
    println!("transfers,{}", requests.len());
    println!("fault_events,{}", events.len());
    println!("baseline_completed,{}", completed(&baseline));
    println!("chaos_completed,{}", completed(&faulted));
    println!("baseline_delivered_gbits,{:.0}", baseline.delivered_gbits);
    println!("chaos_delivered_gbits,{:.0}", faulted.delivered_gbits);
    println!(
        "delivered_loss_gbits,{:.0}",
        (baseline.delivered_gbits - faulted.delivered_gbits).max(0.0)
    );
    println!("baseline_makespan_s,{:.0}", baseline.makespan_s);
    println!("chaos_makespan_s,{:.0}", faulted.makespan_s);
    println!("faults_detected,{}", faulted.stats.faults_detected);
    println!("crashes,{}", faulted.stats.crashes);
    println!("op_retries,{}", faulted.stats.op_retries);
    println!("op_timeouts,{}", faulted.stats.op_timeouts);
    println!("op_failures,{}", faulted.stats.op_failures);
    println!("op_aborts,{}", faulted.stats.op_aborts);
    println!("fallback_slots,{}", faulted.stats.fallback_slots);
    println!("blackhole_paths,{}", faulted.stats.blackhole_paths);
    println!("blackhole_gbits,{:.0}", faulted.stats.blackhole_gbits);
    println!("transition_loss_gbits,{:.0}", faulted.transition_loss_gbits);
    if why_enabled {
        match why.tripped() {
            Some((reason, slot)) => println!("slo_tripped,{reason},{slot}"),
            None => println!("slo_tripped,none"),
        }
    }
    println!("deterministic,{}", if deterministic { "yes" } else { "no" });
    if scope_on {
        println!(
            "scope_dumped,{}",
            if scope.has_dumped() { "yes" } else { "no" }
        );
        if scope.has_dumped() {
            if let Some(path) = &scope_dump {
                eprintln!("flight dump written to {path}");
            }
        }
        write_trace(
            " chaos",
            &scope,
            &recorder,
            &Profiler::disabled(),
            &scope_trace,
        );
    }

    write_obs(" chaos", &recorder, &obs_path);
    if recorder.is_enabled() {
        let snapshot = recorder.snapshot();
        print!("{}", format_counter_table(&snapshot, "chaos."));
        print!("{}", format_counter_table(&snapshot, "oracle."));
        if why_enabled {
            print!("{}", format_counter_table(&snapshot, "slo."));
        }
    }

    std::process::exit(if violations == 0 { 0 } else { 1 });
}

/// `owan-cli attack`: adversarial traffic end to end. Derives a
/// coremelt / flash-crowd / drift timeline from the seed, composes it
/// (plus, with `--with-faults`, the seeded fault scenario) into a
/// background workload, runs the hardened controller attack-free and
/// attacked with every slot audited, and reports the recovery metrics:
/// time-to-restore against the baseline, residual background loss, and
/// peak victim-link utilization.
fn attack_main(args: &Args) -> ! {
    let net_name = args.get("--net").unwrap_or("isp").to_string();
    let network = build_network(" attack", &net_name);
    let engine_name = args.get("--engine").unwrap_or("owan").to_string();
    let kind = match engine_name.as_str() {
        "owan" => EngineKind::Owan,
        "maxflow" => EngineKind::MaxFlow,
        "maxmin" => EngineKind::MaxMinFract,
        "swan" => EngineKind::Swan,
        "tempus" => EngineKind::Tempus,
        "amoeba" => EngineKind::Amoeba,
        "greedy" => EngineKind::Greedy,
        other => {
            eprintln!("owan-cli attack: unknown engine '{other}' for --engine");
            std::process::exit(2);
        }
    };
    let attack_name = args.get("--attack").unwrap_or("coremelt").to_string();
    let seed = args.parse("--seed", 42u64);
    let load = args.parse("--load", 0.4f64);
    let sigma: Option<f64> = args.get("--sigma").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli attack: invalid value '{raw}' for --sigma");
            std::process::exit(2);
        })
    });
    let slot = args.parse("--slot", 300.0f64);
    let slots = args.parse("--slots", 40usize);
    let iters = args.parse("--iters", 60usize);
    let horizon = slot * slots as f64;
    let onset = args.parse("--onset", 4.0 * slot);
    let attack_dur = args.parse("--attack-duration", 6.0 * slot);
    let intensity = args.parse("--intensity", 1.5f64);
    let target_fibers = args.parse("--target-fibers", 2usize);
    let pairs_per_fiber = args.parse("--pairs-per-fiber", 3usize);
    let sources = args.parse("--sources", 6usize);
    let peak_gbps = args.parse("--peak-gbps", 0.0f64);
    let hold_s = args.parse("--hold", 1_200.0f64);
    let restore = args.parse("--restore", 0.9f64);
    let max_requests = args.parse("--max-requests", 200usize);
    let with_faults = args.flag("--with-faults");
    let detect = args.parse("--detect", 30.0f64);
    let timeout_prob = args.parse("--timeout-prob", 0.1f64);
    let fail_prob = args.parse("--fail-prob", 0.05f64);
    let timeline_rows = args.flag("--timeline");
    let obs_path = args.get("--obs").map(str::to_string);
    let scope_dump = args.get("--scope-dump").map(str::to_string);
    let scope_trace = args.get("--scope-trace").map(str::to_string);
    let scope_on = args.flag("--scope") || scope_dump.is_some() || scope_trace.is_some();
    let flight_slots = args.parse("--scope-slots", 16usize);
    let slo = slo_from_args(args);
    let why_enabled = slo_flags_on(args);
    if !(restore > 0.0 && restore <= 1.0) {
        eprintln!("owan-cli attack: --restore must be in (0, 1]");
        std::process::exit(2);
    }

    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    wl.duration_s = args.parse("--duration", horizon.min(7_200.0));
    if let Some(s) = sigma {
        wl = wl.with_deadlines(slot, s);
    }
    let mut requests = generate(&network, &wl);
    requests.truncate(max_requests);

    let coremelt_cfg = || {
        let mut cm = CoremeltConfig::new(seed, onset, attack_dur);
        cm.intensity = intensity;
        cm.target_fibers = target_fibers;
        cm.pairs_per_fiber = pairs_per_fiber;
        cm
    };
    let flash_cfg = |seed: u64, onset: f64| {
        let mut fc = FlashCrowdConfig::new(seed, onset);
        fc.sources = sources;
        fc.peak_gbps = peak_gbps;
        fc.hold_s = hold_s;
        fc
    };
    let timeline = match attack_name.as_str() {
        "coremelt" => AttackTimeline::new(vec![coremelt(&network.plant, &coremelt_cfg())]),
        "flashcrowd" => {
            AttackTimeline::new(vec![flash_crowd(&network.plant, &flash_cfg(seed, onset))])
        }
        "drift" => {
            let mut dr = DriftConfig::new(seed, attack_dur, load);
            dr.start_s = onset;
            AttackTimeline::new(vec![drift(&network, &dr)])
        }
        "mix" => AttackTimeline::new(vec![
            coremelt(&network.plant, &coremelt_cfg()),
            flash_crowd(
                &network.plant,
                &flash_cfg(seed.wrapping_add(1), onset + 2.0 * slot),
            ),
        ]),
        other => {
            eprintln!("owan-cli attack: unknown attack '{other}' for --attack");
            std::process::exit(2);
        }
    };
    let attack_requests: usize = timeline.waves().iter().map(|w| w.requests.len()).sum();

    let events = if with_faults {
        seeded_scenario(&network.plant, seed, horizon)
    } else {
        Vec::new()
    };
    let op_faults = if with_faults {
        OpFaultModel {
            seed,
            timeout_prob,
            fail_prob,
        }
    } else {
        OpFaultModel::none()
    };
    let config = ChaosConfig {
        slot_len_s: slot,
        max_slots: slots,
        detection_delay_s: detect,
        ..Default::default()
    };

    // The annealed engine re-optimizes the topology from the believed
    // plant every restart; every other kind plans on the network's fixed
    // static topology, which is exactly the baseline the recovery
    // comparison is about.
    let runner_cfg = RunnerConfig {
        anneal_iterations: iters,
        seed: seed.wrapping_add(1),
        ..Default::default()
    };
    let mut engine_factory = |p: &owan::optical::FiberPlant| -> Box<dyn TrafficEngineer> {
        if kind == EngineKind::Owan {
            let owan_config = OwanConfig {
                anneal: AnnealConfig {
                    max_iterations: iters,
                    seed: seed.wrapping_add(1),
                    ..Default::default()
                },
                ..Default::default()
            };
            Box::new(OwanEngine::new(default_topology(p), owan_config))
        } else {
            owan::sim::runner::make_engine(kind, &network, &runner_cfg)
        }
    };

    eprintln!(
        "attack on {net_name} ({engine_name}): {attack_name}, {} background transfers, \
         {attack_requests} attack requests ({:.0} Gb injected), {} fault events, \
         {slots} slots of {slot}s, onset {onset}s",
        requests.len(),
        timeline.injected_gbits(),
        events.len()
    );

    let recorder = if obs_path.is_some() || scope_on || why_enabled {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let make_scope = |dump_path: Option<&String>| -> ScopeRecorder {
        if !scope_on {
            return ScopeRecorder::disabled();
        }
        let scope = ScopeRecorder::enabled(ScopeConfig {
            flight_slots,
            dump_path: dump_path.map(PathBuf::from),
        });
        scope.set_meta("mode", "attack");
        scope.set_meta("net", &net_name);
        scope.set_meta("engine", &engine_name);
        scope.set_meta("attack", &attack_name);
        scope.set_meta("seed", seed);
        scope.set_meta("load", load);
        scope.set_meta("slot_len_s", slot);
        scope.set_meta("slots", slots);
        scope.set_meta("iters", iters);
        scope.set_meta("onset_s", onset);
        scope.set_meta("detect_s", detect);
        scope.set_meta("scope_slots", flight_slots);
        if why_enabled {
            stamp_slo_meta(&scope, &slo);
        }
        scope
    };
    let scope = make_scope(scope_dump.as_ref());
    let rerun_scope = make_scope(None);
    let make_why = |rec: &Recorder| -> WhyRecorder {
        if why_enabled {
            WhyRecorder::enabled(WhyConfig { slo: slo.clone() }, rec)
        } else {
            WhyRecorder::disabled()
        }
    };
    let why = make_why(&recorder);
    let rerun_why = make_why(&Recorder::disabled());

    let mut run_with =
        |rec: &Recorder, scp: &ScopeRecorder, why: &WhyRecorder| -> Result<AttackOutcome, String> {
            let checked = rec.counter("oracle.invariant_checked");
            let violated = rec.counter("oracle.invariant_violated");
            let mut audit = |a: &SlotAudit| -> Result<(), String> {
                checked.add(1);
                if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
                    violated.add(1);
                    scp.anomaly("oracle.invariant_violated", a.slot);
                    return Err(format!("slot plan: {v}"));
                }
                if let (Some(delta), Some(update)) = (a.delta, a.update) {
                    checked.add(1);
                    if let Err(v) = check_timeline(delta, update, &a.params) {
                        violated.add(1);
                        scp.anomaly("oracle.invariant_violated", a.slot);
                        return Err(format!("update: {v}"));
                    }
                }
                Ok(())
            };
            run_attack_explained(
                &network.plant,
                &requests,
                &timeline,
                &mut engine_factory,
                &config,
                restore,
                &events,
                &op_faults,
                rec,
                scp,
                why,
                Some(&mut audit),
            )
        };

    let outcome = match run_with(&recorder, &scope, &why) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("owan-cli attack: FAIL: {e}");
            std::process::exit(1);
        }
    };
    // Same seed, same timeline: the rerun must reproduce the run exactly.
    let rerun = match run_with(&Recorder::disabled(), &rerun_scope, &rerun_why) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("owan-cli attack: FAIL on rerun: {e}");
            std::process::exit(1);
        }
    };
    let mut deterministic = outcome.attacked.delivered_series == rerun.attacked.delivered_series
        && outcome.attacked.background_series == rerun.attacked.background_series
        && outcome.attacked.victim_util_series == rerun.attacked.victim_util_series
        && outcome.attacked.stats == rerun.attacked.stats
        && outcome.metrics == rerun.metrics;
    if scope_on && scope.dump_text() != rerun_scope.dump_text() {
        deterministic = false;
    }
    let mut violations = 0usize;
    if !deterministic {
        eprintln!("owan-cli attack: FAIL: rerun with seed {seed} diverged");
        violations += 1;
    }

    println!("network,{net_name}");
    println!("engine,{engine_name}");
    println!("attack,{attack_name}");
    println!("seed,{seed}");
    println!("transfers,{}", requests.len());
    println!("attack_waves,{}", timeline.waves().len());
    println!("attack_requests,{attack_requests}");
    println!("injected_gbits,{:.0}", outcome.metrics.injected_gbits);
    println!("fault_events,{}", events.len());
    println!("onset_slot,{}", outcome.metrics.onset_slot);
    println!(
        "baseline_delivered_gbits,{:.0}",
        outcome.baseline.delivered_gbits
    );
    println!(
        "attacked_delivered_gbits,{:.0}",
        outcome.attacked.delivered_gbits
    );
    println!(
        "attacked_background_gbits,{:.0}",
        outcome.attacked.background_gbits
    );
    println!(
        "residual_loss_gbits,{:.0}",
        outcome.metrics.residual_loss_gbits
    );
    println!("restore_fraction,{restore}");
    match outcome.metrics.time_to_restore_slots {
        Some(t) => println!("time_to_restore_slots,{t}"),
        None => println!("time_to_restore_slots,never"),
    }
    println!("restored_slots,{}", outcome.metrics.restored_slots);
    println!("peak_victim_util,{:.3}", outcome.metrics.peak_victim_util);
    println!("victim_links,{}", timeline.victim_links().len());
    println!("faults_detected,{}", outcome.attacked.stats.faults_detected);
    println!("crashes,{}", outcome.attacked.stats.crashes);
    println!("fallback_slots,{}", outcome.attacked.stats.fallback_slots);
    if why_enabled {
        match why.tripped() {
            Some((reason, slot)) => println!("slo_tripped,{reason},{slot}"),
            None => println!("slo_tripped,none"),
        }
    }
    println!("deterministic,{}", if deterministic { "yes" } else { "no" });
    if timeline_rows {
        println!("timeline,slot,baseline_gbits,background_gbits,victim_util");
        for i in 0..outcome.attacked.background_series.len() {
            let base = outcome
                .baseline
                .delivered_series
                .get(i)
                .map_or(0.0, |&(_, g)| g);
            let bg = outcome.attacked.background_series[i].1;
            let vu = outcome
                .attacked
                .victim_util_series
                .get(i)
                .map_or(0.0, |&(_, u)| u);
            println!("timeline,{i},{base:.0},{bg:.0},{vu:.3}");
        }
    }
    if scope_on {
        println!(
            "scope_dumped,{}",
            if scope.has_dumped() { "yes" } else { "no" }
        );
        if scope.has_dumped() {
            if let Some(path) = &scope_dump {
                eprintln!("flight dump written to {path}");
            }
        }
        write_trace(
            " attack",
            &scope,
            &recorder,
            &Profiler::disabled(),
            &scope_trace,
        );
    }

    write_obs(" attack", &recorder, &obs_path);
    if recorder.is_enabled() {
        let snapshot = recorder.snapshot();
        print!("{}", format_counter_table(&snapshot, "chaos."));
        print!("{}", format_counter_table(&snapshot, "oracle."));
        if why_enabled {
            print!("{}", format_counter_table(&snapshot, "slo."));
        }
    }

    std::process::exit(if violations == 0 { 0 } else { 1 });
}

/// `owan-cli perf diff`: compare two `bench_anneal` JSON reports with
/// noise-aware per-phase thresholds. Strict flag parsing — unknown flags
/// and malformed values exit 2 rather than being silently ignored, so a
/// typo'd `--gate` can never turn a gating CI job into a no-op.
fn perf_main() -> ! {
    let rest: Vec<String> = std::env::args().skip(2).collect();
    let usage = "owan-cli perf: usage: owan-cli perf diff A.json B.json [--threshold F] [--gate]";
    if rest.first().map(String::as_str) != Some("diff") {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    let mut threshold = 0.15f64;
    let mut gate = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = rest.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("owan-cli perf: --threshold needs a value");
                    std::process::exit(2);
                });
                threshold = raw.parse().unwrap_or_else(|_| {
                    eprintln!("owan-cli perf: invalid value '{raw}' for --threshold");
                    std::process::exit(2);
                });
            }
            "--gate" => gate = true,
            flag if flag.starts_with('-') => {
                eprintln!("owan-cli perf: unknown flag '{flag}'\n{usage}");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    let [a_path, b_path] = files.as_slice() else {
        eprintln!(
            "owan-cli perf: expected exactly two report files, got {}\n{usage}",
            files.len()
        );
        std::process::exit(2);
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("owan-cli perf: cannot read '{path}': {e}");
            std::process::exit(2);
        })
    };
    match owan::bench::perf_diff(&read(a_path), &read(b_path), threshold) {
        Ok(diff) => {
            print!("{}", diff.format_table());
            if gate && diff.has_regressions() {
                eprintln!(
                    "owan-cli perf: FAIL: regression past the {:.0}% threshold",
                    threshold * 100.0
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("owan-cli perf: {e}");
            std::process::exit(2);
        }
    }
}

/// `owan-cli transfers`: run the workload with the flight recorder
/// attached, then print the per-transfer lifecycle table (or, with
/// `--trace ID`, one transfer's slot-by-slot history).
fn transfers_main(args: &Args) -> ! {
    let setup = run_setup(args);
    let scope = scope_from_args(args, &setup, "sim", true);
    let recorder = Recorder::enabled();
    eprintln!(
        "tracing {} on {}: {} transfers, load {}, slot {}s",
        setup.engine_name,
        setup.net_name,
        setup.requests.len(),
        setup.load,
        setup.slot
    );
    let result = run_engine_traced(
        setup.kind,
        &setup.network,
        &setup.requests,
        &setup.cfg,
        &recorder,
        &scope,
    );

    if let Some(raw) = args.get("--trace") {
        let id: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli transfers: invalid value '{raw}' for --trace");
            std::process::exit(2);
        });
        match scope.render_transfer_trace(id) {
            Some(trace) => print!("{trace}"),
            None => {
                eprintln!("owan-cli transfers: no transfer with id {id}");
                std::process::exit(2);
            }
        }
    } else {
        print!("{}", scope.render_transfers().unwrap_or_default());
        println!();
        println!(
            "total delivered: {:.1} Gb across {} transfers in {} slots",
            scope.total_delivered_gbits(),
            result.completions.len(),
            result.slots
        );
    }
    write_trace(
        " transfers",
        &scope,
        &recorder,
        &Profiler::disabled(),
        &args.get("--scope-trace").map(str::to_string),
    );
    std::process::exit(0);
}

/// `owan-cli top`: run the workload on a background thread and print a
/// refreshing dashboard from the live recorder until it finishes.
fn top_main(args: &Args) -> ! {
    let setup = run_setup(args);
    let scope = scope_from_args(args, &setup, "sim", false);
    let recorder = Recorder::enabled();
    let interval = args.parse("--interval", 2.0f64).max(0.1);
    let server = args.get("--serve").map(|addr| {
        let server = MetricsServer::spawn(addr, recorder.clone()).unwrap_or_else(|e| {
            eprintln!("owan-cli top: cannot bind --serve address '{addr}': {e}");
            std::process::exit(2);
        });
        eprintln!("serving /metrics on http://{}", server.addr());
        server
    });

    eprintln!(
        "running {} on {}: {} transfers, load {}, slot {}s (dashboard every {interval}s)",
        setup.engine_name,
        setup.net_name,
        setup.requests.len(),
        setup.load,
        setup.slot
    );

    let start = std::time::Instant::now();
    let handle = {
        let network = setup.network.clone();
        let requests = setup.requests.clone();
        let cfg = setup.cfg;
        let kind = setup.kind;
        let rec = recorder.clone();
        let scp = scope.clone();
        std::thread::spawn(move || run_engine_traced(kind, &network, &requests, &cfg, &rec, &scp))
    };
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_secs_f64(interval.min(0.25)));
        if start.elapsed().as_secs_f64() >= interval {
            print!(
                "{}",
                render_top(&recorder.snapshot(), start.elapsed().as_secs_f64())
            );
            println!();
        }
    }
    let result = handle.join().expect("sim thread panicked");
    println!("=== final ===");
    print!(
        "{}",
        render_top(&recorder.snapshot(), start.elapsed().as_secs_f64())
    );
    println!(
        "completed {}/{} transfers in {} slots, makespan {:.0}s",
        result
            .completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count(),
        result.completions.len(),
        result.slots,
        result.makespan_s
    );
    drop(server);
    std::process::exit(0);
}

fn main() {
    let args = Args(std::env::args().collect());
    if args.flag("--help") || args.flag("-h") {
        println!("{USAGE}");
        return;
    }
    match std::env::args().nth(1).as_deref() {
        Some("verify") => verify_main(&args),
        Some("chaos") => chaos_main(&args),
        Some("attack") => attack_main(&args),
        Some("explain") => explain_main(&args),
        Some("slo") => slo_main(&args),
        Some("transfers") => transfers_main(&args),
        Some("top") => top_main(&args),
        Some("perf") => perf_main(),
        _ => {}
    }

    let setup = run_setup(&args);
    let obs_path = args.get("--obs").map(str::to_string);
    let obs_summary = args.flag("--obs-summary");
    let scope_trace = args.get("--scope-trace").map(str::to_string);
    let serve_addr = args.get("--serve").map(str::to_string);
    let scope = scope_from_args(&args, &setup, "sim", false);
    let prof_path = args.get("--prof").map(str::to_string);
    let prof_report = args.flag("--prof-report");
    let prof = if prof_path.is_some() || prof_report {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };

    let recorder = if obs_path.is_some()
        || obs_summary
        || prof_report
        || scope.is_enabled()
        || serve_addr.is_some()
    {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let server = serve_addr.map(|addr| {
        let server = MetricsServer::spawn(&addr, recorder.clone()).unwrap_or_else(|e| {
            eprintln!("owan-cli: cannot bind --serve address '{addr}': {e}");
            std::process::exit(2);
        });
        eprintln!("serving /metrics on http://{}", server.addr());
        server
    });

    eprintln!(
        "running {} on {}: {} transfers, load {}, slot {}s",
        setup.engine_name,
        setup.net_name,
        setup.requests.len(),
        setup.load,
        setup.slot
    );
    let result = run_engine_profiled(
        setup.kind,
        &setup.network,
        &setup.requests,
        &setup.cfg,
        &recorder,
        &scope,
        &prof,
    );

    println!("engine,{}", result.engine);
    println!("network,{}", setup.net_name);
    println!("transfers,{}", result.completions.len());
    println!(
        "completed,{}",
        result
            .completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count()
    );
    println!("slots,{}", result.slots);
    println!("makespan_s,{:.0}", result.makespan_s);
    let (avg, p95) = metrics::summary(&result, SizeBin::All);
    println!("avg_completion_s,{avg:.0}");
    println!("p95_completion_s,{p95:.0}");
    if setup.sigma.is_some() {
        println!(
            "pct_deadlines_met,{:.1}",
            metrics::pct_deadlines_met(&result, SizeBin::All)
        );
        println!(
            "pct_bytes_by_deadline,{:.1}",
            metrics::pct_bytes_by_deadline(&result)
        );
    }
    for bin in [SizeBin::Small, SizeBin::Middle, SizeBin::Large] {
        let (avg, p95) = metrics::summary(&result, bin);
        println!("{}_avg_s,{avg:.0}", bin.label().to_lowercase());
        println!("{}_p95_s,{p95:.0}", bin.label().to_lowercase());
    }
    if scope.is_enabled() {
        println!(
            "scope_dumped,{}",
            if scope.has_dumped() { "yes" } else { "no" }
        );
        write_trace("", &scope, &recorder, &prof, &scope_trace);
    }

    if let Some(path) = &prof_path {
        let mut out: Vec<u8> = Vec::new();
        prof.write_folded(&mut out)
            .expect("serializing to memory cannot fail");
        if let Err(e) = std::fs::write(path, &out) {
            eprintln!("owan-cli: cannot write --prof file '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote folded stacks to {path} ({} lines)",
            out.iter().filter(|&&b| b == b'\n').count()
        );
    }
    if prof_report {
        print!("{}", prof.snapshot().format_tree());
        let snapshot = recorder.snapshot();
        let table = format_counter_table(&snapshot, "anneal.cache_miss.");
        if table.lines().count() > 1 {
            print!("{table}");
        }
        // Delta vs full rate recomputation split — how often the
        // incremental path carried an evaluation.
        let rates = format_counter_table(&snapshot, "rates.");
        if rates.lines().count() > 1 {
            print!("{rates}");
        }
    }

    write_obs("", &recorder, &obs_path);
    if recorder.is_enabled() && obs_summary {
        print!(
            "{}",
            format_stage_table(
                &recorder.snapshot(),
                &[
                    ("slot", "stage.slot"),
                    ("anneal", "stage.anneal"),
                    ("anneal iteration", "stage.anneal.iter"),
                    ("circuit build", "stage.circuits"),
                    ("rate assignment", "stage.rates"),
                    ("update scheduling", "stage.update"),
                ],
            )
        );
    }
    drop(server);
}
