//! Command-line driver: run any engine on any evaluation network and
//! print the §5.1 metrics.
//!
//! ```text
//! owan-cli [--net internet2|isp|interdc] [--engine owan|maxflow|maxmin|swan|tempus|amoeba|greedy]
//!          [--load λ] [--sigma σ] [--slot SECONDS] [--duration SECONDS]
//!          [--seed N] [--iters N] [--max-requests N]
//! ```
//!
//! With `--sigma` the workload carries deadlines and the deadline metrics
//! are reported; without it, completion-time metrics.
//!
//! Example:
//! `cargo run --release --bin owan-cli -- --net internet2 --engine owan --load 1.5`

use owan::core::SchedulingPolicy;
use owan::sim::metrics::{self, SizeBin};
use owan::sim::runner::{run_engine, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::{inter_dc, internet2_testbed, isp_backbone, Network};
use owan::workload::{generate, WorkloadConfig};

/// Minimal flag parser: `--key value` pairs.
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn main() {
    let args = Args(std::env::args().collect());
    if args.0.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: owan-cli [--net internet2|isp|interdc] [--engine NAME] [--load L] \
             [--sigma S] [--slot SECS] [--duration SECS] [--seed N] [--iters N] \
             [--max-requests N]"
        );
        return;
    }

    let net_name = args.get("--net").unwrap_or("internet2").to_string();
    let network: Network = match net_name.as_str() {
        "internet2" => internet2_testbed(),
        "isp" => isp_backbone(7),
        "interdc" => inter_dc(7),
        other => {
            eprintln!("unknown network '{other}'");
            std::process::exit(2);
        }
    };

    let engine_name = args.get("--engine").unwrap_or("owan").to_string();
    let kind = match engine_name.as_str() {
        "owan" => EngineKind::Owan,
        "maxflow" => EngineKind::MaxFlow,
        "maxmin" => EngineKind::MaxMinFract,
        "swan" => EngineKind::Swan,
        "tempus" => EngineKind::Tempus,
        "amoeba" => EngineKind::Amoeba,
        "greedy" => EngineKind::Greedy,
        other => {
            eprintln!("unknown engine '{other}'");
            std::process::exit(2);
        }
    };

    let load = args.parse("--load", 1.0f64);
    let sigma: Option<f64> = args.get("--sigma").and_then(|v| v.parse().ok());
    let slot = args.parse("--slot", 300.0f64);
    let duration = args.parse("--duration", 7_200.0f64);
    let seed = args.parse("--seed", 42u64);
    let iters = args.parse("--iters", 150usize);
    let max_requests = args.parse("--max-requests", usize::MAX);

    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    wl.duration_s = duration;
    if net_name == "interdc" {
        wl = wl.with_hotspots();
    }
    if let Some(s) = sigma {
        wl = wl.with_deadlines(slot, s);
    }
    let mut requests = generate(&network, &wl);
    requests.truncate(max_requests);

    let cfg = RunnerConfig {
        sim: SimConfig { slot_len_s: slot, max_slots: 5_000, ..Default::default() },
        anneal_iterations: iters,
        seed,
        policy: if sigma.is_some() {
            SchedulingPolicy::EarliestDeadlineFirst
        } else {
            SchedulingPolicy::ShortestJobFirst
        },
        ..Default::default()
    };

    eprintln!(
        "running {engine_name} on {net_name}: {} transfers, load {load}, slot {slot}s",
        requests.len()
    );
    let result = run_engine(kind, &network, &requests, &cfg);

    println!("engine,{}", result.engine);
    println!("network,{net_name}");
    println!("transfers,{}", result.completions.len());
    println!("completed,{}", result.completions.iter().filter(|c| c.completion_s.is_some()).count());
    println!("slots,{}", result.slots);
    println!("makespan_s,{:.0}", result.makespan_s);
    let (avg, p95) = metrics::summary(&result, SizeBin::All);
    println!("avg_completion_s,{avg:.0}");
    println!("p95_completion_s,{p95:.0}");
    if sigma.is_some() {
        println!("pct_deadlines_met,{:.1}", metrics::pct_deadlines_met(&result, SizeBin::All));
        println!("pct_bytes_by_deadline,{:.1}", metrics::pct_bytes_by_deadline(&result));
    }
    for bin in [SizeBin::Small, SizeBin::Middle, SizeBin::Large] {
        let (avg, p95) = metrics::summary(&result, bin);
        println!("{}_avg_s,{avg:.0}", bin.label().to_lowercase());
        println!("{}_p95_s,{p95:.0}", bin.label().to_lowercase());
    }
}
