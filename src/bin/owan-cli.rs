//! Command-line driver: run any engine on any evaluation network and
//! print the §5.1 metrics, or verify the control loop against the oracle.
//!
//! ```text
//! owan-cli [--net internet2|isp|interdc] [--engine owan|maxflow|maxmin|swan|tempus|amoeba|greedy]
//!          [--load λ] [--sigma σ] [--slot SECONDS] [--duration SECONDS]
//!          [--seed N] [--iters N] [--max-requests N]
//!          [--obs FILE.jsonl] [--obs-summary]
//! owan-cli verify [--seeds N] [--start S] [--replay FILE] [--net NAME]
//!                 [--slots N] [--iters N] [--load λ] [--seed N] [--out FILE]
//! owan-cli chaos  [--net NAME] [--seed N] [--load λ] [--slot SECONDS]
//!                 [--slots N] [--iters N] [--detect SECONDS]
//!                 [--timeout-prob P] [--fail-prob P] [--obs FILE.jsonl]
//! ```
//!
//! With `--sigma` the workload carries deadlines and the deadline metrics
//! are reported; without it, completion-time metrics. `--obs` exports the
//! run's telemetry as JSON Lines; `--obs-summary` prints a per-stage
//! timing table. Either flag enables recording (off by default; a
//! disabled recorder changes no engine output).
//!
//! `verify` replays fuzzed or named-network scenarios through the real
//! controller with every cross-layer invariant checked each slot. On
//! divergence it exits 1 and prints (or writes, with `--out`) a minimized
//! reproducer that `--replay FILE` re-runs exactly.
//!
//! Example:
//! `cargo run --release --bin owan-cli -- --net internet2 --engine owan --load 1.5`

use owan::chaos::{run_chaos, seeded_scenario, ChaosConfig, ChaosResult, OpFaultModel, SlotAudit};
use owan::core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, SchedulingPolicy, TrafficEngineer,
};
use owan::obs::{format_counter_table, format_stage_table, Recorder};
use owan::oracle::{
    check_plan, check_timeline, fuzz_chaos, fuzz_seeds, replay_scenario, ChaosReplayConfig,
    ReplayConfig, Reproducer, Scenario,
};
use owan::sim::metrics::{self, SizeBin};
use owan::sim::runner::{run_engine_observed, EngineKind, RunnerConfig};
use owan::sim::SimConfig;
use owan::topo::{inter_dc, internet2_testbed, isp_backbone, Network};
use owan::workload::{generate, WorkloadConfig};

const USAGE: &str = "usage: owan-cli [OPTIONS]
       owan-cli verify [OPTIONS]
       owan-cli chaos [OPTIONS]

run options:
  --net NAME          evaluation network: internet2 | isp | interdc  [internet2]
  --engine NAME       owan | maxflow | maxmin | swan | tempus | amoeba | greedy  [owan]
  --load L            workload load factor lambda  [1.0]
  --sigma S           deadline tightness; enables deadline workload and metrics
  --slot SECS         slot length, seconds  [300]
  --duration SECS     workload arrival window, seconds  [7200]
  --seed N            workload + annealing seed  [42]
  --iters N           annealing iterations per slot  [150]
  --chains N          parallel annealing chains per slot (owan)  [1]
  --no-fastpath       disable the energy-cache fast path (owan); plans are
                      bit-identical either way, only slower
  --max-requests N    truncate the workload to N transfers
  --obs FILE.jsonl    export run telemetry as JSON Lines to FILE
  --obs-summary       print a per-stage timing table after the metrics
  -h, --help          show this help

verify options (modes are mutually exclusive; default is --seeds):
  --seeds N           fuzz N consecutive seeds through the oracle  [200]
  --start S           first fuzz seed  [0]
  --replay FILE       re-run a reproducer file written by a failed verify
  --net NAME          replay a generated workload on a named network instead
  --slots N           replay horizon in slots (with --net)  [60]
  --iters N           annealing iterations per slot  [40]
  --load L            workload load factor (with --net)  [1.0]
  --seed N            workload seed (with --net)  [42]
  --out FILE          write the minimized reproducer here on divergence
  --chaos             fuzz seeds through the hardened chaos controller
                      (cuts+repairs, op faults, crashes) instead of the
                      fault-free loop; failures name the seed directly

verify exits 0 when every invariant holds on every slot, 1 on divergence
(printing the minimized reproducer), 2 on bad arguments.

chaos options:
  --net NAME          evaluation network: internet2 | isp | interdc  [internet2]
  --seed N            scenario + workload + annealing seed  [42]
  --load L            workload load factor lambda  [1.0]
  --slot SECS         slot length, seconds  [300]
  --slots N           horizon, slots  [60]
  --iters N           annealing iterations per slot  [60]
  --detect SECS       fault detection delay, seconds  [30]
  --timeout-prob P    per-attempt update-op timeout probability  [0.1]
  --fail-prob P       per-attempt update-op failure probability  [0.05]
  --obs FILE.jsonl    export telemetry (chaos.* counters included) to FILE

chaos runs a seeded scenario (fiber cut + amp degradation + op faults +
controller crash + repairs) through the hardened controller twice — once
fault-free, once with faults — checking every cross-layer invariant each
slot, and reports the delivered-volume loss. Exits 0 when all invariants
hold and the runs are deterministic, 1 otherwise, 2 on bad arguments.";

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    /// Parses `--key value`, returning `default` only when the flag is
    /// absent. A present-but-malformed value is an error (naming the
    /// flag), never a silent fallback to the default.
    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("owan-cli: invalid value '{raw}' for {key}");
                std::process::exit(2);
            }),
        }
    }
}

/// `owan-cli verify`: the oracle as a command. Three modes — seed fuzzing
/// (default), reproducer replay (`--replay`), and named-network replay
/// (`--net`) — all funnel through the same invariant checkers the test
/// suite uses.
fn verify_main(args: &Args) -> ! {
    let iters = args.parse("--iters", 40usize);
    let config = ReplayConfig {
        anneal_iterations: iters,
        check_updates: true,
    };
    let out_path = args.get("--out").map(str::to_string);

    let fail = |message: &str, repro: Option<&Reproducer>| -> ! {
        eprintln!("owan-cli verify: FAIL: {message}");
        if let Some(r) = repro {
            let text = r.to_text();
            match &out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &text) {
                        eprintln!("owan-cli verify: cannot write --out file '{path}': {e}");
                    } else {
                        eprintln!("owan-cli verify: reproducer written to {path}");
                    }
                }
                None => print!("{text}"),
            }
        }
        std::process::exit(1);
    };

    if let Some(path) = args.get("--replay") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("owan-cli verify: cannot read --replay file '{path}': {e}");
            std::process::exit(2);
        });
        let repro = Reproducer::from_text(&text).unwrap_or_else(|e| {
            eprintln!("owan-cli verify: malformed reproducer '{path}': {e}");
            std::process::exit(2);
        });
        let scenario = repro.scenario();
        eprintln!(
            "replaying reproducer {path}: seed {}, {} requests, {} failures",
            scenario.seed,
            scenario.requests.len(),
            scenario.failures.len()
        );
        match replay_scenario(&scenario, &config) {
            Ok(stats) => {
                println!(
                    "OK: seed {} replayed clean ({} slots, {} plans, {} transitions checked)",
                    scenario.seed, stats.slots, stats.plans_checked, stats.updates_checked
                );
                std::process::exit(0);
            }
            Err(f) => fail(&f.to_string(), Some(&repro)),
        }
    }

    if let Some(net_name) = args.get("--net") {
        let network: Network = match net_name {
            "internet2" => internet2_testbed(),
            "isp" => isp_backbone(7),
            "interdc" => inter_dc(7),
            other => {
                eprintln!("owan-cli verify: unknown network '{other}' for --net");
                std::process::exit(2);
            }
        };
        let load = args.parse("--load", 1.0f64);
        let seed = args.parse("--seed", 42u64);
        let slots = args.parse("--slots", 60usize);
        let slot_len = args.parse("--slot", 300.0f64);
        let wl = if net_name == "internet2" {
            WorkloadConfig::testbed(load, seed)
        } else {
            WorkloadConfig::simulation(load, seed)
        };
        let requests = generate(&network, &wl);
        eprintln!(
            "verifying {net_name}: {} transfers, {slots} slots of {slot_len}s, {iters} anneal iters",
            requests.len()
        );
        let scenario = Scenario {
            seed,
            plant: network.plant,
            requests,
            failures: Vec::new(),
            slot_len_s: slot_len,
            max_slots: slots,
        };
        match replay_scenario(&scenario, &config) {
            Ok(stats) => {
                println!(
                    "OK: {net_name} replayed clean ({} slots, {} plans, {} transitions checked, \
                     {} transfers completed)",
                    stats.slots, stats.plans_checked, stats.updates_checked, stats.completed
                );
                std::process::exit(0);
            }
            // Named-network workloads are not seed-regenerable through the
            // fuzz generator, so there is no reproducer — the seed and net
            // name on the command line already pin the case.
            Err(f) => fail(&format!("{net_name}: {f}"), None),
        }
    }

    let count = args.parse("--seeds", 200u64);
    let start = args.parse("--start", 0u64);
    if args.flag("--chaos") {
        eprintln!(
            "chaos-fuzzing seeds {start}..{} with {iters} anneal iters",
            start + count
        );
        let chaos_config = ChaosReplayConfig {
            anneal_iterations: iters,
            ..Default::default()
        };
        match fuzz_chaos(start, count, &chaos_config) {
            Ok(stats) => {
                println!(
                    "OK: {} chaos scenarios replayed clean ({} slots, {} plans, {} update \
                     schedules checked, {} crash restarts)",
                    stats.scenarios,
                    stats.slots,
                    stats.plans_checked,
                    stats.updates_checked,
                    stats.crashes
                );
                std::process::exit(0);
            }
            // Chaos scenarios regenerate deterministically from the seed,
            // so the seed itself is the reproducer.
            Err((seed, f)) => fail(&format!("chaos seed {seed}: {f}"), None),
        }
    }
    eprintln!(
        "fuzzing seeds {start}..{} with {iters} anneal iters",
        start + count
    );
    match fuzz_seeds(start, count, &config) {
        Ok(stats) => {
            println!(
                "OK: {} seeds replayed clean ({} slots, {} plans, {} transitions checked)",
                stats.seeds, stats.slots, stats.plans_checked, stats.updates_checked
            );
            std::process::exit(0);
        }
        Err(repro) => {
            let msg = repro.message.clone();
            fail(&format!("seed {}: {}", repro.seed, msg), Some(&repro))
        }
    }
}

/// `owan-cli chaos`: seeded fault injection end to end. Builds a named
/// network and workload, derives a chaos timeline from the seed, runs the
/// hardened controller fault-free and faulted (auditing every slot), and
/// reports the delivered-volume loss plus the fault/recovery counters.
fn chaos_main(args: &Args) -> ! {
    let net_name = args.get("--net").unwrap_or("internet2").to_string();
    let network: Network = match net_name.as_str() {
        "internet2" => internet2_testbed(),
        "isp" => isp_backbone(7),
        "interdc" => inter_dc(7),
        other => {
            eprintln!("owan-cli chaos: unknown network '{other}' for --net");
            std::process::exit(2);
        }
    };
    let seed = args.parse("--seed", 42u64);
    let load = args.parse("--load", 1.0f64);
    let slot = args.parse("--slot", 300.0f64);
    let slots = args.parse("--slots", 60usize);
    let iters = args.parse("--iters", 60usize);
    let detect = args.parse("--detect", 30.0f64);
    let timeout_prob = args.parse("--timeout-prob", 0.1f64);
    let fail_prob = args.parse("--fail-prob", 0.05f64);
    let obs_path = args.get("--obs").map(str::to_string);

    let wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    let requests = generate(&network, &wl);
    let plant = network.plant;

    let horizon = slot * slots as f64;
    let events = seeded_scenario(&plant, seed, horizon);
    let op_faults = OpFaultModel {
        seed,
        timeout_prob,
        fail_prob,
    };
    let config = ChaosConfig {
        slot_len_s: slot,
        max_slots: slots,
        detection_delay_s: detect,
        ..Default::default()
    };
    let mut make_engine = |p: &owan::optical::FiberPlant| {
        let owan_config = OwanConfig {
            anneal: AnnealConfig {
                max_iterations: iters,
                seed: seed.wrapping_add(1),
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), owan_config)) as Box<dyn TrafficEngineer>
    };

    eprintln!(
        "chaos on {net_name}: {} transfers, {} fault events, {slots} slots of {slot}s, \
         detect {detect}s, op faults t={timeout_prob} f={fail_prob}",
        requests.len(),
        events.len()
    );

    let mut violations = 0usize;
    let mut audit = |a: &SlotAudit| -> Result<(), String> {
        check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan)
            .map_err(|v| format!("slot plan: {v}"))?;
        if let (Some(delta), Some(update)) = (a.delta, a.update) {
            check_timeline(delta, update, &a.params).map_err(|v| format!("update: {v}"))?;
        }
        Ok(())
    };

    let recorder = if obs_path.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let baseline = run_chaos(
        &plant,
        &requests,
        &mut make_engine,
        &config,
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        None,
    )
    .expect("fault-free baseline cannot fail an absent audit");

    let mut chaos_run = |rec: &Recorder| -> Result<ChaosResult, String> {
        run_chaos(
            &plant,
            &requests,
            &mut make_engine,
            &config,
            &events,
            &op_faults,
            rec,
            Some(&mut audit),
        )
    };
    let faulted = match chaos_run(&recorder) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("owan-cli chaos: FAIL: {e}");
            std::process::exit(1);
        }
    };
    // Same seed, same scenario: the rerun must reproduce the run exactly.
    let rerun = match chaos_run(&Recorder::disabled()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("owan-cli chaos: FAIL on rerun: {e}");
            std::process::exit(1);
        }
    };
    let deterministic = faulted.delivered_series == rerun.delivered_series
        && faulted.stats == rerun.stats
        && faulted.makespan_s == rerun.makespan_s;
    if !deterministic {
        eprintln!("owan-cli chaos: FAIL: rerun with seed {seed} diverged");
        violations += 1;
    }

    let completed = |r: &ChaosResult| {
        r.completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count()
    };
    println!("network,{net_name}");
    println!("seed,{seed}");
    println!("transfers,{}", requests.len());
    println!("fault_events,{}", events.len());
    println!("baseline_completed,{}", completed(&baseline));
    println!("chaos_completed,{}", completed(&faulted));
    println!("baseline_delivered_gbits,{:.0}", baseline.delivered_gbits);
    println!("chaos_delivered_gbits,{:.0}", faulted.delivered_gbits);
    println!(
        "delivered_loss_gbits,{:.0}",
        (baseline.delivered_gbits - faulted.delivered_gbits).max(0.0)
    );
    println!("baseline_makespan_s,{:.0}", baseline.makespan_s);
    println!("chaos_makespan_s,{:.0}", faulted.makespan_s);
    println!("faults_detected,{}", faulted.stats.faults_detected);
    println!("crashes,{}", faulted.stats.crashes);
    println!("op_retries,{}", faulted.stats.op_retries);
    println!("op_timeouts,{}", faulted.stats.op_timeouts);
    println!("op_failures,{}", faulted.stats.op_failures);
    println!("op_aborts,{}", faulted.stats.op_aborts);
    println!("fallback_slots,{}", faulted.stats.fallback_slots);
    println!("blackhole_paths,{}", faulted.stats.blackhole_paths);
    println!("blackhole_gbits,{:.0}", faulted.stats.blackhole_gbits);
    println!("transition_loss_gbits,{:.0}", faulted.transition_loss_gbits);
    println!("deterministic,{}", if deterministic { "yes" } else { "no" });

    if recorder.is_enabled() {
        let snapshot = recorder.snapshot();
        if let Some(path) = &obs_path {
            let mut out: Vec<u8> = Vec::new();
            snapshot
                .write_jsonl(&mut out)
                .expect("serializing to memory cannot fail");
            if let Err(e) = std::fs::write(path, &out) {
                eprintln!("owan-cli chaos: cannot write --obs file '{path}': {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote {} telemetry lines to {path}",
                out.iter().filter(|&&b| b == b'\n').count()
            );
        }
        print!("{}", format_counter_table(&snapshot, "chaos."));
    }

    std::process::exit(if violations == 0 { 0 } else { 1 });
}

fn main() {
    let args = Args(std::env::args().collect());
    if args.flag("--help") || args.flag("-h") {
        println!("{USAGE}");
        return;
    }
    if std::env::args().nth(1).as_deref() == Some("verify") {
        verify_main(&args);
    }
    if std::env::args().nth(1).as_deref() == Some("chaos") {
        chaos_main(&args);
    }

    let net_name = args.get("--net").unwrap_or("internet2").to_string();
    let network: Network = match net_name.as_str() {
        "internet2" => internet2_testbed(),
        "isp" => isp_backbone(7),
        "interdc" => inter_dc(7),
        other => {
            eprintln!("owan-cli: unknown network '{other}' for --net");
            std::process::exit(2);
        }
    };

    let engine_name = args.get("--engine").unwrap_or("owan").to_string();
    let kind = match engine_name.as_str() {
        "owan" => EngineKind::Owan,
        "maxflow" => EngineKind::MaxFlow,
        "maxmin" => EngineKind::MaxMinFract,
        "swan" => EngineKind::Swan,
        "tempus" => EngineKind::Tempus,
        "amoeba" => EngineKind::Amoeba,
        "greedy" => EngineKind::Greedy,
        other => {
            eprintln!("owan-cli: unknown engine '{other}' for --engine");
            std::process::exit(2);
        }
    };

    let load = args.parse("--load", 1.0f64);
    let sigma: Option<f64> = args.get("--sigma").map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("owan-cli: invalid value '{raw}' for --sigma");
            std::process::exit(2);
        })
    });
    let slot = args.parse("--slot", 300.0f64);
    let duration = args.parse("--duration", 7_200.0f64);
    let seed = args.parse("--seed", 42u64);
    let iters = args.parse("--iters", 150usize);
    let chains = args.parse("--chains", 1usize);
    let use_fastpath = !args.flag("--no-fastpath");
    let max_requests = args.parse("--max-requests", usize::MAX);
    let obs_path = args.get("--obs").map(str::to_string);
    let obs_summary = args.flag("--obs-summary");

    let mut wl = if net_name == "internet2" {
        WorkloadConfig::testbed(load, seed)
    } else {
        WorkloadConfig::simulation(load, seed)
    };
    wl.duration_s = duration;
    if net_name == "interdc" {
        wl = wl.with_hotspots();
    }
    if let Some(s) = sigma {
        wl = wl.with_deadlines(slot, s);
    }
    let mut requests = generate(&network, &wl);
    requests.truncate(max_requests);

    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: slot,
            max_slots: 5_000,
            ..Default::default()
        },
        anneal_iterations: iters,
        seed,
        policy: if sigma.is_some() {
            SchedulingPolicy::EarliestDeadlineFirst
        } else {
            SchedulingPolicy::ShortestJobFirst
        },
        anneal_chains: chains,
        anneal_use_cache: use_fastpath,
        ..Default::default()
    };

    let recorder = if obs_path.is_some() || obs_summary {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    eprintln!(
        "running {engine_name} on {net_name}: {} transfers, load {load}, slot {slot}s",
        requests.len()
    );
    let result = run_engine_observed(kind, &network, &requests, &cfg, &recorder);

    println!("engine,{}", result.engine);
    println!("network,{net_name}");
    println!("transfers,{}", result.completions.len());
    println!(
        "completed,{}",
        result
            .completions
            .iter()
            .filter(|c| c.completion_s.is_some())
            .count()
    );
    println!("slots,{}", result.slots);
    println!("makespan_s,{:.0}", result.makespan_s);
    let (avg, p95) = metrics::summary(&result, SizeBin::All);
    println!("avg_completion_s,{avg:.0}");
    println!("p95_completion_s,{p95:.0}");
    if sigma.is_some() {
        println!(
            "pct_deadlines_met,{:.1}",
            metrics::pct_deadlines_met(&result, SizeBin::All)
        );
        println!(
            "pct_bytes_by_deadline,{:.1}",
            metrics::pct_bytes_by_deadline(&result)
        );
    }
    for bin in [SizeBin::Small, SizeBin::Middle, SizeBin::Large] {
        let (avg, p95) = metrics::summary(&result, bin);
        println!("{}_avg_s,{avg:.0}", bin.label().to_lowercase());
        println!("{}_p95_s,{p95:.0}", bin.label().to_lowercase());
    }

    if recorder.is_enabled() {
        let snapshot = recorder.snapshot();
        if let Some(path) = &obs_path {
            let mut out: Vec<u8> = Vec::new();
            snapshot
                .write_jsonl(&mut out)
                .expect("serializing to memory cannot fail");
            if let Err(e) = std::fs::write(path, &out) {
                eprintln!("owan-cli: cannot write --obs file '{path}': {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote {} telemetry lines to {path}",
                out.iter().filter(|&&b| b == b'\n').count()
            );
        }
        if obs_summary {
            print!(
                "{}",
                format_stage_table(
                    &snapshot,
                    &[
                        ("slot", "stage.slot"),
                        ("anneal", "stage.anneal"),
                        ("anneal iteration", "stage.anneal.iter"),
                        ("circuit build", "stage.circuits"),
                        ("rate assignment", "stage.rates"),
                        ("update scheduling", "stage.update"),
                    ],
                )
            );
        }
    }
}
