//! Property-based tests for the graph substrate.
//!
//! Random small graphs are cross-checked against brute-force oracles:
//! Dijkstra against Bellman-Ford, blossom matching against exhaustive
//! search, Dinic against the max-flow/min-cut duality, and Yen against its
//! defining properties (looplessness, sortedness, distinctness).

use owan_graph::{dijkstra, k_shortest_paths, matching, max_flow, FlowNetwork, Graph};
use proptest::prelude::*;

/// Strategy: a random undirected graph with up to `n` nodes and `m` edges.
fn random_graph(n: usize, m: usize) -> impl Strategy<Value = Graph> {
    (2..=n).prop_flat_map(move |nodes| {
        proptest::collection::vec((0..nodes, 0..nodes, 1u32..100), 0..=m).prop_map(move |edges| {
            let mut g = Graph::new(nodes);
            for (u, v, w) in edges {
                if u != v {
                    g.add_undirected_edge(u, v, w as f64);
                }
            }
            g
        })
    })
}

/// Bellman-Ford oracle for shortest distances.
fn bellman_ford(g: &Graph, src: usize) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in g.edges() {
            if dist[e.u] + e.weight < dist[e.v] {
                dist[e.v] = dist[e.u] + e.weight;
                changed = true;
            }
            if e.undirected && dist[e.v] + e.weight < dist[e.u] {
                dist[e.u] = dist[e.v] + e.weight;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Brute-force k-shortest-paths oracle: enumerate every simple path by
/// DFS over node sequences (cost = lightest parallel edge per hop) and
/// sort by cost.
fn brute_simple_path_costs(g: &Graph, src: usize, dst: usize) -> Vec<f64> {
    let n = g.node_count();
    let min_w = |a: usize, b: usize| -> f64 {
        g.neighbors(a)
            .filter(|&(_, v)| v == b)
            .map(|(e, _)| g.edge(e).weight)
            .fold(f64::INFINITY, f64::min)
    };
    let mut costs = Vec::new();
    let mut visited = vec![false; n];
    visited[src] = true;
    fn dfs(
        min_w: &dyn Fn(usize, usize) -> f64,
        u: usize,
        dst: usize,
        cost: f64,
        visited: &mut [bool],
        costs: &mut Vec<f64>,
    ) {
        if u == dst {
            costs.push(cost);
            return;
        }
        for v in 0..visited.len() {
            let w = min_w(u, v);
            if !visited[v] && w.is_finite() {
                visited[v] = true;
                dfs(min_w, v, dst, cost + w, visited, costs);
                visited[v] = false;
            }
        }
    }
    dfs(&min_w, src, dst, 0.0, &mut visited, &mut costs);
    costs.sort_by(f64::total_cmp);
    costs
}

/// Brute-force maximum matching size by recursion over edges.
fn brute_matching(g: &Graph) -> usize {
    let mut edges: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .filter(|e| e.u != e.v)
        .map(|e| (e.u.min(e.v), e.u.max(e.v)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    fn rec(edges: &[(usize, usize)], used: &mut Vec<bool>) -> usize {
        if edges.is_empty() {
            return 0;
        }
        let (u, v) = edges[0];
        let rest = &edges[1..];
        let skip = rec(rest, used);
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            let take = 1 + rec(rest, used);
            used[u] = false;
            used[v] = false;
            skip.max(take)
        } else {
            skip
        }
    }
    let mut used = vec![false; g.node_count()];
    rec(&edges, &mut used)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in random_graph(8, 16)) {
        let sp = dijkstra::shortest_paths(&g, 0);
        let bf = bellman_ford(&g, 0);
        for (v, &bfv) in bf.iter().enumerate() {
            let d = sp.distance(v).unwrap_or(f64::INFINITY);
            prop_assert!((d - bfv).abs() < 1e-9 || (d.is_infinite() && bfv.is_infinite()),
                "node {v}: dijkstra {d} vs bellman-ford {bfv}");
        }
    }

    #[test]
    fn dijkstra_path_cost_consistent(g in random_graph(8, 16)) {
        let sp = dijkstra::shortest_paths(&g, 0);
        for v in 0..g.node_count() {
            if let Some(p) = sp.full_path_to(v) {
                // Recompute the path cost hop by hop (lightest parallel edge).
                let mut cost = 0.0;
                for (a, b) in p.hops() {
                    let w = g.neighbors(a)
                        .filter(|&(_, n)| n == b)
                        .map(|(e, _)| g.edge(e).weight)
                        .fold(f64::INFINITY, f64::min);
                    cost += w;
                }
                prop_assert!((cost - p.cost()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blossom_matches_brute_force(g in random_graph(7, 12)) {
        let (mate, k) = matching::maximum_matching(&g);
        prop_assert!(matching::is_valid_matching(&g, &mate));
        prop_assert_eq!(k, brute_matching(&g));
    }

    #[test]
    fn yen_paths_loopless_sorted_distinct(g in random_graph(7, 14)) {
        let n = g.node_count();
        let paths = k_shortest_paths(&g, 0, n - 1, 6);
        for w in paths.windows(2) {
            prop_assert!(w[0].cost() <= w[1].cost() + 1e-9);
            prop_assert_ne!(&w[0].nodes, &w[1].nodes);
        }
        for p in &paths {
            let mut ns = p.nodes.clone();
            ns.sort_unstable();
            ns.dedup();
            prop_assert_eq!(ns.len(), p.nodes.len(), "loop in path");
            prop_assert_eq!(p.source(), 0);
            prop_assert_eq!(p.destination(), n - 1);
        }
        // First path must agree with Dijkstra.
        let sp = dijkstra::shortest_paths(&g, 0);
        match (paths.first(), sp.distance(n - 1)) {
            (Some(p), Some(d)) => prop_assert!((p.cost() - d).abs() < 1e-9),
            (None, None) => {}
            (a, b) => prop_assert!(false, "mismatch: yen {:?} dijkstra {:?}", a.map(|p| p.cost()), b),
        }
    }

    #[test]
    fn yen_matches_brute_force_enumeration(g in random_graph(8, 14), k in 1usize..7) {
        // Completeness + optimality: Yen's k paths must cost exactly the
        // same as the k cheapest simple paths found by exhaustive DFS
        // enumeration. (Top-k cost sequences are unique even under ties.)
        let n = g.node_count();
        let yen = k_shortest_paths(&g, 0, n - 1, k);
        let brute = brute_simple_path_costs(&g, 0, n - 1);
        prop_assert_eq!(
            yen.len(),
            brute.len().min(k),
            "yen returned {} paths, brute force found {} (k = {})",
            yen.len(), brute.len(), k
        );
        for (i, (p, bc)) in yen.iter().zip(&brute).enumerate() {
            prop_assert!(
                (p.cost() - bc).abs() < 1e-9,
                "path {i}: yen cost {} vs brute-force {bc}", p.cost()
            );
        }
        // Every returned path is itself a genuine simple path of the graph
        // whose stated cost matches a hop-by-hop recomputation.
        for p in &yen {
            let mut seen = vec![false; n];
            let mut cost = 0.0;
            for (a, b) in p.hops() {
                prop_assert!(!seen[a], "repeated node {a}");
                seen[a] = true;
                let w = g.neighbors(a)
                    .filter(|&(_, v)| v == b)
                    .map(|(e, _)| g.edge(e).weight)
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(w.is_finite(), "hop ({a}, {b}) not in graph");
                cost += w;
            }
            prop_assert!((cost - p.cost()).abs() < 1e-9);
        }
    }

    #[test]
    fn maxflow_bounded_by_degree_cuts(g in random_graph(8, 16)) {
        let n = g.node_count();
        let (s, t) = (0, n - 1);
        let mut net = FlowNetwork::new(n);
        for e in g.edges() {
            net.add_undirected_edge(e.u, e.v, e.weight);
        }
        let f = max_flow(&mut net, s, t);
        prop_assert!(f >= -1e-9);
        // Cut bound: flow cannot exceed total capacity incident to s or t.
        let cap_at = |v: usize| -> f64 {
            g.edges().iter()
                .filter(|e| e.u == v || e.v == v)
                .map(|e| e.weight)
                .sum()
        };
        prop_assert!(f <= cap_at(s) + 1e-9);
        prop_assert!(f <= cap_at(t) + 1e-9);
    }

    #[test]
    fn maxflow_symmetric_in_undirected_graphs(g in random_graph(7, 14)) {
        let n = g.node_count();
        let build = || {
            let mut net = FlowNetwork::new(n);
            for e in g.edges() {
                net.add_undirected_edge(e.u, e.v, e.weight);
            }
            net
        };
        let f1 = max_flow(&mut build(), 0, n - 1);
        let f2 = max_flow(&mut build(), n - 1, 0);
        prop_assert!((f1 - f2).abs() < 1e-6, "{f1} vs {f2}");
    }
}
