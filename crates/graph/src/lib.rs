//! Graph algorithm substrate for the Owan reproduction.
//!
//! The Owan controller (crate `owan-core`) and the baseline traffic-engineering
//! algorithms (crate `owan-te`) are built on a small set of classic graph
//! kernels. The paper's prototype used JGraphT plus a hand-written blossom
//! implementation ("We have implemented the blossom algorithm for maximum
//! matching in general graphs and used JGraphT library for other graph
//! algorithms", §4.2); this crate provides the same toolbox from scratch:
//!
//! * [`Graph`] — a compact weighted multigraph with stable edge ids,
//! * [`dijkstra`] — single-source shortest paths (with path extraction),
//! * [`yen`] — Yen's k-shortest loopless paths,
//! * [`maxflow`] — Dinic's maximum-flow algorithm,
//! * [`matching`] — maximum cardinality matching in general graphs
//!   (Edmonds' blossom algorithm).
//!
//! All algorithms are deterministic and allocation-conscious; none of them
//! panic on disconnected inputs (they return empty/`None` results instead).
//!
//! # Example
//!
//! ```
//! use owan_graph::{Graph, dijkstra};
//!
//! let mut g = Graph::new(4);
//! g.add_undirected_edge(0, 1, 1.0);
//! g.add_undirected_edge(1, 2, 1.0);
//! g.add_undirected_edge(0, 2, 5.0);
//! g.add_undirected_edge(2, 3, 1.0);
//!
//! let sp = dijkstra::shortest_paths(&g, 0);
//! assert_eq!(sp.distance(2), Some(2.0));
//! assert_eq!(sp.path_to(3).unwrap(), vec![0, 1, 2, 3]);
//! ```

pub mod dijkstra;
pub mod graph;
pub mod matching;
pub mod maxflow;
pub mod yen;

pub use dijkstra::{shortest_paths, ShortestPaths};
pub use graph::{EdgeId, Graph, NodeId};
pub use matching::maximum_matching;
pub use maxflow::{max_flow, FlowNetwork};
pub use yen::k_shortest_paths;

/// A simple path through a graph, stored as the ordered list of node ids.
///
/// The first element is the source and the last the destination; a path of a
/// single node has zero length. Paths produced by this crate are always
/// loopless (no repeated node).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Path {
    /// Ordered node ids, source first.
    pub nodes: Vec<NodeId>,
    /// Total weight of the path under the metric it was computed with,
    /// stored as an ordered bit pattern to keep `Eq`/`Hash` derivable.
    cost_bits: u64,
}

impl Path {
    /// Creates a path from its node sequence and cost.
    pub fn new(nodes: Vec<NodeId>, cost: f64) -> Self {
        Path {
            nodes,
            cost_bits: cost.to_bits(),
        }
    }

    /// Total weight of the path.
    pub fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits)
    }

    /// Number of hops (edges) in the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Iterator over the (u, v) node pairs of consecutive hops.
    pub fn hops(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}
