//! A compact weighted multigraph with stable edge identifiers.
//!
//! The graph is stored as an edge list plus per-node adjacency vectors of
//! edge ids. Both directed and undirected edges are supported; an undirected
//! edge is a single [`Edge`] record reachable from both endpoints. Multiple
//! parallel edges between the same pair of nodes are allowed — Owan
//! topologies are multigraphs (several wavelength circuits may connect the
//! same pair of routers).

/// Identifier of a node. Nodes are dense indices `0..node_count`.
pub type NodeId = usize;

/// Identifier of an edge, stable across the life of the graph.
pub type EdgeId = usize;

/// A single edge record.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Edge {
    /// Tail node (for undirected edges, one arbitrary endpoint).
    pub u: NodeId,
    /// Head node.
    pub v: NodeId,
    /// Edge weight (distance, cost, …). Must be non-negative for the
    /// shortest-path algorithms in this crate.
    pub weight: f64,
    /// Whether the edge can be traversed in both directions.
    pub undirected: bool,
}

impl Edge {
    /// Given one endpoint, returns the other. Panics if `n` is not an
    /// endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else {
            debug_assert_eq!(n, self.v, "node {n} is not an endpoint");
            self.u
        }
    }
}

/// A weighted multigraph. See the [module docs](self).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    edges: Vec<Edge>,
    /// For each node, the edge ids incident to it (outgoing for directed).
    adj: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edge records (an undirected edge counts once).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the weight is negative
    /// or NaN.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        self.add_edge_inner(u, v, weight, true)
    }

    /// Adds a directed edge `u -> v` and returns its id.
    pub fn add_directed_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        self.add_edge_inner(u, v, weight, false)
    }

    fn add_edge_inner(&mut self, u: NodeId, v: NodeId, weight: f64, undirected: bool) -> EdgeId {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "endpoint out of range"
        );
        assert!(
            weight >= 0.0,
            "edge weight must be non-negative, got {weight}"
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            u,
            v,
            weight,
            undirected,
        });
        self.adj[u].push(id);
        if undirected && u != v {
            self.adj[v].push(id);
        }
        id
    }

    /// The edge record for `id`.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Mutable access to an edge's weight.
    pub fn set_weight(&mut self, id: EdgeId, weight: f64) {
        assert!(weight >= 0.0, "edge weight must be non-negative");
        self.edges[id].weight = weight;
    }

    /// All edge records.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge ids incident to `n` (traversable from `n`).
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adj[n]
    }

    /// Iterator over `(edge_id, neighbor)` pairs traversable from `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adj[n]
            .iter()
            .map(move |&e| (e, self.edges[e].other(n)))
    }

    /// Degree of `n` (number of traversable incident edges).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n].len()
    }

    /// Returns any edge id connecting `u` and `v` (in the traversable
    /// direction), or `None`.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj[u]
            .iter()
            .copied()
            .find(|&e| self.edges[e].other(u) == v)
    }

    /// True if `u` and `v` are connected by at least one traversable edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::new(2);
        let n = g.add_node();
        assert_eq!(n, 2);
        let e = g.add_undirected_edge(0, 1, 2.5);
        assert_eq!(g.edge(e).weight, 2.5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn directed_edge_is_one_way() {
        let mut g = Graph::new(2);
        g.add_directed_edge(0, 1, 1.0);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn undirected_edge_is_two_way() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, 1.0);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 1, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn self_loop_counted_once_in_adjacency() {
        let mut g = Graph::new(1);
        g.add_undirected_edge(0, 0, 1.0);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn neighbors_iteration() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 2, 1.0);
        let mut ns: Vec<NodeId> = g.neighbors(0).map(|(_, n)| n).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn edge_other_endpoint() {
        let mut g = Graph::new(2);
        let e = g.add_undirected_edge(0, 1, 1.0);
        assert_eq!(g.edge(e).other(0), 1);
        assert_eq!(g.edge(e).other(1), 0);
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn out_of_range_endpoint_panics() {
        let mut g = Graph::new(1);
        g.add_undirected_edge(0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, -1.0);
    }

    #[test]
    fn set_weight_updates() {
        let mut g = Graph::new(2);
        let e = g.add_undirected_edge(0, 1, 1.0);
        g.set_weight(e, 7.0);
        assert_eq!(g.edge(e).weight, 7.0);
    }
}
