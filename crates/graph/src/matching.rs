//! Maximum cardinality matching in general graphs (Edmonds' blossom
//! algorithm).
//!
//! The Owan prototype "implemented the blossom algorithm for maximum matching
//! in general graphs" (§4.2); the controller uses matchings when pairing
//! router ports during topology construction. This is the classic `O(V^3)`
//! augmenting-path formulation with blossom contraction via base pointers.

use crate::graph::{Graph, NodeId};

/// Computes a maximum cardinality matching of `g`.
///
/// Returns `mate`, where `mate[v] == Some(u)` iff the edge `(v, u)` is in the
/// matching (symmetric), and the number of matched pairs. Directed edges are
/// treated as undirected for the purpose of matching; parallel edges and
/// self-loops are ignored.
pub fn maximum_matching(g: &Graph) -> (Vec<Option<NodeId>>, usize) {
    let n = g.node_count();
    // Simple-graph adjacency (ignore self loops, dedupe parallels).
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in g.edges() {
        if e.u != e.v {
            if !adj[e.u].contains(&e.v) {
                adj[e.u].push(e.v);
            }
            if !adj[e.v].contains(&e.u) {
                adj[e.v].push(e.u);
            }
        }
    }

    let mut mate: Vec<Option<NodeId>> = vec![None; n];
    let mut matched = 0usize;

    // Greedy warm start halves the number of augmenting searches.
    for v in 0..n {
        if mate[v].is_none() {
            if let Some(&u) = adj[v].iter().find(|&&u| mate[u].is_none()) {
                mate[v] = Some(u);
                mate[u] = Some(v);
                matched += 1;
            }
        }
    }

    let mut state = Blossom {
        adj,
        mate: mate.clone(),
        base: vec![0; n],
        parent: vec![None; n],
        in_queue: vec![false; n],
        in_blossom: vec![false; n],
    };
    state.mate = mate;

    for v in 0..n {
        if state.mate[v].is_none() && state.augment(v) {
            matched += 1;
        }
    }

    (state.mate.clone(), matched)
}

struct Blossom {
    adj: Vec<Vec<NodeId>>,
    mate: Vec<Option<NodeId>>,
    /// Base of the blossom containing each node.
    base: Vec<NodeId>,
    /// Parent in the alternating forest (None for roots/unvisited).
    parent: Vec<Option<NodeId>>,
    in_queue: Vec<bool>,
    /// Scratch for blossom marking.
    in_blossom: Vec<bool>,
}

impl Blossom {
    /// Finds the lowest common ancestor of `a` and `b` in terms of blossom
    /// bases along the alternating tree.
    fn lca(&self, mut a: NodeId, mut b: NodeId) -> NodeId {
        let n = self.adj.len();
        let mut used = vec![false; n];
        loop {
            a = self.base[a];
            used[a] = true;
            match self.mate[a] {
                Some(m) => match self.parent[m] {
                    Some(p) => a = p,
                    None => break,
                },
                None => break,
            }
        }
        loop {
            b = self.base[b];
            if used[b] {
                return b;
            }
            let m = self.mate[b].expect("non-root must be matched");
            b = self.parent[m].expect("matched node in tree has parent");
        }
    }

    /// Marks the path from `v` up to the blossom base `b`, re-basing nodes.
    fn mark_path(&mut self, mut v: NodeId, b: NodeId, mut child: NodeId, queue: &mut Vec<NodeId>) {
        while self.base[v] != b {
            self.in_blossom[self.base[v]] = true;
            let m = self.mate[v].expect("blossom path node is matched");
            self.in_blossom[self.base[m]] = true;
            self.parent[v] = Some(child);
            child = m;
            v = self.parent[m].expect("matched node has parent");
        }
        // Enqueue newly-outer nodes.
        let n = self.adj.len();
        for u in 0..n {
            if self.in_blossom[self.base[u]] {
                self.base[u] = b;
                if !self.in_queue[u] {
                    self.in_queue[u] = true;
                    queue.push(u);
                }
            }
        }
    }

    /// BFS for an augmenting path from `root`; flips it if found.
    fn augment(&mut self, root: NodeId) -> bool {
        let n = self.adj.len();
        self.parent.iter_mut().for_each(|p| *p = None);
        self.in_queue.iter_mut().for_each(|q| *q = false);
        for v in 0..n {
            self.base[v] = v;
        }

        let mut queue = vec![root];
        self.in_queue[root] = true;
        let mut qi = 0;

        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            let nbrs = self.adj[v].clone();
            for u in nbrs {
                if self.base[v] == self.base[u] || self.mate[v] == Some(u) {
                    continue;
                }
                if u == root || self.mate[u].is_some_and(|m| self.parent[m].is_some()) {
                    // Odd cycle: contract a blossom.
                    let b = self.lca(v, u);
                    self.in_blossom.iter_mut().for_each(|x| *x = false);
                    self.mark_path(v, b, u, &mut queue);
                    self.mark_path(u, b, v, &mut queue);
                } else if self.parent[u].is_none() {
                    self.parent[u] = Some(v);
                    match self.mate[u] {
                        None => {
                            // Augmenting path found: flip along parents.
                            self.flip(u);
                            return true;
                        }
                        Some(m) => {
                            if !self.in_queue[m] {
                                self.in_queue[m] = true;
                                queue.push(m);
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Flips the matching along the alternating path ending at exposed `u`.
    fn flip(&mut self, mut u: NodeId) {
        while let Some(v) = self.parent[u] {
            let next = self.mate[v];
            self.mate[v] = Some(u);
            self.mate[u] = Some(v);
            match next {
                Some(w) => u = w,
                None => break,
            }
        }
    }
}

/// Verifies that `mate` is a valid matching of `g` (symmetric, edges exist).
/// Intended for tests and debug assertions.
pub fn is_valid_matching(g: &Graph, mate: &[Option<NodeId>]) -> bool {
    for (v, &m) in mate.iter().enumerate() {
        if let Some(u) = m {
            if u >= mate.len() || mate[u] != Some(v) || v == u {
                return false;
            }
            let connected = g
                .edges()
                .iter()
                .any(|e| (e.u == v && e.v == u) || (e.u == u && e.v == v));
            if !connected {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_empty_matching() {
        let g = Graph::new(0);
        let (mate, k) = maximum_matching(&g);
        assert!(mate.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn single_edge_matched() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 1);
        assert_eq!(mate[0], Some(1));
        assert_eq!(mate[1], Some(0));
    }

    #[test]
    fn path_of_three_matches_one() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 1);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn path_of_four_matches_two() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 2);
        assert_eq!(mate[0], Some(1));
        assert_eq!(mate[2], Some(3));
    }

    #[test]
    fn odd_cycle_needs_blossom() {
        // Triangle: maximum matching is 1.
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(2, 0, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 1);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn pentagon_plus_tail() {
        // 5-cycle with a pendant: matching of size 3 requires blossom logic.
        let mut g = Graph::new(6);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        g.add_undirected_edge(3, 4, 1.0);
        g.add_undirected_edge(4, 0, 1.0);
        g.add_undirected_edge(2, 5, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 3);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn petersen_graph_perfect_matching() {
        // The Petersen graph has a perfect matching (5 edges).
        let mut g = Graph::new(10);
        // Outer 5-cycle.
        for i in 0..5 {
            g.add_undirected_edge(i, (i + 1) % 5, 1.0);
        }
        // Spokes.
        for i in 0..5 {
            g.add_undirected_edge(i, i + 5, 1.0);
        }
        // Inner pentagram.
        for i in 0..5 {
            g.add_undirected_edge(5 + i, 5 + (i + 2) % 5, 1.0);
        }
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 5);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn complete_graph_k4() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_undirected_edge(i, j, 1.0);
            }
        }
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 2);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn star_graph_matches_one() {
        let mut g = Graph::new(5);
        for leaf in 1..5 {
            g.add_undirected_edge(0, leaf, 1.0);
        }
        let (_, k) = maximum_matching(&g);
        assert_eq!(k, 1);
    }

    #[test]
    fn self_loops_and_parallels_ignored() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 0, 1.0);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 1, 2.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 1);
        assert!(is_valid_matching(&g, &mate));
    }

    #[test]
    fn two_triangles_bridged() {
        // Two triangles joined by a bridge: perfect matching of size 3.
        let mut g = Graph::new(6);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(2, 0, 1.0);
        g.add_undirected_edge(3, 4, 1.0);
        g.add_undirected_edge(4, 5, 1.0);
        g.add_undirected_edge(5, 3, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        let (mate, k) = maximum_matching(&g);
        assert_eq!(k, 3);
        assert!(is_valid_matching(&g, &mate));
    }
}
