//! Dijkstra single-source shortest paths.
//!
//! Used throughout the Owan controller: fiber-distance computation for the
//! optical-reach constraint, relay-path search on the transformed regenerator
//! graph, and as the inner search of Yen's k-shortest-paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::Path;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    /// Predecessor edge on the shortest path tree, per node.
    pred: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Distance from the source to `n`, or `None` if unreachable.
    pub fn distance(&self, n: NodeId) -> Option<f64> {
        let d = self.dist[n];
        d.is_finite().then_some(d)
    }

    /// True if `n` is reachable from the source.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist[n].is_finite()
    }

    /// The source node the computation started from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Reconstructs the node sequence of the shortest path to `dst`, or
    /// `None` if `dst` is unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(dst) {
            return None;
        }
        let mut nodes = vec![dst];
        let mut cur = dst;
        while let Some((prev, _)) = self.pred[cur] {
            nodes.push(prev);
            cur = prev;
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(nodes)
    }

    /// Like [`path_to`](Self::path_to) but returns a [`Path`] with its cost.
    pub fn full_path_to(&self, dst: NodeId) -> Option<Path> {
        self.path_to(dst)
            .map(|nodes| Path::new(nodes, self.dist[dst]))
    }
}

/// Min-heap entry ordered by distance (reversed for `BinaryHeap`).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance pops first. Ties broken by node id for
        // determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes shortest paths from `source` to every node of `g`.
///
/// Edge weights must be non-negative (enforced by [`Graph`]). Runs in
/// `O((V + E) log V)`.
pub fn shortest_paths(g: &Graph, source: NodeId) -> ShortestPaths {
    shortest_paths_filtered(g, source, |_, _| true)
}

/// Dijkstra with an edge filter: edges for which `allow(edge_id, head)` is
/// false are skipped. Yen's algorithm uses this to hide edges/nodes without
/// copying the graph.
pub fn shortest_paths_filtered<F>(g: &Graph, source: NodeId, mut allow: F) -> ShortestPaths
where
    F: FnMut(EdgeId, NodeId) -> bool,
{
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (eid, v) in g.neighbors(u) {
            if done[v] || !allow(eid, v) {
                continue;
            }
            let nd = d + g.edge(eid).weight;
            if nd < dist[v] {
                dist[v] = nd;
                pred[v] = Some((u, eid));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    ShortestPaths { source, dist, pred }
}

/// Dijkstra with an edge filter that stops as soon as `dst` is settled,
/// returning only the path to it. Popping a node finalizes its distance
/// and its predecessor chain (every node on the path popped earlier, and
/// relaxations update only on strict improvement), so the returned path is
/// bit-identical to the one [`shortest_paths_filtered`] reconstructs — the
/// search just skips the part of the graph beyond `dst`. Yen's inner loop
/// is the heavy caller: its spur searches need exactly one target.
pub fn shortest_path_filtered_to<F>(
    g: &Graph,
    source: NodeId,
    dst: NodeId,
    mut allow: F,
) -> Option<Path>
where
    F: FnMut(EdgeId, NodeId) -> bool,
{
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        if u == dst {
            break;
        }
        for (eid, v) in g.neighbors(u) {
            if done[v] || !allow(eid, v) {
                continue;
            }
            let nd = d + g.edge(eid).weight;
            if nd < dist[v] {
                dist[v] = nd;
                pred[v] = Some((u, eid));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if !dist[dst].is_finite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while let Some((prev, _)) = pred[cur] {
        nodes.push(prev);
        cur = prev;
    }
    nodes.reverse();
    debug_assert_eq!(nodes[0], source);
    Some(Path::new(nodes, dist[dst]))
}

/// Convenience: shortest path between a pair of nodes.
pub fn shortest_path_between(g: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_paths(g, src).full_path_to(dst)
}

/// All-pairs shortest distances, `O(V (V+E) log V)`. Returns a dense matrix
/// with `f64::INFINITY` for unreachable pairs.
pub fn all_pairs_distances(g: &Graph) -> Vec<Vec<f64>> {
    (0..g.node_count())
        .map(|s| {
            let sp = shortest_paths(g, s);
            (0..g.node_count())
                .map(|t| sp.distance(t).unwrap_or(f64::INFINITY))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3
        //  \---5--- 2 -1- 3 (0-2 weight 5)
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 3, 1.0);
        g.add_undirected_edge(0, 2, 5.0);
        g.add_undirected_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn trivial_source_distance_zero() {
        let g = diamond();
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.distance(0), Some(0.0));
        assert_eq!(sp.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn picks_cheaper_multi_hop_path() {
        let g = diamond();
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.distance(3), Some(2.0));
        assert_eq!(sp.path_to(3).unwrap(), vec![0, 1, 3]);
    }

    #[test]
    fn unreachable_node() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.distance(2), None);
        assert!(sp.path_to(2).is_none());
    }

    #[test]
    fn respects_direction() {
        let mut g = Graph::new(2);
        g.add_directed_edge(0, 1, 1.0);
        assert!(shortest_paths(&g, 1).distance(0).is_none());
        assert_eq!(shortest_paths(&g, 0).distance(1), Some(1.0));
    }

    #[test]
    fn filter_hides_edges() {
        let g = diamond();
        // Forbid the 0-1 edge: path must go through node 2.
        let sp = shortest_paths_filtered(&g, 0, |e, _| e != 0);
        assert_eq!(sp.distance(3), Some(6.0));
        assert_eq!(sp.path_to(3).unwrap(), vec![0, 2, 3]);
    }

    #[test]
    fn parallel_edges_use_lighter() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, 10.0);
        g.add_undirected_edge(0, 1, 3.0);
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.distance(1), Some(3.0));
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 0.0);
        g.add_undirected_edge(1, 2, 0.0);
        let sp = shortest_paths(&g, 0);
        assert_eq!(sp.distance(2), Some(0.0));
    }

    #[test]
    fn all_pairs_symmetric_for_undirected() {
        let g = diamond();
        let d = all_pairs_distances(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, &dij) in row.iter().enumerate() {
                assert_eq!(dij, d[j][i]);
            }
        }
        assert_eq!(d[0][3], 2.0);
    }

    #[test]
    fn full_path_cost_matches_distance() {
        let g = diamond();
        let sp = shortest_paths(&g, 0);
        let p = sp.full_path_to(3).unwrap();
        assert_eq!(p.cost(), 2.0);
        assert_eq!(p.hop_count(), 2);
    }
}
