//! Yen's algorithm for the k shortest loopless paths.
//!
//! Baseline traffic engineering (`owan-te`) routes each transfer over a small
//! set of candidate tunnels, exactly as SWAN/B4 do; Yen's algorithm produces
//! those candidates. Paths are returned in non-decreasing cost order and are
//! guaranteed loopless.

use crate::dijkstra::shortest_path_filtered_to;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::Path;

/// Computes up to `k` shortest loopless paths from `src` to `dst`.
///
/// Returns fewer than `k` paths if the graph does not contain that many
/// distinct loopless paths, and an empty vector if `dst` is unreachable.
/// Ties in cost are broken deterministically.
pub fn k_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let first = match full_shortest(g, src, dst, &[], &[]) {
        Some(p) => p,
        None => return Vec::new(),
    };

    let mut found: Vec<Path> = vec![first];
    // Candidate pool; kept sorted on extraction. Small k keeps this cheap.
    let mut candidates: Vec<Path> = Vec::new();

    while found.len() < k {
        let last = found.last().expect("at least one found path").clone();
        // Prefix costs of the last path's roots, accumulated left to right —
        // the same order `path_cost` sums in, so each prefix is bit-equal to
        // recomputing it from scratch at its spur index.
        let mut root_costs = Vec::with_capacity(last.nodes.len());
        root_costs.push(0.0f64);
        for w in last.nodes.windows(2) {
            let hop = g
                .neighbors(w[0])
                .filter(|&(_, n)| n == w[1])
                .map(|(e, _)| g.edge(e).weight)
                .fold(f64::INFINITY, f64::min);
            root_costs.push(root_costs.last().expect("non-empty") + hop);
        }
        // Spur from every node of the last found path except the destination.
        for i in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[i];
            let root = &last.nodes[..=i];

            // Edges to hide: for every found path sharing this root, hide the
            // edge it takes out of the spur node.
            let mut banned_edges: Vec<EdgeId> = Vec::new();
            for p in &found {
                if p.nodes.len() > i && p.nodes[..=i] == *root {
                    let a = p.nodes[i];
                    let b = p.nodes[i + 1];
                    for (eid, nbr) in g.neighbors(a) {
                        if nbr == b {
                            banned_edges.push(eid);
                        }
                    }
                }
            }
            // Nodes of the root (except the spur node) are banned to keep
            // the total path loopless.
            let banned_nodes: Vec<NodeId> = root[..i].to_vec();

            if let Some(spur) = full_shortest(g, spur_node, dst, &banned_edges, &banned_nodes) {
                // Stitch root + spur path.
                let mut nodes = root[..i].to_vec();
                nodes.extend_from_slice(&spur.nodes);
                let total = Path::new(nodes, root_costs[i] + spur.cost());
                if !found.contains(&total) && !candidates.contains(&total) {
                    candidates.push(total);
                }
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable tie-break on node sequence).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.cost()
                    .partial_cmp(&b.cost())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.nodes.cmp(&b.nodes))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        found.push(candidates.swap_remove(best));
    }

    found
}

/// Shortest path avoiding the given edges and nodes. The search settles
/// nodes only until `dst` pops — identical output, less work.
fn full_shortest(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_edges: &[EdgeId],
    banned_nodes: &[NodeId],
) -> Option<Path> {
    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    shortest_path_filtered_to(g, src, dst, |eid, head| {
        !banned_edges.contains(&eid) && !banned_nodes.contains(&head)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic Yen example graph.
    fn yen_graph() -> Graph {
        // c=0, d=1, e=2, f=3, g=4, h=5
        let mut g = Graph::new(6);
        g.add_directed_edge(0, 1, 3.0); // c-d
        g.add_directed_edge(0, 2, 2.0); // c-e
        g.add_directed_edge(1, 3, 4.0); // d-f
        g.add_directed_edge(2, 1, 1.0); // e-d
        g.add_directed_edge(2, 3, 2.0); // e-f
        g.add_directed_edge(2, 4, 3.0); // e-g
        g.add_directed_edge(3, 4, 2.0); // f-g
        g.add_directed_edge(3, 5, 1.0); // f-h
        g.add_directed_edge(4, 5, 2.0); // g-h
        g
    }

    #[test]
    fn classic_yen_example() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 3);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].nodes, vec![0, 2, 3, 5]);
        assert_eq!(paths[0].cost(), 5.0);
        assert_eq!(paths[1].cost(), 7.0);
        assert_eq!(paths[2].cost(), 8.0);
    }

    #[test]
    fn costs_non_decreasing() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for w in paths.windows(2) {
            assert!(w[0].cost() <= w[1].cost());
        }
    }

    #[test]
    fn paths_are_loopless_and_distinct() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for p in &paths {
            let mut seen = p.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), p.nodes.len(), "loop in {:?}", p.nodes);
        }
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let g = yen_graph();
        assert!(k_shortest_paths(&g, 0, 5, 0).is_empty());
    }

    #[test]
    fn same_src_dst_returns_empty() {
        let g = yen_graph();
        assert!(k_shortest_paths(&g, 0, 0, 3).is_empty());
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        assert!(k_shortest_paths(&g, 0, 2, 3).is_empty());
    }

    #[test]
    fn exhausts_when_fewer_than_k_paths_exist() {
        let mut g = Graph::new(3);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        let paths = k_shortest_paths(&g, 0, 2, 5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn undirected_square_has_two_paths() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 3, 1.0);
        g.add_undirected_edge(0, 2, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        let paths = k_shortest_paths(&g, 0, 3, 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost(), 2.0);
        assert_eq!(paths[1].cost(), 2.0);
    }

    #[test]
    fn parallel_edges_counted_as_distinct_hops_not_paths() {
        // Yen on node sequences: parallel edges do not create duplicate
        // node-sequence paths.
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 1, 2.0);
        let paths = k_shortest_paths(&g, 0, 1, 5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].cost(), 1.0);
    }
}
