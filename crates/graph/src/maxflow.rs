//! Dinic's maximum-flow algorithm.
//!
//! Used by `owan-te`'s MaxFlow-style baselines for sanity bounds and by
//! tests as an independent oracle for LP-based throughput maximization on
//! single-commodity instances.

use crate::graph::NodeId;

/// An arc of the residual network.
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: NodeId,
    /// Remaining capacity.
    cap: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// A flow network on `n` nodes with explicit arc capacities.
///
/// Build with [`FlowNetwork::new`] and [`add_edge`](FlowNetwork::add_edge),
/// then call [`max_flow`].
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Per node: indices into `arcs`.
    adj: Vec<Vec<usize>>,
    arcs: Vec<Arc>,
}

impl FlowNetwork {
    /// Creates a flow network with `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `u -> v` with the given capacity. A reverse arc
    /// of zero capacity is added automatically.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: f64) {
        assert!(cap >= 0.0, "capacity must be non-negative");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "endpoint out of range"
        );
        let fwd = self.arcs.len();
        self.arcs.push(Arc {
            to: v,
            cap,
            rev: fwd + 1,
        });
        self.arcs.push(Arc {
            to: u,
            cap: 0.0,
            rev: fwd,
        });
        self.adj[u].push(fwd);
        self.adj[v].push(fwd + 1);
    }

    /// Adds an undirected edge (capacity in both directions).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, cap: f64) {
        self.add_edge(u, v, cap);
        self.add_edge(v, u, cap);
    }

    /// BFS level graph; returns false if `t` is unreachable.
    fn bfs(&self, s: NodeId, t: NodeId, level: &mut [i32]) -> bool {
        const EPS: f64 = 1e-12;
        level.iter_mut().for_each(|l| *l = -1);
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &ai in &self.adj[u] {
                let a = self.arcs[ai];
                if a.cap > EPS && level[a.to] < 0 {
                    level[a.to] = level[u] + 1;
                    queue.push_back(a.to);
                }
            }
        }
        level[t] >= 0
    }

    /// DFS blocking-flow augmentation.
    fn dfs(&mut self, u: NodeId, t: NodeId, pushed: f64, level: &[i32], it: &mut [usize]) -> f64 {
        const EPS: f64 = 1e-12;
        if u == t {
            return pushed;
        }
        while it[u] < self.adj[u].len() {
            let ai = self.adj[u][it[u]];
            let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
            if cap > EPS && level[to] == level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap), level, it);
                if d > EPS {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0.0
    }
}

/// Computes the maximum flow from `s` to `t`, consuming the residual
/// capacities of `net`. Runs in `O(V^2 E)` (far better in practice).
pub fn max_flow(net: &mut FlowNetwork, s: NodeId, t: NodeId) -> f64 {
    assert_ne!(s, t, "source and sink must differ");
    let n = net.node_count();
    let mut flow = 0.0;
    let mut level = vec![-1i32; n];
    while net.bfs(s, t, &mut level) {
        let mut it = vec![0usize; n];
        loop {
            let pushed = net.dfs(s, t, f64::INFINITY, &level, &mut it);
            if pushed <= 1e-12 {
                break;
            }
            flow += pushed;
        }
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut n = FlowNetwork::new(2);
        n.add_edge(0, 1, 5.0);
        assert_eq!(max_flow(&mut n, 0, 1), 5.0);
    }

    #[test]
    fn series_bottleneck() {
        let mut n = FlowNetwork::new(3);
        n.add_edge(0, 1, 5.0);
        n.add_edge(1, 2, 3.0);
        assert_eq!(max_flow(&mut n, 0, 2), 3.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 4.0);
        n.add_edge(1, 3, 4.0);
        n.add_edge(0, 2, 6.0);
        n.add_edge(2, 3, 6.0);
        assert_eq!(max_flow(&mut n, 0, 3), 10.0);
    }

    #[test]
    fn classic_cormen_example() {
        // CLRS figure 26.1 instance, max flow 23.
        let mut n = FlowNetwork::new(6);
        n.add_edge(0, 1, 16.0);
        n.add_edge(0, 2, 13.0);
        n.add_edge(1, 2, 10.0);
        n.add_edge(2, 1, 4.0);
        n.add_edge(1, 3, 12.0);
        n.add_edge(3, 2, 9.0);
        n.add_edge(2, 4, 14.0);
        n.add_edge(4, 3, 7.0);
        n.add_edge(3, 5, 20.0);
        n.add_edge(4, 5, 4.0);
        assert_eq!(max_flow(&mut n, 0, 5), 23.0);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 5.0);
        n.add_edge(2, 3, 5.0);
        assert_eq!(max_flow(&mut n, 0, 3), 0.0);
    }

    #[test]
    fn undirected_edge_flows_either_way() {
        let mut n = FlowNetwork::new(3);
        n.add_undirected_edge(0, 1, 2.0);
        n.add_undirected_edge(1, 2, 2.0);
        assert_eq!(max_flow(&mut n, 2, 0), 2.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut n = FlowNetwork::new(3);
        n.add_edge(0, 1, 0.5);
        n.add_edge(1, 2, 0.25);
        assert!((max_flow(&mut n, 0, 2) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let mut n = FlowNetwork::new(1);
        max_flow(&mut n, 0, 0);
    }
}
