//! The adversarial-traffic recovery benchmark behind `BENCH_attack.json`.
//!
//! Two attack scenarios on the 40-site ISP backbone — a short-path
//! **coremelt** against the two max-betweenness fibers and a sustained
//! **flash crowd** into the best-connected site — each driven through the
//! hardened chaos runner under three engines: the annealed Owan
//! controller and the fixed-topology MaxFlow and SWAN baselines. Every
//! attacked slot is audited with both oracle invariant checkers; a
//! violation fails the benchmark rather than producing numbers.
//!
//! Per (scenario, engine) cell the report records the headline recovery
//! metrics: time-to-restore-90%-delivered (slots from attack onset until
//! cumulative background delivery is back to 90% of the engine's own
//! fault-free baseline *and stays there*; `-1` when it never recovers),
//! residual background loss in gigabits, and peak victim-link
//! utilization. Output is a flat JSON object so the CI smoke job can grep
//! a single key against the checked-in baseline without a JSON parser.

use crate::perf::{git_commit, json_number, json_string};
use crate::scale::{net_by_name, workload_for, Scale};
use owan_chaos::{run_attack, AttackTimeline, ChaosConfig, OpFaultModel, SlotAudit};
use owan_core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, TrafficEngineer, TransferRequest,
};
use owan_obs::Recorder;
use owan_oracle::{check_plan, check_timeline};
use owan_scope::ScopeRecorder;
use owan_sim::runner::{make_engine, EngineKind, RunnerConfig};
use owan_topo::Network;
use owan_workload::attack::{coremelt, flash_crowd, CoremeltConfig, FlashCrowdConfig};

/// One (scenario, engine) cell of the recovery matrix.
#[derive(Debug, Clone)]
pub struct AttackBenchRow {
    /// Attack scenario slug (`coremelt` or `flashcrowd`).
    pub scenario: String,
    /// Engine slug (`owan`, `maxflow`, `swan`).
    pub engine: String,
    /// The engine's own fault-free delivery, gigabits.
    pub baseline_delivered_gbits: f64,
    /// Background delivery under attack, gigabits.
    pub attacked_background_gbits: f64,
    /// Baseline minus attacked background delivery, floored at zero.
    pub residual_loss_gbits: f64,
    /// Slots from onset to sustained ≥90% cumulative restore; `None`
    /// when the run never recovers.
    pub time_to_restore_slots: Option<usize>,
    /// Post-onset slots spent in the restored state.
    pub restored_slots: u64,
    /// Peak utilization observed on the victim links.
    pub peak_victim_util: f64,
    /// Adversarial volume injected, gigabits.
    pub injected_gbits: f64,
    /// Slots the oracle audited (every planned slot of the attacked run).
    pub slots_audited: usize,
}

/// Everything one benchmark run measured. Field names match the JSON keys
/// (`{scenario}_{engine}_{metric}` per cell).
#[derive(Debug, Clone)]
pub struct AttackBenchReport {
    /// Scale label ("quick" or "full").
    pub scale: String,
    /// Git commit the benchmark binary was built from.
    pub commit: String,
    /// Evaluation network name.
    pub net: String,
    /// Horizon, slots.
    pub slots: usize,
    /// Slot length, seconds.
    pub slot_len_s: f64,
    /// Annealing iterations per slot (owan cells).
    pub iterations: usize,
    /// Background transfers in the workload.
    pub transfers: usize,
    /// Attack onset, seconds.
    pub onset_s: f64,
    /// The recovery matrix, scenario-major.
    pub rows: Vec<AttackBenchRow>,
}

impl AttackBenchReport {
    /// Serializes as flat JSON: run parameters, then one
    /// `{scenario}_{engine}_{metric}` key per cell metric.
    /// `time_to_restore_slots` is `-1` when the run never recovered.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut kv = |key: &str, val: String| {
            s.push_str(&format!("  \"{key}\": {val},\n"));
        };
        kv("scale", format!("\"{}\"", self.scale));
        kv("commit", format!("\"{}\"", self.commit));
        kv("net", format!("\"{}\"", self.net));
        kv("slots", self.slots.to_string());
        kv("slot_len_s", format!("{:.0}", self.slot_len_s));
        kv("iterations", self.iterations.to_string());
        kv("transfers", self.transfers.to_string());
        kv("onset_s", format!("{:.0}", self.onset_s));
        for r in &self.rows {
            let cell = format!("{}_{}", r.scenario, r.engine);
            kv(
                &format!("{cell}_time_to_restore_slots"),
                r.time_to_restore_slots
                    .map_or_else(|| "-1".to_string(), |t| t.to_string()),
            );
            kv(
                &format!("{cell}_residual_loss_gbits"),
                format!("{:.0}", r.residual_loss_gbits),
            );
            kv(
                &format!("{cell}_baseline_delivered_gbits"),
                format!("{:.0}", r.baseline_delivered_gbits),
            );
            kv(
                &format!("{cell}_attacked_background_gbits"),
                format!("{:.0}", r.attacked_background_gbits),
            );
            kv(
                &format!("{cell}_restored_slots"),
                r.restored_slots.to_string(),
            );
            kv(
                &format!("{cell}_peak_victim_util"),
                format!("{:.3}", r.peak_victim_util),
            );
            kv(
                &format!("{cell}_injected_gbits"),
                format!("{:.0}", r.injected_gbits),
            );
            kv(
                &format!("{cell}_slots_audited"),
                r.slots_audited.to_string(),
            );
        }
        // Drop the trailing comma and close.
        if s.ends_with(",\n") {
            s.truncate(s.len() - 2);
            s.push('\n');
        }
        s.push_str("}\n");
        s
    }
}

/// The attack horizon in slots for a scale (shorter than the chaos
/// horizon: recovery is visible within a couple dozen slots).
fn attack_slots(scale: &Scale) -> usize {
    if scale.max_requests == usize::MAX {
        24
    } else {
        16
    }
}

fn background(net: &Network, scale: &Scale) -> Vec<TransferRequest> {
    let mut reqs = workload_for(net, 0.4, None, scale);
    let cap = if scale.max_requests == usize::MAX {
        120
    } else {
        scale.max_requests
    };
    reqs.truncate(cap);
    reqs
}

/// Runs one (scenario, engine) cell: `run_attack` with every slot of the
/// attacked run audited by `check_plan`/`check_timeline`. Panics on an
/// invariant violation — a benchmark must not report numbers from a run
/// the oracle rejected.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    net: &Network,
    requests: &[TransferRequest],
    timeline: &AttackTimeline,
    kind: EngineKind,
    scenario: &str,
    engine: &str,
    scale: &Scale,
    slots: usize,
) -> AttackBenchRow {
    let config = ChaosConfig {
        slot_len_s: scale.slot_len_s,
        max_slots: slots,
        ..Default::default()
    };
    let runner_cfg = RunnerConfig {
        anneal_iterations: scale.anneal_iterations,
        seed: scale.seed.wrapping_add(1),
        ..Default::default()
    };
    let mut factory = |p: &owan_optical::FiberPlant| -> Box<dyn TrafficEngineer> {
        if kind == EngineKind::Owan {
            let owan_config = OwanConfig {
                anneal: AnnealConfig {
                    max_iterations: scale.anneal_iterations,
                    seed: scale.seed.wrapping_add(1),
                    ..Default::default()
                },
                ..Default::default()
            };
            Box::new(OwanEngine::new(default_topology(p), owan_config))
        } else {
            make_engine(kind, net, &runner_cfg)
        }
    };

    let mut slots_audited = 0usize;
    let mut audit = |a: &SlotAudit| -> Result<(), String> {
        if let Err(v) = check_plan(a.believed_plant, a.transfers, a.slot_len_s, a.plan) {
            return Err(format!("slot plan: {v}"));
        }
        if let (Some(delta), Some(update)) = (a.delta, a.update) {
            if let Err(v) = check_timeline(delta, update, &a.params) {
                return Err(format!("update: {v}"));
            }
        }
        slots_audited += 1;
        Ok(())
    };

    let outcome = run_attack(
        &net.plant,
        requests,
        timeline,
        &mut factory,
        &config,
        0.9,
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
        Some(&mut audit),
    )
    .unwrap_or_else(|e| panic!("{scenario}/{engine}: oracle rejected the run: {e}"));

    AttackBenchRow {
        scenario: scenario.to_string(),
        engine: engine.to_string(),
        baseline_delivered_gbits: outcome.baseline.delivered_gbits,
        attacked_background_gbits: outcome.attacked.background_gbits,
        residual_loss_gbits: outcome.metrics.residual_loss_gbits,
        time_to_restore_slots: outcome.metrics.time_to_restore_slots,
        restored_slots: outcome.metrics.restored_slots,
        peak_victim_util: outcome.metrics.peak_victim_util,
        injected_gbits: outcome.metrics.injected_gbits,
        slots_audited,
    }
}

/// Runs the full recovery matrix on the ISP backbone and returns the
/// report. `label` names the scale in the output (`"quick"`/`"full"`).
pub fn bench_attack(scale: &Scale, label: &str) -> AttackBenchReport {
    let net = net_by_name("isp");
    let slots = attack_slots(scale);
    let onset = 4.0 * scale.slot_len_s;
    let requests = background(&net, scale);

    // Coremelt: the default short-path flood against the two
    // max-betweenness fibers.
    let cm = CoremeltConfig::new(scale.seed, onset, 6.0 * scale.slot_len_s);
    let coremelt_tl = AttackTimeline::new(vec![coremelt(&net.plant, &cm)]);
    // Flash crowd: a sustained many-to-one surge — 12 sources holding an
    // aggregate 60 Tbps-scale demand on the victim through the horizon.
    let mut fc = FlashCrowdConfig::new(scale.seed, onset);
    fc.sources = 12;
    fc.peak_gbps = 60_000.0;
    fc.hold_s = (slots as f64 - 8.0).max(4.0) * scale.slot_len_s;
    let flash_tl = AttackTimeline::new(vec![flash_crowd(&net.plant, &fc)]);

    let engines = [
        ("owan", EngineKind::Owan),
        ("maxflow", EngineKind::MaxFlow),
        ("swan", EngineKind::Swan),
    ];
    let mut rows = Vec::new();
    for (scenario, tl) in [("coremelt", &coremelt_tl), ("flashcrowd", &flash_tl)] {
        for (engine, kind) in engines {
            eprintln!("bench_attack: {scenario}/{engine} ...");
            rows.push(run_cell(
                &net, &requests, tl, kind, scenario, engine, scale, slots,
            ));
        }
    }

    AttackBenchReport {
        scale: label.to_string(),
        commit: git_commit(),
        net: "isp".to_string(),
        slots,
        slot_len_s: scale.slot_len_s,
        iterations: scale.anneal_iterations,
        transfers: requests.len(),
        onset_s: onset,
        rows,
    }
}

/// Gates a fresh report against a checked-in baseline.
///
/// Unlike the timing benchmarks, every number here comes from a seeded
/// deterministic simulation, so the gate is exact: each cell's
/// `time_to_restore_slots` must match the baseline integer-for-integer
/// and `residual_loss_gbits` to the rounding the JSON carries. A
/// mismatch means the recovery behavior itself changed — which is the
/// event this baseline exists to catch.
pub fn check_attack_against_baseline(
    report: &AttackBenchReport,
    baseline_json: &str,
) -> Result<String, String> {
    let base_scale = json_string(baseline_json, "scale").ok_or("baseline is missing scale")?;
    if base_scale != report.scale {
        return Err(format!(
            "scale mismatch: report is \"{}\" but baseline is \"{base_scale}\" — \
             regenerate the baseline at the same scale",
            report.scale
        ));
    }
    let mut summary = String::new();
    for r in &report.rows {
        let cell = format!("{}_{}", r.scenario, r.engine);
        let ttr_key = format!("{cell}_time_to_restore_slots");
        let loss_key = format!("{cell}_residual_loss_gbits");
        let base_ttr = json_number(baseline_json, &ttr_key)
            .ok_or_else(|| format!("baseline is missing {ttr_key}"))?;
        let base_loss = json_number(baseline_json, &loss_key)
            .ok_or_else(|| format!("baseline is missing {loss_key}"))?;
        let fresh_ttr = r.time_to_restore_slots.map_or(-1.0, |t| t as f64);
        if fresh_ttr != base_ttr {
            return Err(format!(
                "{ttr_key} changed: baseline {base_ttr}, fresh {fresh_ttr} \
                 (-1 means never restored)"
            ));
        }
        if (r.residual_loss_gbits - base_loss).abs() > 0.5 {
            return Err(format!(
                "{loss_key} changed: baseline {base_loss:.0}, fresh {:.0}",
                r.residual_loss_gbits
            ));
        }
        summary.push_str(&format!(
            "  {cell}: ttr {} loss {:.0} Gb (matches baseline)\n",
            r.time_to_restore_slots
                .map_or_else(|| "never".to_string(), |t| t.to_string()),
            r.residual_loss_gbits
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_flat_and_greppable() {
        let report = AttackBenchReport {
            scale: "quick".into(),
            commit: "abc123".into(),
            net: "isp".into(),
            slots: 16,
            slot_len_s: 300.0,
            iterations: 30,
            transfers: 60,
            onset_s: 1200.0,
            rows: vec![AttackBenchRow {
                scenario: "coremelt".into(),
                engine: "owan".into(),
                baseline_delivered_gbits: 1000.0,
                attacked_background_gbits: 950.0,
                residual_loss_gbits: 50.0,
                time_to_restore_slots: Some(3),
                restored_slots: 9,
                peak_victim_util: 1.0,
                injected_gbits: 5000.0,
                slots_audited: 16,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"coremelt_owan_time_to_restore_slots\": 3"));
        assert!(json.contains("\"coremelt_owan_residual_loss_gbits\": 50"));
        assert!(crate::perf::json_number(&json, "coremelt_owan_peak_victim_util").is_some());
        assert!(!json.contains(",\n}"), "no trailing comma");
    }

    #[test]
    fn never_restored_serializes_as_minus_one() {
        let report = AttackBenchReport {
            scale: "quick".into(),
            commit: "abc123".into(),
            net: "isp".into(),
            slots: 16,
            slot_len_s: 300.0,
            iterations: 30,
            transfers: 60,
            onset_s: 1200.0,
            rows: vec![AttackBenchRow {
                scenario: "flashcrowd".into(),
                engine: "maxflow".into(),
                baseline_delivered_gbits: 1000.0,
                attacked_background_gbits: 500.0,
                residual_loss_gbits: 500.0,
                time_to_restore_slots: None,
                restored_slots: 0,
                peak_victim_util: 1.0,
                injected_gbits: 5000.0,
                slots_audited: 16,
            }],
        };
        let json = report.to_json();
        assert_eq!(
            crate::perf::json_number(&json, "flashcrowd_maxflow_time_to_restore_slots"),
            Some(-1.0)
        );
    }
}
