//! Figures 7, 8, and 9: the headline comparisons.

use crate::scale::{workload_for, Scale};
use owan_core::SchedulingPolicy;
use owan_sim::metrics::{self, SizeBin};
use owan_sim::runner::{run_comparison, EngineKind, RunnerConfig};
use owan_sim::{SimConfig, SimResult};
use owan_topo::Network;

fn runner_config(scale: &Scale, policy: SchedulingPolicy) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: scale.slot_len_s,
            max_slots: 2_000,
            ..Default::default()
        },
        anneal_iterations: scale.anneal_iterations,
        seed: scale.seed,
        policy,
        ..Default::default()
    }
}

/// One load point of Figure 7: results per engine, Owan first.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// The traffic load factor λ.
    pub load: f64,
    /// Results aligned with [`EngineKind::UNCONSTRAINED`].
    pub results: Vec<SimResult>,
}

impl Fig7Point {
    /// Factor of improvement of Owan over engine `i` on (avg, p95).
    pub fn improvement(&self, i: usize, bin: SizeBin) -> (f64, f64) {
        let (o_avg, o_p95) = metrics::summary(&self.results[0], bin);
        let (b_avg, b_p95) = metrics::summary(&self.results[i], bin);
        (
            metrics::improvement_factor(o_avg, b_avg),
            metrics::improvement_factor(o_p95, b_p95),
        )
    }
}

/// Runs the Figure 7 pipeline (panels a-c for `internet2`, d-f for `isp`,
/// g-i for `interdc`): deadline-unconstrained traffic, completion-time
/// improvements vs load, per-size-bin breakdown and CDF at λ = 1.
pub fn fig7(network: &Network, scale: &Scale) -> Vec<Fig7Point> {
    let cfg = runner_config(scale, SchedulingPolicy::ShortestJobFirst);
    scale
        .loads
        .iter()
        .map(|&load| {
            let reqs = workload_for(network, load, None, scale);
            let results = run_comparison(&EngineKind::UNCONSTRAINED, network, &reqs, &cfg);
            Fig7Point { load, results }
        })
        .collect()
}

/// Prints the Figure 7 tables for one network.
pub fn print_fig7(network: &Network, points: &[Fig7Point]) {
    println!("# Figure 7 — transfer completion time ({})", network.name);
    println!("## panel (a/d/g): factor of improvement vs load");
    println!("load,vs,avg_improvement,p95_improvement");
    for p in points {
        for (i, kind) in EngineKind::UNCONSTRAINED.iter().enumerate().skip(1) {
            let (avg, p95) = p.improvement(i, SizeBin::All);
            println!("{},{:?},{:.2},{:.2}", p.load, kind, avg, p95);
        }
    }
    if let Some(p1) = points.iter().find(|p| (p.load - 1.0).abs() < 1e-9) {
        println!("## panel (b/e/h): improvement by size bin at load 1");
        println!("bin,vs,avg_improvement,p95_improvement");
        for bin in SizeBin::BINS {
            for (i, kind) in EngineKind::UNCONSTRAINED.iter().enumerate().skip(1) {
                let (avg, p95) = p1.improvement(i, bin);
                println!("{},{:?},{:.2},{:.2}", bin.label(), kind, avg, p95);
            }
        }
        println!("## panel (c/f/i): completion-time CDF at load 1 (deciles)");
        println!("engine,p10,p20,p30,p40,p50,p60,p70,p80,p90,p100");
        for r in &p1.results {
            let xs = metrics::completion_times(r, SizeBin::All);
            let row: Vec<String> = (1..=10)
                .map(|d| format!("{:.0}", metrics::percentile(&xs, d as f64 * 10.0)))
                .collect();
            println!("{},{}", r.engine, row.join(","));
        }
    }
}

/// One load point of Figure 8 for one network.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// The traffic load factor λ.
    pub load: f64,
    /// Makespan improvement of Owan over each baseline, aligned with
    /// `EngineKind::UNCONSTRAINED[1..]`.
    pub improvements: Vec<f64>,
}

/// Runs the Figure 8 pipeline: makespan improvement vs load. Reuses the
/// Figure 7 runs (same workloads, same engines).
pub fn fig8(points: &[Fig7Point]) -> Vec<Fig8Point> {
    points
        .iter()
        .map(|p| {
            let owan = p.results[0].makespan_s;
            let improvements = p.results[1..]
                .iter()
                .map(|r| metrics::improvement_factor(owan, r.makespan_s))
                .collect();
            Fig8Point {
                load: p.load,
                improvements,
            }
        })
        .collect()
}

/// Prints the Figure 8 table for one network.
pub fn print_fig8(network: &Network, points: &[Fig8Point]) {
    println!("# Figure 8 — makespan improvement ({})", network.name);
    println!("load,vs,makespan_improvement");
    for p in points {
        for (i, kind) in EngineKind::UNCONSTRAINED.iter().enumerate().skip(1) {
            println!("{},{:?},{:.2}", p.load, kind, p.improvements[i - 1]);
        }
    }
}

/// One deadline-factor point of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// The deadline factor σ.
    pub deadline_factor: f64,
    /// Results aligned with [`EngineKind::DEADLINE`].
    pub results: Vec<SimResult>,
}

impl Fig9Point {
    /// % of transfers meeting deadlines per engine.
    pub fn pct_met(&self, bin: SizeBin) -> Vec<f64> {
        self.results
            .iter()
            .map(|r| metrics::pct_deadlines_met(r, bin))
            .collect()
    }

    /// % of bytes finishing before deadlines per engine.
    pub fn pct_bytes(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(metrics::pct_bytes_by_deadline)
            .collect()
    }
}

/// Runs the Figure 9 pipeline (panels a-c / d-f / g-i): deadline-
/// constrained traffic under EDF, sweeping the deadline factor σ.
pub fn fig9(network: &Network, scale: &Scale) -> Vec<Fig9Point> {
    let cfg = runner_config(scale, SchedulingPolicy::EarliestDeadlineFirst);
    scale
        .deadline_factors
        .iter()
        .map(|&sigma| {
            let reqs = workload_for(network, 1.0, Some(sigma), scale);
            let results = run_comparison(&EngineKind::DEADLINE, network, &reqs, &cfg);
            Fig9Point {
                deadline_factor: sigma,
                results,
            }
        })
        .collect()
}

/// Prints the Figure 9 tables for one network.
pub fn print_fig9(network: &Network, points: &[Fig9Point]) {
    println!(
        "# Figure 9 — deadline-constrained traffic ({})",
        network.name
    );
    println!("## panel (a/d/g): % of transfers meeting deadlines");
    print!("deadline_factor");
    for kind in EngineKind::DEADLINE {
        print!(",{kind:?}");
    }
    println!();
    for p in points {
        print!("{}", p.deadline_factor);
        for v in p.pct_met(SizeBin::All) {
            print!(",{v:.1}");
        }
        println!();
    }
    println!("## panel (b/e/h): % of bytes finishing before deadlines");
    for p in points {
        print!("{}", p.deadline_factor);
        for v in p.pct_bytes() {
            print!(",{v:.1}");
        }
        println!();
    }
    // Per-bin panel at σ = 20 (or the largest swept σ).
    if let Some(p20) = points
        .iter()
        .find(|p| (p.deadline_factor - 20.0).abs() < 1e-9)
        .or_else(|| points.last())
    {
        println!(
            "## panel (c/f/i): % meeting deadlines by size bin at sigma = {}",
            p20.deadline_factor
        );
        for bin in SizeBin::BINS {
            print!("{}", bin.label());
            for v in p20.pct_met(bin) {
                print!(",{v:.1}");
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::net_by_name;

    fn tiny_scale() -> Scale {
        Scale {
            duration_s: 900.0,
            max_requests: 10,
            anneal_iterations: 40,
            loads: vec![1.0],
            deadline_factors: vec![10.0],
            ..Scale::quick()
        }
    }

    #[test]
    fn fig7_pipeline_produces_improvements() {
        let net = net_by_name("internet2");
        let points = fig7(&net, &tiny_scale());
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].results.len(), 4);
        let (avg, p95) = points[0].improvement(1, SizeBin::All);
        assert!(avg.is_finite() && avg > 0.0);
        assert!(p95.is_finite() && p95 > 0.0);
    }

    #[test]
    fn fig8_reuses_fig7_runs() {
        let net = net_by_name("internet2");
        let points = fig7(&net, &tiny_scale());
        let f8 = fig8(&points);
        assert_eq!(f8.len(), 1);
        assert_eq!(f8[0].improvements.len(), 3);
        assert!(f8[0].improvements.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn fig9_pipeline_reports_percentages() {
        let net = net_by_name("internet2");
        let points = fig9(&net, &tiny_scale());
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].results.len(), 6);
        for v in points[0].pct_met(SizeBin::All) {
            assert!((0.0..=100.0).contains(&v));
        }
        for v in points[0].pct_bytes() {
            assert!((0.0..=100.0 + 1e-9).contains(&v));
        }
    }
}
