//! Figure 10 microbenchmarks and the §5.1 simulator validation.

use crate::scale::{net_by_name, workload_for, Scale};
use owan_core::{SchedulingPolicy, SlotInput};
use owan_sim::metrics::{self, SizeBin};
use owan_sim::runner::{make_engine, run_engine, EngineKind, RunnerConfig};
use owan_sim::validate::{validate_simulator, ValidationReport};
use owan_sim::SimConfig;
use owan_update::{
    plan_consistent, plan_one_shot, throughput_timeline, NetworkDelta, TimelinePoint, UpdateParams,
};

/// A `(time_s, gbps)` throughput time series.
pub type ThroughputSeries = Vec<(f64, f64)>;

fn runner_config(scale: &Scale) -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: scale.slot_len_s,
            max_slots: 2_000,
            ..Default::default()
        },
        anneal_iterations: scale.anneal_iterations,
        seed: scale.seed,
        policy: SchedulingPolicy::ShortestJobFirst,
        ..Default::default()
    }
}

/// Figure 10(a): total throughput over time — joint simulated annealing vs
/// the greedy separate-layer algorithm. The
/// ISP backbone is driven at λ = 2, where per-pair demands are far below
/// the 100 Gbps wavelength granularity: the greedy layer-by-layer
/// algorithm burns router ports on dedicated per-pair circuits while the
/// joint search aggregates demand over shared links and multi-hop routes —
/// the coupling effect §5.4 describes. Returns the two `(time, Gbps)`
/// series, Owan first.
pub fn fig10a(scale: &Scale) -> (ThroughputSeries, ThroughputSeries) {
    let net = net_by_name("isp");
    let reqs = workload_for(&net, 2.0, None, scale);
    let cfg = runner_config(scale);
    let sa = run_engine(EngineKind::Owan, &net, &reqs, &cfg);
    let greedy = run_engine(EngineKind::Greedy, &net, &reqs, &cfg);
    (sa.throughput_series, greedy.throughput_series)
}

/// Prints Figure 10(a).
pub fn print_fig10a(sa: &[(f64, f64)], greedy: &[(f64, f64)]) {
    println!("# Figure 10(a) — simulated annealing vs greedy (isp, load 2)");
    println!("time_s,annealing_gbps,greedy_gbps");
    let n = sa.len().max(greedy.len());
    for i in 0..n {
        let t = sa
            .get(i)
            .or_else(|| greedy.get(i))
            .map(|p| p.0)
            .unwrap_or(0.0);
        let a = sa.get(i).map(|p| p.1).unwrap_or(0.0);
        let g = greedy.get(i).map(|p| p.1).unwrap_or(0.0);
        println!("{t:.0},{a:.1},{g:.1}");
    }
    // Compare means over the window where *both* runs still have backlog
    // (once one side drains, its throughput legitimately falls to zero and
    // the comparison would be meaningless).
    let overlap = sa.len().min(greedy.len());
    let avg = |s: &[(f64, f64)]| -> f64 {
        if overlap == 0 {
            0.0
        } else {
            s[..overlap].iter().map(|p| p.1).sum::<f64>() / overlap as f64
        }
    };
    println!(
        "# mean over common window: annealing {:.1} Gbps, greedy {:.1} Gbps ({:.0}% gap); slots to drain: {} vs {}",
        avg(sa),
        avg(greedy),
        100.0 * (1.0 - avg(greedy) / avg(sa).max(1e-9)),
        sa.len(),
        greedy.len()
    );
}

/// Output of [`fig10b`]: the two timelines plus the reconfiguration's
/// optical churn, which readers of the figure need for context — with no
/// circuit ops the delta is a pure path swap and one-shot has nothing to
/// darken.
pub struct Fig10b {
    /// Carried throughput under the consistent (Dionysus-style) schedule.
    pub consistent: Vec<TimelinePoint>,
    /// Carried throughput under the one-shot schedule.
    pub one_shot: Vec<TimelinePoint>,
    /// Circuit setup/teardown operations in the delta.
    pub circuit_ops: usize,
}

/// Figure 10(b): carried throughput during a reconfiguration, consistent
/// update vs one-shot. The scenario is a demand shift that forces optical
/// churn: long-lived background transfers keep flowing while the heavy
/// demand moves between site pairs, so the annealer re-aims circuits and
/// the background traffic must survive the reconfiguration. (At tiny
/// annealing scales the search may instead settle on a plan with no
/// optical churn; `circuit_ops` reports what happened.)
pub fn fig10b(scale: &Scale) -> Fig10b {
    let net = net_by_name("internet2");
    let cfg = runner_config(scale);
    let mut engine = make_engine(EngineKind::Owan, &net, &cfg);

    let site = |name: &str| net.plant.site_by_name(name).expect("site exists");
    let slot = scale.slot_len_s;
    let mk = |id: usize, src: &str, dst: &str, gbits: f64| {
        owan_core::Transfer::from_request(
            id,
            &owan_core::TransferRequest {
                src: site(src),
                dst: site(dst),
                volume_gbits: gbits,
                arrival_s: 0.0,
                deadline_s: None,
            },
        )
    };
    // Background flows that persist across both slots.
    let background = [
        mk(0, "SEAT", "WASH", 4.0 * 10.0 * slot),
        mk(1, "LOSA", "ATLA", 4.0 * 10.0 * slot),
    ];
    // Phase A heavy demand: mostly (but not fully) drains in slot 1, so it
    // is still alive — at a trickle — while the heavy demand moves to the
    // phase B pairs in slot 2.
    let phase_a = [
        mk(2, "SEAT", "LOSA", 1.1 * 20.0 * slot),
        mk(3, "DENV", "KANS", 1.1 * 20.0 * slot),
    ];
    let phase_b = [
        mk(4, "SALT", "HOUS", 3.0 * 20.0 * slot),
        mk(5, "CHIC", "ATLA", 3.0 * 20.0 * slot),
    ];

    let slot1: Vec<owan_core::Transfer> = background.iter().chain(&phase_a).cloned().collect();
    let plan1 = engine.plan_slot(
        &net.plant,
        &SlotInput {
            transfers: &slot1,
            slot_len_s: slot,
            now_s: 0.0,
        },
    );
    // Everything progresses by its slot-1 rate; phase B arrives.
    let progress = |t: &owan_core::Transfer| {
        let rate = plan1
            .allocations
            .iter()
            .find(|a| a.transfer == t.id)
            .map(|a| a.total_rate())
            .unwrap_or(0.0);
        let mut t = t.clone();
        t.remaining_gbits = (t.remaining_gbits - rate * slot).max(1.0);
        t
    };
    let slot2: Vec<owan_core::Transfer> = background
        .iter()
        .chain(&phase_a)
        .map(progress)
        .chain(phase_b.iter().cloned())
        .collect();
    let plan2 = engine.plan_slot(
        &net.plant,
        &SlotInput {
            transfers: &slot2,
            slot_len_s: slot,
            now_s: slot,
        },
    );

    let delta = NetworkDelta::from_plans(
        &plan1.topology,
        &plan1.allocations,
        &plan2.topology,
        &plan2.allocations,
        net.plant.params().wavelengths_per_fiber,
    );
    let params = UpdateParams {
        theta_gbps: net.plant.params().wavelength_capacity_gbps,
        circuit_time_s: net.plant.params().circuit_reconfig_time_s,
        path_time_s: 0.1,
    };
    let consistent = plan_consistent(&delta, &params);
    let one_shot = plan_one_shot(&delta, &params);
    let horizon = consistent.makespan_s.max(one_shot.makespan_s) + 2.0;
    Fig10b {
        consistent: throughput_timeline(&delta, &consistent, &params, 0.1, horizon),
        one_shot: throughput_timeline(&delta, &one_shot, &params, 0.1, horizon),
        circuit_ops: delta.removed_circuits.len() + delta.added_circuits.len(),
    }
}

/// Prints Figure 10(b).
pub fn print_fig10b(fig: &Fig10b) {
    println!("# Figure 10(b) — throughput during update: consistent vs one-shot");
    println!("time_s,consistent_gbps,one_shot_gbps");
    for (c, o) in fig.consistent.iter().zip(&fig.one_shot) {
        println!(
            "{:.1},{:.2},{:.2}",
            c.time_s, c.throughput_gbps, o.throughput_gbps
        );
    }
    let min = |s: &[TimelinePoint]| {
        s.iter()
            .map(|p| p.throughput_gbps)
            .fold(f64::INFINITY, f64::min)
    };
    let start = fig
        .consistent
        .first()
        .map(|p| p.throughput_gbps)
        .unwrap_or(0.0);
    println!(
        "# initial {:.1} Gbps; min consistent {:.1}; min one-shot {:.1}; circuit ops {}",
        start,
        min(&fig.consistent),
        min(&fig.one_shot),
        fig.circuit_ops
    );
}

/// Figure 10(c): breakdown of gains — rate-only, +routing, +topology —
/// on the inter-DC network. Returns, per load factor, the average
/// completion time of the three control levels, normalized by the
/// +topology value at the lowest load (the paper's normalization).
pub fn fig10c(scale: &Scale) -> Vec<(f64, [f64; 3])> {
    let net = net_by_name("interdc");
    let cfg = runner_config(scale);
    let kinds = [
        EngineKind::RateOnly,
        EngineKind::RoutingRate,
        EngineKind::Owan,
    ];
    let mut raw: Vec<(f64, [f64; 3])> = Vec::new();
    for &load in &scale.loads {
        let reqs = workload_for(&net, load, None, scale);
        let mut row = [0.0; 3];
        for (i, &kind) in kinds.iter().enumerate() {
            let res = run_engine(kind, &net, &reqs, &cfg);
            let (avg, _) = metrics::summary(&res, SizeBin::All);
            row[i] = avg;
        }
        raw.push((load, row));
    }
    let base = raw
        .first()
        .map(|(_, row)| row[2])
        .filter(|&b| b > 0.0)
        .unwrap_or(1.0);
    raw.iter()
        .map(|&(load, row)| (load, [row[0] / base, row[1] / base, row[2] / base]))
        .collect()
}

/// Prints Figure 10(c).
pub fn print_fig10c(rows: &[(f64, [f64; 3])]) {
    println!("# Figure 10(c) — breakdown of gains (interdc)");
    println!("load,rate,+rout.,+topo.");
    for (load, [r, rr, t]) in rows {
        println!("{load},{r:.2},{rr:.2},{t:.2}");
    }
}

/// Figure 10(d): average completion time vs the simulated-annealing
/// running-time budget, on the inter-DC network at λ = 1. Returns
/// `(budget seconds, avg completion seconds)` rows.
pub fn fig10d(scale: &Scale) -> Vec<(f64, f64)> {
    let net = net_by_name("interdc");
    let reqs = workload_for(&net, 1.0, None, scale);
    let budgets = [0.02, 0.08, 0.32, 1.28, 5.12];
    budgets
        .iter()
        .map(|&budget| {
            let cfg = RunnerConfig {
                anneal_time_budget_s: Some(budget),
                anneal_iterations: usize::MAX,
                ..runner_config(scale)
            };
            let res = run_engine(EngineKind::Owan, &net, &reqs, &cfg);
            let (avg, _) = metrics::summary(&res, SizeBin::All);
            (budget, avg)
        })
        .collect()
}

/// Prints Figure 10(d).
pub fn print_fig10d(rows: &[(f64, f64)]) {
    println!("# Figure 10(d) — impact of annealing running time (interdc)");
    println!("sa_budget_s,avg_completion_s");
    for (b, avg) in rows {
        println!("{b},{avg:.0}");
    }
}

/// The §5.1 simulator-vs-testbed validation on the Internet2 topology.
pub fn validation(scale: &Scale) -> Vec<ValidationReport> {
    let net = net_by_name("internet2");
    let reqs = workload_for(&net, 1.0, None, scale);
    let cfg = runner_config(scale);
    [EngineKind::Owan, EngineKind::MaxFlow, EngineKind::Swan]
        .iter()
        .map(|&kind| validate_simulator(kind, &net, &reqs, &cfg, 0.93))
        .collect()
}

/// Prints the validation table.
pub fn print_validation(reports: &[ValidationReport]) {
    println!("# Section 5.1 — simulator vs (emulated) testbed validation");
    println!("engine,sim_avg_s,testbed_avg_s,avg_delta_pct,sim_p95_s,testbed_p95_s,p95_delta_pct");
    for r in reports {
        println!(
            "{},{:.0},{:.0},{:.1},{:.0},{:.0},{:.1}",
            r.engine,
            r.sim_avg_s,
            r.testbed_avg_s,
            100.0 * r.avg_delta(),
            r.sim_p95_s,
            r.testbed_p95_s,
            100.0 * r.p95_delta()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            duration_s: 900.0,
            max_requests: 10,
            anneal_iterations: 40,
            loads: vec![0.5, 1.0],
            ..Scale::quick()
        }
    }

    #[test]
    fn fig10a_series_nonempty() {
        let (sa, greedy) = fig10a(&tiny_scale());
        assert!(!sa.is_empty());
        assert!(!greedy.is_empty());
    }

    #[test]
    fn fig10b_consistent_preserves_traffic_one_shot_does_not() {
        let fig = fig10b(&tiny_scale());
        assert!(!fig.consistent.is_empty());
        assert!(!fig.one_shot.is_empty());
        let min = |s: &[owan_update::TimelinePoint]| {
            s.iter()
                .map(|p| p.throughput_gbps)
                .fold(f64::INFINITY, f64::min)
        };
        // The consistent schedule keeps live traffic flowing throughout
        // the reconfiguration (the step down from the initial value is the
        // demand change at the slot boundary, not loss); one-shot darkens
        // the circuits under it.
        assert!(
            min(&fig.consistent) > 0.0,
            "consistent carried traffic drops to zero"
        );
        // The one-shot-loses-more property only holds when circuits move:
        // a pure path swap has nothing to darken, and the consistent
        // schedule's capacity-ordered staging can transiently carry less
        // than an instantaneous swap. At tiny annealing scales the search
        // may settle on such a plan; at full scale the demand shift forces
        // optical churn and one-shot strictly loses.
        if fig.circuit_ops > 0 {
            assert!(
                min(&fig.one_shot) <= min(&fig.consistent) + 1e-6,
                "one-shot ({}) cannot lose less than consistent ({})",
                min(&fig.one_shot),
                min(&fig.consistent)
            );
        }
    }

    #[test]
    fn fig10c_rows_normalized() {
        let rows = fig10c(&tiny_scale());
        assert_eq!(rows.len(), 2);
        // The first row's +topo value is the normalization base.
        assert!((rows[0].1[2] - 1.0).abs() < 1e-9);
        // More control never hurts on average: rate >= +rout >= +topo.
        for (_, [r, rr, t]) in &rows {
            assert!(*r >= *rr - 0.25, "rate {r} vs +rout {rr}");
            assert!(*rr >= *t - 0.25, "+rout {rr} vs +topo {t}");
        }
    }

    #[test]
    fn validation_reports_all_engines() {
        let reports = validation(&tiny_scale());
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.sim_avg_s > 0.0);
            assert!(r.testbed_avg_s >= r.sim_avg_s);
        }
    }
}
