//! The annealing fast-path benchmark behind `BENCH_anneal.json`.
//!
//! Three measurements, all at *fixed search quality* — every accelerated
//! configuration is asserted to produce bit-identical results to the naive
//! reference before its timing is reported:
//!
//! 1. **Energy-evaluation rate** — one annealing run on the ISP backbone,
//!    naive vs cached, reporting energy-evals/sec, the
//!    `circuits.shortest_path_calls` counts (the ≥5× reduction target),
//!    the relay-layer hit rate (`cache_hit_rate`), and the outcome-memo
//!    hit rate (`outcome_hit_rate`).
//! 2. **Pipeline wall clock** — the Fig 10(d)-style inter-DC simulation at
//!    a fixed iteration budget, cache off vs on (the ≥2× speedup target),
//!    plus slots/sec.
//! 3. **Multi-chain scaling** — N independently-seeded chains run
//!    sequentially vs through [`anneal_parallel`], same best-of result.
//!
//! Output is a flat JSON object so the CI smoke job can grep a single key
//! against the checked-in baseline without a JSON parser.

use crate::scale::{net_by_name, workload_for, Scale};
use owan_core::{
    anneal_parallel_pooled, anneal_with_cache, chain_seed, default_topology, AnnealConfig,
    AnnealResult, CircuitBuildConfig, CoreTelemetry, EnergyCache, EnergyCacheStats, EnergyContext,
    Profiler, RateAssignConfig, SchedulingPolicy, Topology, Transfer,
};
use owan_obs::Recorder;
use owan_scope::{ScopeConfig, ScopeRecorder};
use owan_sim::runner::{run_engine, run_engine_profiled, EngineKind, RunnerConfig};
use owan_sim::sim::SimResult;
use owan_sim::SimConfig;
use std::time::Instant;

/// Everything one benchmark run measured. Field names match the JSON keys.
#[derive(Debug, Clone)]
pub struct AnnealBenchReport {
    /// Scale label ("quick" or "full").
    pub scale: String,
    /// Git commit the benchmark binary was built from (short hash, or
    /// `"unknown"` outside a git checkout) — perf numbers without a commit
    /// are not comparable across time.
    pub commit: String,
    /// Annealing iterations per run.
    pub iterations: usize,
    /// Chains used in the multi-chain measurement.
    pub chains: usize,
    /// CPU cores visible to the benchmark (`available_parallelism`).
    /// `chains_speedup` below 1.0 is expected when this is 1: the scoped
    /// threads only add spawn overhead on a single core.
    pub cores: usize,
    /// Naive single-run wall time, seconds (ISP).
    pub naive_wall_s: f64,
    /// Naive energy evaluations per second.
    pub naive_evals_per_s: f64,
    /// Naive `circuits.shortest_path_calls`.
    pub naive_shortest_path_calls: u64,
    /// Cached single-run wall time, seconds (ISP).
    pub fast_wall_s: f64,
    /// Cached energy evaluations per second.
    pub fast_evals_per_s: f64,
    /// Cached `circuits.shortest_path_calls`.
    pub fast_shortest_path_calls: u64,
    /// `naive_shortest_path_calls / fast_shortest_path_calls`.
    pub shortest_path_reduction: f64,
    /// `naive_wall_s / fast_wall_s` for the single run.
    pub eval_speedup: f64,
    /// Relay-layer hit rate over the cached run:
    /// `(relay_hits + relay_relaxed_hits) / relay lookups`. This is the
    /// rate of the cache layer that actually amortizes the expensive work
    /// (`RegenGraph` + Yen per desired link) — an annealing walk rarely
    /// revisits whole topologies, so the outcome memo alone cannot carry
    /// the fast path.
    pub cache_hit_rate: f64,
    /// Outcome-memo hit rate over the cached run's evaluations (whole
    /// revisited topologies answered without Algorithm 3).
    pub outcome_hit_rate: f64,
    /// Fig 10(d)-style pipeline wall, cache off, seconds (inter-DC).
    pub pipeline_naive_wall_s: f64,
    /// Same pipeline with the cache on.
    pub pipeline_fast_wall_s: f64,
    /// `pipeline_naive_wall_s / pipeline_fast_wall_s`.
    pub pipeline_speedup: f64,
    /// Same pipeline (cache on) with telemetry enabled but the flight
    /// recorder off, seconds (best of 3).
    pub pipeline_obs_wall_s: f64,
    /// Same pipeline with telemetry and the flight recorder both
    /// attached, seconds (best of 3).
    pub pipeline_scope_wall_s: f64,
    /// `pipeline_scope_wall_s / pipeline_obs_wall_s - 1` — the flight
    /// recorder's own enabled-path overhead on top of telemetry
    /// (fraction; the target is < 0.05).
    pub scope_overhead: f64,
    /// Same pipeline with telemetry and the region profiler attached,
    /// seconds (best of 3).
    pub pipeline_prof_wall_s: f64,
    /// `pipeline_prof_wall_s / pipeline_obs_wall_s - 1` — the profiler's
    /// enabled-path overhead on top of telemetry (fraction; the target is
    /// < 0.05, recorded alongside `scope_overhead`).
    pub prof_overhead: f64,
    /// Slots simulated by the pipeline.
    pub pipeline_slots: usize,
    /// Slots per second with the cache on.
    pub pipeline_slots_per_s: f64,
    /// Wall time of the N chains run back to back, seconds.
    pub chains_seq_wall_s: f64,
    /// Wall time of the same N chains through `anneal_parallel`.
    pub chains_par_wall_s: f64,
    /// `chains_seq_wall_s / chains_par_wall_s`.
    pub chains_speedup: f64,
    /// Summed per-chain busy time inside the parallel run, seconds
    /// (from the `anneal.parallel.busy_ns` counter).
    pub chains_busy_s: f64,
    /// `chains_busy_s / chains_par_wall_s` — how many chains were alive
    /// per wall second. Near `chains` means the spawn/join window was
    /// fully overlapped (whether or not the hardware ran them
    /// concurrently); below it, spawn latency or skew left gaps.
    pub chains_concurrency: f64,
    /// `chains_speedup / min(chains, cores)` — achieved fraction of the
    /// hardware speedup ceiling. On a single core the ceiling is 1× and
    /// this directly reads off the spawn/scheduling tax behind a 0.95×
    /// "speedup"; on real parallel hardware it reads off scaling loss.
    pub chains_utilization: f64,
    /// Cache-miss attribution from the cached single run, one count per
    /// [`owan_core::MissReason`] slug (evaluation-level; sums to the
    /// outcome-miss total).
    pub miss_by_reason: [(&'static str, u64); 7],
    /// The dominant attributed miss cause (slug) and its count.
    pub miss_dominant: (String, u64),
    /// Comparability caveats baked into the report itself (e.g. a
    /// multi-chain scaling measurement taken on a single core, where
    /// `chains_speedup` reads pool overhead rather than parallelism).
    /// Serialized so a report can never silently claim numbers its own
    /// run conditions undermine.
    pub warnings: Vec<String>,
}

/// Builds the single-run annealing fixture on a named network: the energy
/// context inputs and the initial topology.
fn anneal_fixture(net_name: &str, scale: &Scale) -> (owan_topo::Network, Vec<Transfer>, Topology) {
    let net = net_by_name(net_name);
    let reqs = workload_for(&net, 1.0, None, scale);
    let transfers: Vec<Transfer> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| Transfer::from_request(i, r))
        .collect();
    let initial = if net.static_topology.total_links() > 0 {
        net.static_topology.clone()
    } else {
        default_topology(&net.plant)
    };
    (net, transfers, initial)
}

/// One observed annealing run; returns the result, wall seconds, and the
/// counter snapshot values `(evals, shortest_path_calls, cache_hits)`.
fn timed_anneal(
    net: &owan_topo::Network,
    transfers: &[Transfer],
    initial: &Topology,
    config: &AnnealConfig,
    cache: Option<&mut EnergyCache>,
) -> (AnnealResult, f64, u64, u64, u64) {
    let fiber_dist = net.plant.fiber_distance_matrix();
    let ctx = EnergyContext {
        plant: &net.plant,
        fiber_dist: &fiber_dist,
        transfers,
        policy: SchedulingPolicy::ShortestJobFirst,
        slot_len_s: 300.0,
        circuit_config: CircuitBuildConfig::default(),
        rate_config: RateAssignConfig::default(),
        prof: Profiler::disabled(),
    };
    let recorder = Recorder::enabled();
    let telemetry = CoreTelemetry::new(&recorder);
    let start = Instant::now();
    let result = anneal_with_cache(&ctx, initial, config, cache, &telemetry);
    let wall = start.elapsed().as_secs_f64();
    let snap = recorder.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let evals = counter("anneal.cache_hit") + counter("anneal.cache_miss");
    (
        result,
        wall,
        evals,
        counter("circuits.shortest_path_calls"),
        counter("anneal.cache_hit"),
    )
}

/// Runs the Fig 10(d)-style inter-DC pipeline at a fixed iteration budget
/// and returns `(result, wall_s)`.
fn timed_pipeline(scale: &Scale, use_cache: bool) -> (SimResult, f64) {
    let net = net_by_name("interdc");
    let reqs = workload_for(&net, 1.0, None, scale);
    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: scale.slot_len_s,
            max_slots: 2_000,
            ..Default::default()
        },
        anneal_iterations: scale.anneal_iterations,
        seed: scale.seed,
        anneal_use_cache: use_cache,
        ..Default::default()
    };
    let start = Instant::now();
    let res = run_engine(EngineKind::Owan, &net, &reqs, &cfg);
    (res, start.elapsed().as_secs_f64())
}

/// The same pipeline as [`timed_pipeline`] (cache on) with the obs
/// recorder enabled and, when `scoped`, the flight recorder attached on
/// top — isolates the scope's own enabled-path overhead from the
/// telemetry recorder's at fixed search quality. `profiled` attaches the
/// region profiler instead, isolating *its* enabled-path overhead the
/// same way.
fn timed_pipeline_observed(scale: &Scale, scoped: bool, profiled: bool) -> (SimResult, f64) {
    let net = net_by_name("interdc");
    let reqs = workload_for(&net, 1.0, None, scale);
    let cfg = RunnerConfig {
        sim: SimConfig {
            slot_len_s: scale.slot_len_s,
            max_slots: 2_000,
            ..Default::default()
        },
        anneal_iterations: scale.anneal_iterations,
        seed: scale.seed,
        anneal_use_cache: true,
        ..Default::default()
    };
    let recorder = Recorder::enabled();
    let scope = if scoped {
        ScopeRecorder::enabled(ScopeConfig::default())
    } else {
        ScopeRecorder::disabled()
    };
    let prof = if profiled {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };
    let start = Instant::now();
    let res = run_engine_profiled(
        EngineKind::Owan,
        &net,
        &reqs,
        &cfg,
        &recorder,
        &scope,
        &prof,
    );
    (res, start.elapsed().as_secs_f64())
}

/// The short git commit hash of the working tree, or `"unknown"` when git
/// or the checkout is unavailable (e.g. a source tarball build).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Asserts two simulation runs produced identical plans (same throughput
/// trajectory and same per-transfer completions).
fn assert_same_sim(a: &SimResult, b: &SimResult) {
    assert_eq!(a.slots, b.slots, "slot counts differ");
    assert_eq!(
        a.throughput_series, b.throughput_series,
        "throughput series differ"
    );
    let key = |r: &SimResult| -> Vec<(usize, Option<f64>)> {
        r.completions
            .iter()
            .map(|c| (c.id, c.completion_s))
            .collect()
    };
    assert_eq!(key(a), key(b), "completions differ");
}

/// Runs the full benchmark. `reps` single-anneal repetitions are measured
/// and the fastest wall is kept (reduces scheduler noise; counters are
/// identical across reps by determinism). `workers` is the evaluation-pool
/// budget for the multi-chain measurement: `None` sizes it to the machine,
/// `Some(w)` pins it (the plans are identical either way — only wall
/// clock moves).
pub fn bench_anneal(
    scale: &Scale,
    scale_label: &str,
    chains: usize,
    workers: Option<usize>,
) -> AnnealBenchReport {
    let iterations = scale.anneal_iterations;
    let config = AnnealConfig {
        max_iterations: iterations,
        seed: scale.seed,
        ..Default::default()
    };
    let (net, transfers, initial) = anneal_fixture("isp", scale);

    // --- single-run evaluation rate, naive vs cached (ISP) ---
    let reps = 3;
    let mut naive: Option<(AnnealResult, f64, u64, u64)> = None;
    let mut fast: Option<(AnnealResult, f64, u64, u64, f64)> = None;
    let mut fast_stats = EnergyCacheStats::default();
    for _ in 0..reps {
        let (res, wall, evals, sp, _) = timed_anneal(&net, &transfers, &initial, &config, None);
        naive = match naive {
            Some(prev) if prev.1 <= wall => Some(prev),
            _ => Some((res, wall, evals, sp)),
        };
    }
    for _ in 0..reps {
        let mut cache = EnergyCache::new();
        let (res, wall, evals, sp, hits) =
            timed_anneal(&net, &transfers, &initial, &config, Some(&mut cache));
        // Counters are identical across reps by determinism, so any rep's
        // stats stand for the kept one.
        fast_stats = cache.stats;
        let outcome_rate = if evals > 0 {
            hits as f64 / evals as f64
        } else {
            0.0
        };
        fast = match fast {
            Some(prev) if prev.1 <= wall => Some(prev),
            _ => Some((res, wall, evals, sp, outcome_rate)),
        };
    }
    let (naive_res, naive_wall, naive_evals, naive_sp) = naive.expect("reps >= 1");
    let (fast_res, fast_wall, fast_evals, fast_sp, outcome_hit_rate) = fast.expect("reps >= 1");
    // The headline hit rate is the relay layer's — the layer that
    // amortizes the RegenGraph/Yen work the fast path exists to avoid.
    let relay_lookups =
        fast_stats.relay_hits + fast_stats.relay_relaxed_hits + fast_stats.relay_misses;
    let cache_hit_rate = if relay_lookups > 0 {
        (fast_stats.relay_hits + fast_stats.relay_relaxed_hits) as f64 / relay_lookups as f64
    } else {
        0.0
    };
    let attributed: u64 = fast_stats.miss_by_reason.iter().sum();
    assert_eq!(
        attributed, fast_stats.outcome_misses,
        "per-reason miss counters must account for every outcome miss"
    );
    assert_eq!(
        naive_res.topology, fast_res.topology,
        "cached anneal diverged from naive"
    );
    assert_eq!(naive_res.energy_gbps(), fast_res.energy_gbps());
    assert_eq!(naive_evals, fast_evals, "same search, same evaluations");

    // --- pipeline speedup at fixed quality (inter-DC) ---
    let (pipe_naive, pipeline_naive_wall_s) = timed_pipeline(scale, false);
    let (pipe_fast, pipeline_fast_wall_s) = timed_pipeline(scale, true);
    assert_same_sim(&pipe_naive, &pipe_fast);
    // Observability must not perturb: both instrumented runs' plans are
    // asserted identical before overheads are reported. Best-of-3 walls —
    // the quick-scale pipeline finishes in ~0.1 s, so single shots are
    // too noisy to compare.
    let mut pipeline_obs_wall_s = f64::INFINITY;
    let mut pipeline_scope_wall_s = f64::INFINITY;
    let mut pipeline_prof_wall_s = f64::INFINITY;
    for _ in 0..3 {
        let (pipe_obs, obs_wall) = timed_pipeline_observed(scale, false, false);
        assert_same_sim(&pipe_fast, &pipe_obs);
        let (pipe_scope, scope_wall) = timed_pipeline_observed(scale, true, false);
        assert_same_sim(&pipe_fast, &pipe_scope);
        let (pipe_prof, prof_wall) = timed_pipeline_observed(scale, false, true);
        assert_same_sim(&pipe_fast, &pipe_prof);
        pipeline_obs_wall_s = pipeline_obs_wall_s.min(obs_wall);
        pipeline_scope_wall_s = pipeline_scope_wall_s.min(scope_wall);
        pipeline_prof_wall_s = pipeline_prof_wall_s.min(prof_wall);
    }

    // --- multi-chain scaling (ISP) ---
    let fiber_dist = net.plant.fiber_distance_matrix();
    let ctx = EnergyContext {
        plant: &net.plant,
        fiber_dist: &fiber_dist,
        transfers: &transfers,
        policy: SchedulingPolicy::ShortestJobFirst,
        slot_len_s: 300.0,
        circuit_config: CircuitBuildConfig::default(),
        rate_config: RateAssignConfig::default(),
        prof: Profiler::disabled(),
    };
    // Both sides of the scaling comparison carry an enabled recorder —
    // the parallel run needs one for its busy counters, and a telemetry
    // mismatch would otherwise bill the recorder's per-iteration cost to
    // the pool.
    // Rounds per side of the scaling comparison; min wall wins.
    const SCALING_ROUNDS: usize = 3;
    let seq_recorder = Recorder::enabled();
    let seq_telemetry = CoreTelemetry::new(&seq_recorder);
    // The parallel run carries an enabled recorder so the spawn-to-join
    // wall and summed per-chain busy counters come from the measured run
    // itself (the recorder costs two counter adds and 2N clock reads).
    let par_recorder = Recorder::enabled();
    let par_telemetry = CoreTelemetry::new(&par_recorder);
    // Each side takes the best of `SCALING_ROUNDS` walls, with the sides
    // interleaved inside each round: on a busy or thermally throttled box
    // the min over repeats is the least-biased estimate of true cost, and
    // interleaving keeps a slow drift from landing entirely on one side.
    // The chains are deterministic, so every round computes the identical
    // result.
    let mut chains_seq_wall_s = f64::INFINITY;
    let mut chains_par_wall_s = f64::INFINITY;
    let mut seq_best: Option<AnnealResult> = None;
    let mut par_opt: Option<AnnealResult> = None;
    for _round in 0..SCALING_ROUNDS {
        let start = Instant::now();
        let mut round_best: Option<AnnealResult> = None;
        for i in 0..chains {
            let cfg = AnnealConfig {
                seed: chain_seed(config.seed, i),
                ..config
            };
            let mut cache = EnergyCache::new();
            let r = anneal_with_cache(&ctx, &initial, &cfg, Some(&mut cache), &seq_telemetry);
            round_best = match round_best {
                Some(b) if r.energy_gbps() <= b.energy_gbps() => Some(b),
                _ => Some(r),
            };
        }
        chains_seq_wall_s = chains_seq_wall_s.min(start.elapsed().as_secs_f64());
        seq_best = round_best;

        let mut par_caches: Vec<EnergyCache> = if config.use_cache {
            (0..chains).map(|_| EnergyCache::new()).collect()
        } else {
            Vec::new()
        };
        let start = Instant::now();
        let par = anneal_parallel_pooled(
            &ctx,
            &initial,
            &config,
            chains,
            &mut par_caches,
            workers,
            &par_telemetry,
        );
        chains_par_wall_s = chains_par_wall_s.min(start.elapsed().as_secs_f64());
        par_opt = Some(par);
    }
    let par = par_opt.expect("SCALING_ROUNDS >= 1");
    let par_snap = par_recorder.snapshot();
    let par_counter = |name: &str| par_snap.counters.get(name).copied().unwrap_or(0);
    // The recorder accumulated over all rounds; report per-round values so
    // chains_busy_s stays on the same scale as chains_par_wall_s.
    let chains_wall_ns = par_counter("anneal.parallel.wall_ns") / SCALING_ROUNDS as u64;
    let chains_busy_ns = par_counter("anneal.parallel.busy_ns") / SCALING_ROUNDS as u64;
    let seq_best = seq_best.expect("chains >= 1");
    assert_eq!(
        seq_best.topology, par.topology,
        "parallel best-of diverged from sequential best-of"
    );
    assert_eq!(seq_best.energy_gbps(), par.energy_gbps());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chains_speedup = chains_seq_wall_s / chains_par_wall_s.max(1e-9);
    let mut warnings = Vec::new();
    if cores == 1 && chains > 1 {
        warnings.push(format!(
            "multi-chain scaling measured with {chains} chains on 1 core: \
             chains_speedup reads pool overhead, not parallelism"
        ));
    }
    AnnealBenchReport {
        scale: scale_label.to_string(),
        commit: git_commit(),
        iterations,
        chains,
        cores,
        naive_wall_s: naive_wall,
        naive_evals_per_s: naive_evals as f64 / naive_wall.max(1e-9),
        naive_shortest_path_calls: naive_sp,
        fast_wall_s: fast_wall,
        fast_evals_per_s: fast_evals as f64 / fast_wall.max(1e-9),
        fast_shortest_path_calls: fast_sp,
        shortest_path_reduction: naive_sp as f64 / (fast_sp as f64).max(1.0),
        eval_speedup: naive_wall / fast_wall.max(1e-9),
        cache_hit_rate,
        outcome_hit_rate,
        pipeline_naive_wall_s,
        pipeline_fast_wall_s,
        pipeline_speedup: pipeline_naive_wall_s / pipeline_fast_wall_s.max(1e-9),
        pipeline_obs_wall_s,
        pipeline_scope_wall_s,
        scope_overhead: pipeline_scope_wall_s / pipeline_obs_wall_s.max(1e-9) - 1.0,
        pipeline_prof_wall_s,
        prof_overhead: pipeline_prof_wall_s / pipeline_obs_wall_s.max(1e-9) - 1.0,
        pipeline_slots: pipe_fast.slots,
        pipeline_slots_per_s: pipe_fast.slots as f64 / pipeline_fast_wall_s.max(1e-9),
        chains_seq_wall_s,
        chains_par_wall_s,
        chains_speedup,
        chains_busy_s: chains_busy_ns as f64 / 1e9,
        chains_concurrency: chains_busy_ns as f64 / (chains_wall_ns as f64).max(1.0),
        chains_utilization: chains_speedup / chains.min(cores).max(1) as f64,
        miss_by_reason: fast_stats.miss_reasons(),
        miss_dominant: fast_stats
            .dominant_miss_cause()
            .map_or(("none".to_string(), 0), |(slug, n)| (slug.to_string(), n)),
        warnings,
    }
}

impl AnnealBenchReport {
    /// Serializes as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let mut kv = |key: &str, val: String| {
            s.push_str(&format!("  \"{key}\": {val},\n"));
        };
        kv("scale", format!("\"{}\"", self.scale));
        kv("commit", format!("\"{}\"", self.commit));
        kv("iterations", self.iterations.to_string());
        kv("chains", self.chains.to_string());
        kv("cores", self.cores.to_string());
        kv("naive_wall_s", format!("{:.6}", self.naive_wall_s));
        kv(
            "naive_evals_per_s",
            format!("{:.2}", self.naive_evals_per_s),
        );
        kv(
            "naive_shortest_path_calls",
            self.naive_shortest_path_calls.to_string(),
        );
        kv("fast_wall_s", format!("{:.6}", self.fast_wall_s));
        kv("fast_evals_per_s", format!("{:.2}", self.fast_evals_per_s));
        kv(
            "fast_shortest_path_calls",
            self.fast_shortest_path_calls.to_string(),
        );
        kv(
            "shortest_path_reduction",
            format!("{:.2}", self.shortest_path_reduction),
        );
        kv("eval_speedup", format!("{:.2}", self.eval_speedup));
        kv("cache_hit_rate", format!("{:.4}", self.cache_hit_rate));
        kv("outcome_hit_rate", format!("{:.4}", self.outcome_hit_rate));
        kv(
            "pipeline_naive_wall_s",
            format!("{:.6}", self.pipeline_naive_wall_s),
        );
        kv(
            "pipeline_fast_wall_s",
            format!("{:.6}", self.pipeline_fast_wall_s),
        );
        kv("pipeline_speedup", format!("{:.2}", self.pipeline_speedup));
        kv(
            "pipeline_obs_wall_s",
            format!("{:.6}", self.pipeline_obs_wall_s),
        );
        kv(
            "pipeline_scope_wall_s",
            format!("{:.6}", self.pipeline_scope_wall_s),
        );
        kv("scope_overhead", format!("{:.4}", self.scope_overhead));
        kv(
            "pipeline_prof_wall_s",
            format!("{:.6}", self.pipeline_prof_wall_s),
        );
        kv("prof_overhead", format!("{:.4}", self.prof_overhead));
        kv("pipeline_slots", self.pipeline_slots.to_string());
        kv(
            "pipeline_slots_per_s",
            format!("{:.2}", self.pipeline_slots_per_s),
        );
        kv(
            "chains_seq_wall_s",
            format!("{:.6}", self.chains_seq_wall_s),
        );
        kv(
            "chains_par_wall_s",
            format!("{:.6}", self.chains_par_wall_s),
        );
        kv("chains_speedup", format!("{:.2}", self.chains_speedup));
        kv("chains_busy_s", format!("{:.6}", self.chains_busy_s));
        kv(
            "chains_concurrency",
            format!("{:.2}", self.chains_concurrency),
        );
        kv(
            "chains_utilization",
            format!("{:.2}", self.chains_utilization),
        );
        for (slug, n) in self.miss_by_reason {
            kv(&format!("cache_miss_{slug}"), n.to_string());
        }
        // One line per warning; double quotes inside a warning would break
        // the line-oriented readers, so they are normalized away.
        let warnings = self
            .warnings
            .iter()
            .map(|w| format!("\"{}\"", w.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ");
        kv("warnings", format!("[{warnings}]"));
        kv("miss_dominant", format!("\"{}\"", self.miss_dominant.0));
        let last = format!("  \"miss_dominant_count\": {}\n", self.miss_dominant.1);
        s.push_str(&last);
        s.push('}');
        s.push('\n');
        s
    }
}

/// Extracts a numeric value from a flat JSON object by key. Intentionally
/// minimal — the baseline file is machine-written by this module.
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts a string value from a flat JSON object by key (same minimal
/// contract as [`json_number`]).
pub fn json_string(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Compares a fresh report against a checked-in baseline: fails when the
/// fresh energy-evaluation rate regresses more than `tolerance` (fraction)
/// below the baseline's. The baseline's `scale` must match the report's —
/// evals/s at different network/workload sizes are not commensurable, so
/// a cross-scale comparison would make the floor arbitrary. Returns a
/// human-readable summary on success.
pub fn check_against_baseline(
    report: &AnnealBenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    let base_scale = json_string(baseline_json, "scale").ok_or("baseline is missing scale")?;
    if base_scale != report.scale {
        return Err(format!(
            "scale mismatch: report is \"{}\" but baseline is \"{base_scale}\" — \
             regenerate the baseline at the same scale",
            report.scale
        ));
    }
    let base = json_number(baseline_json, "fast_evals_per_s")
        .ok_or("baseline is missing fast_evals_per_s")?;
    let fresh = report.fast_evals_per_s;
    let floor = base * (1.0 - tolerance);
    if fresh < floor {
        return Err(format!(
            "fast_evals_per_s regressed: {fresh:.1} < {floor:.1} \
             (baseline {base:.1}, tolerance {:.0}%)",
            tolerance * 100.0
        ));
    }
    let mut summary = format!(
        "fast_evals_per_s {fresh:.1} within {:.0}% of baseline {base:.1}",
        tolerance * 100.0
    );
    // Core-count mismatch does not fail the check (evals/s is single-
    // threaded) but makes chain-scaling keys incomparable — say so.
    if let Some(base_cores) = json_number(baseline_json, "cores") {
        if base_cores as usize != report.cores {
            summary.push_str(&format!(
                "; warning: baseline ran on {} cores, this run on {} — \
                 chain-scaling keys are not comparable",
                base_cores as usize, report.cores
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_check() {
        let report = AnnealBenchReport {
            scale: "quick".into(),
            commit: "abc1234".into(),
            iterations: 10,
            chains: 2,
            cores: 1,
            naive_wall_s: 1.0,
            naive_evals_per_s: 100.0,
            naive_shortest_path_calls: 1_000,
            fast_wall_s: 0.25,
            fast_evals_per_s: 400.0,
            fast_shortest_path_calls: 100,
            shortest_path_reduction: 10.0,
            eval_speedup: 4.0,
            cache_hit_rate: 0.75,
            outcome_hit_rate: 0.05,
            pipeline_naive_wall_s: 2.0,
            pipeline_fast_wall_s: 1.0,
            pipeline_speedup: 2.0,
            pipeline_obs_wall_s: 1.01,
            pipeline_scope_wall_s: 1.02,
            scope_overhead: 0.02,
            pipeline_prof_wall_s: 1.03,
            prof_overhead: 0.02,
            pipeline_slots: 6,
            pipeline_slots_per_s: 6.0,
            chains_seq_wall_s: 1.0,
            chains_par_wall_s: 0.5,
            chains_speedup: 2.0,
            chains_busy_s: 0.9,
            chains_concurrency: 1.8,
            chains_utilization: 2.0,
            miss_by_reason: [
                ("cold", 40),
                ("flush", 2),
                ("class_collision", 1),
                ("partial_candidate_list", 0),
                ("boundary_guard", 3),
                ("membership_crossing", 0),
                ("capacity", 0),
            ],
            miss_dominant: ("cold".into(), 40),
            warnings: vec!["multi-chain scaling measured with 2 chains on 1 core".into()],
        };
        let json = report.to_json();
        assert_eq!(json_number(&json, "fast_evals_per_s"), Some(400.0));
        assert_eq!(json_number(&json, "chains_speedup"), Some(2.0));
        assert_eq!(json_number(&json, "pipeline_slots"), Some(6.0));
        assert_eq!(json_string(&json, "scale").as_deref(), Some("quick"));
        assert_eq!(json_string(&json, "commit").as_deref(), Some("abc1234"));
        assert_eq!(json_number(&json, "prof_overhead"), Some(0.02));
        assert_eq!(json_number(&json, "chains_concurrency"), Some(1.8));
        assert_eq!(json_number(&json, "cache_hit_rate"), Some(0.75));
        assert_eq!(json_number(&json, "outcome_hit_rate"), Some(0.05));
        assert_eq!(json_number(&json, "cache_miss_cold"), Some(40.0));
        assert_eq!(json_number(&json, "cache_miss_class_collision"), Some(1.0));
        assert_eq!(json_number(&json, "cache_miss_boundary_guard"), Some(3.0));
        assert!(
            json.contains("\"warnings\": [\"multi-chain scaling"),
            "warnings must serialize as a row:\n{json}"
        );
        assert_eq!(json_number(&json, "miss_dominant_count"), Some(40.0));
        assert_eq!(json_string(&json, "miss_dominant").as_deref(), Some("cold"));

        assert!(check_against_baseline(&report, &json, 0.3).is_ok());
        let mut slower = report.clone();
        slower.fast_evals_per_s = 100.0;
        assert!(check_against_baseline(&slower, &json, 0.3).is_err());

        // A baseline taken at a different scale is rejected outright,
        // even when the rate would pass the floor.
        let mut other_scale = report.clone();
        other_scale.scale = "full".into();
        let err = check_against_baseline(&other_scale, &json, 0.3).unwrap_err();
        assert!(err.contains("scale mismatch"), "{err}");

        // A core-count mismatch still passes but carries a warning — the
        // chain-scaling keys stop being comparable, the eval rate doesn't.
        let mut other_cores = report.clone();
        other_cores.cores = 8;
        let ok = check_against_baseline(&other_cores, &json, 0.3).unwrap();
        assert!(ok.contains("warning"), "{ok}");
        assert!(ok.contains("8"), "{ok}");
    }

    #[test]
    fn bench_smoke_tiny() {
        // A minutes-free smoke of the full measurement path.
        let scale = Scale {
            duration_s: 900.0,
            max_requests: 8,
            anneal_iterations: 15,
            ..Scale::quick()
        };
        let report = bench_anneal(&scale, "tiny", 2, Some(2));
        assert!(report.naive_shortest_path_calls > 0);
        if report.cores == 1 {
            assert!(
                !report.warnings.is_empty(),
                "a 1-core multi-chain report must carry a warning row"
            );
        }
        assert!(
            report.cache_hit_rate >= 0.0 && report.cache_hit_rate <= 1.0,
            "relay hit rate out of range: {}",
            report.cache_hit_rate
        );
        assert!(report.fast_shortest_path_calls > 0);
        let attributed: u64 = report.miss_by_reason.iter().map(|&(_, n)| n).sum();
        assert!(
            attributed > 0,
            "a fresh cache must record attributed misses"
        );
        assert_eq!(
            report.miss_dominant.1,
            report.miss_by_reason.iter().map(|&(_, n)| n).max().unwrap()
        );
        assert!(report.chains_busy_s > 0.0, "busy counter did not record");
        assert!(report.chains_concurrency > 0.0);
        assert!(
            report.shortest_path_reduction >= 1.0,
            "cache can only remove shortest-path work, got {}",
            report.shortest_path_reduction
        );
        assert!(report.pipeline_slots > 0);
    }
}
