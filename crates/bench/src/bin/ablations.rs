//! Ablations of the design choices DESIGN.md calls out (beyond the paper's
//! own Figure 10 microbenchmarks):
//!
//! 1. **Annealing seed** — current topology vs a random topology, at equal
//!    iteration budgets (the paper argues current-seeding converges faster
//!    and minimizes optical churn, §3.2/§5.4);
//! 2. **Starvation guard** `t̂` — sweep the promotion threshold;
//! 3. **Relay candidates** — how many regenerator-graph paths the circuit
//!    builder tries per circuit before reducing link capacity.
//!
//! Usage: `cargo run --release -p owan-bench --bin ablations [-- --quick]`

use owan_bench::scale::{net_by_name, workload_for, Scale};
use owan_core::{
    anneal, build_topology, random_topology, AnnealConfig, CircuitBuildConfig, EnergyContext,
    RateAssignConfig, SchedulingPolicy, Transfer,
};
use owan_optical::{FiberPlant, OpticalParams};
use owan_sim::metrics::{self, SizeBin};
use owan_sim::runner::{run_engine, EngineKind, RunnerConfig};
use owan_sim::SimConfig;

fn main() {
    let scale = Scale::from_args();
    seed_ablation(&scale);
    starvation_ablation(&scale);
    relay_candidate_ablation(&scale);
}

/// Ablation 1: SA seeded from the current topology vs from random, plus
/// the optical churn (link distance) each choice implies.
fn seed_ablation(scale: &Scale) {
    println!("# Ablation 1 — annealing seed: current topology vs random");
    println!("network,iters,seed_from,energy_gbps,churn_links");
    for name in ["internet2", "interdc"] {
        let net = net_by_name(name);
        let reqs = workload_for(&net, 1.0, None, scale);
        let transfers: Vec<Transfer> = reqs
            .iter()
            .take(60)
            .enumerate()
            .map(|(i, r)| Transfer::from_request(i, r))
            .collect();
        let fd = net.plant.fiber_distance_matrix();
        let ctx = EnergyContext {
            plant: &net.plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: scale.slot_len_s,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        // Average over several annealing seeds: single-seed comparisons
        // are dominated by luck at small iteration budgets.
        const SEEDS: [u64; 4] = [3, 9, 27, 81];
        for iters in [25usize, 100, 400] {
            let current = net.static_topology.clone();
            let mut sums = [(0.0f64, 0u32); 2]; // (energy, churn) for current/random
            for seed in SEEDS {
                let cfg = AnnealConfig {
                    max_iterations: iters,
                    seed,
                    ..Default::default()
                };
                let from_current = anneal(&ctx, &current, &cfg);
                sums[0].0 += from_current.energy_gbps();
                sums[0].1 += from_current.topology.link_distance(&current);
                let random = random_topology(&net.plant, seed);
                let from_random = anneal(&ctx, &random, &cfg);
                sums[1].0 += from_random.energy_gbps();
                sums[1].1 += from_random.topology.link_distance(&current);
            }
            let k = SEEDS.len() as f64;
            println!(
                "{name},{iters},current,{:.1},{:.1}",
                sums[0].0 / k,
                sums[0].1 as f64 / k
            );
            println!(
                "{name},{iters},random,{:.1},{:.1}",
                sums[1].0 / k,
                sums[1].1 as f64 / k
            );
        }
    }
}

/// Ablation 2: the starvation guard threshold `t̂` (§3.2). Small values
/// promote starved transfers aggressively (fairness), large values defer
/// to pure SJF (mean completion).
fn starvation_ablation(scale: &Scale) {
    println!("# Ablation 2 — starvation guard threshold");
    println!("threshold,avg_completion_s,p95_completion_s,max_completion_s");
    let net = net_by_name("interdc");
    let reqs = workload_for(&net, 1.5, None, scale);
    for threshold in [1u32, 3, 10, u32::MAX] {
        let mut cfg = RunnerConfig {
            sim: SimConfig {
                slot_len_s: scale.slot_len_s,
                max_slots: 2_000,
                ..Default::default()
            },
            anneal_iterations: scale.anneal_iterations,
            ..Default::default()
        };
        cfg.starvation_threshold = threshold;
        let res = run_engine(EngineKind::Owan, &net, &reqs, &cfg);
        let xs = metrics::completion_times(&res, SizeBin::All);
        let max = xs.iter().fold(0.0f64, |a, &b| a.max(b));
        println!(
            "{},{:.0},{:.0},{max:.0}",
            if threshold == u32::MAX {
                "off".into()
            } else {
                threshold.to_string()
            },
            metrics::mean(&xs),
            metrics::percentile(&xs, 95.0),
        );
    }
}

/// Ablation 3: relay candidates tried per circuit before giving up — how
/// much achieved capacity does the k-shortest relay search buy? The
/// shipped networks are generously provisioned, so this uses a stressed
/// plant: a long line of sites with scarce wavelengths and regenerators,
/// where the single best relay path quickly wavelength-blocks and
/// alternates must be found.
fn relay_candidate_ablation(scale: &Scale) {
    println!("# Ablation 3 — relay candidates per circuit (stressed plant)");
    println!("k,achieved_links,desired_links");
    let _ = scale;

    let params = OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 2,
        optical_reach_km: 1_100.0,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    let n = 8;
    for i in 0..n {
        plant.add_site(&format!("L{i}"), 6, 2);
    }
    // A line plus a sparse upper "express" row of fibers.
    for i in 0..n - 1 {
        plant.add_fiber(i, i + 1, 500.0);
    }
    plant.add_fiber(0, 2, 950.0);
    plant.add_fiber(2, 5, 1_050.0);
    plant.add_fiber(5, 7, 980.0);
    let fd = plant.fiber_distance_matrix();

    // Long links that all need relays and compete for the same middle
    // fibers and regenerators.
    let mut desired = owan_core::Topology::empty(n);
    desired.add_links(0, 5, 2);
    desired.add_links(1, 6, 2);
    desired.add_links(2, 7, 2);
    desired.add_links(0, 7, 1);

    for k in [1usize, 2, 4, 8] {
        let built = build_topology(
            &plant,
            &desired,
            &fd,
            &CircuitBuildConfig {
                relay_candidates: k,
            },
        );
        println!(
            "{k},{},{}",
            built.achieved.total_links(),
            desired.total_links()
        );
    }
}
