//! Regenerates Figure 10(b): carried throughput during an update,
//! consistent (Dionysus-extended) vs one-shot.
//!
//! Usage: `cargo run --release -p owan-bench --bin fig10b [-- --quick]`

use owan_bench::micro::print_fig10b;
use owan_bench::{fig10b, Scale};

fn main() {
    let scale = Scale::from_args();
    let fig = fig10b(&scale);
    print_fig10b(&fig);
}
