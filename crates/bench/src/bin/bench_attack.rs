//! Regenerates `BENCH_attack.json` — the adversarial-traffic recovery
//! benchmark — and optionally gates on a checked-in baseline.
//!
//! ```text
//! bench_attack [--quick] [--iters N] [--out FILE] [--check BASELINE]
//! ```
//!
//! Runs coremelt and sustained flash-crowd attacks on the 40-site ISP
//! backbone under the annealed Owan engine and the fixed-topology
//! MaxFlow and SWAN baselines, auditing every slot with the oracle
//! invariant checkers, and prints a flat JSON report with
//! time-to-restore-90% and residual-loss keys per cell. `--out` writes
//! the report to a file; `--check` compares against a baseline file and
//! exits 1 on mismatch. Every number is a seeded deterministic
//! simulation result, so the check is exact — no tolerance knob.

use owan_bench::attack::{bench_attack, check_attack_against_baseline};
use owan_bench::Scale;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let label = if args.iter().any(|a| a == "--quick") {
        "quick"
    } else {
        "full"
    };

    eprintln!(
        "bench_attack: scale {label}, {} anneal iters",
        scale.anneal_iterations
    );
    let report = bench_attack(&scale, label);
    let json = report.to_json();
    print!("{json}");

    if let Some(path) = arg_value(&args, "--out") {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("bench_attack: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("bench_attack: wrote {path}");
    }

    if let Some(baseline_path) = arg_value(&args, "--check") {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("bench_attack: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        match check_attack_against_baseline(&report, &baseline) {
            Ok(summary) => {
                eprintln!("bench_attack: OK, recovery matrix matches {baseline_path}:");
                eprint!("{summary}");
            }
            Err(msg) => {
                eprintln!("bench_attack: FAIL: {msg}");
                std::process::exit(1);
            }
        }
    }
}
