//! Regenerates Figure 9 (deadline-constrained traffic).
//!
//! Usage: `cargo run --release -p owan-bench --bin fig9 -- --net internet2|isp|interdc [--quick]`

use owan_bench::figs::{fig9, print_fig9};
use owan_bench::scale::{net_by_name, Scale};

fn main() {
    let scale = Scale::from_args();
    let net = net_by_name(&Scale::net_arg());
    let points = fig9(&net, &scale);
    print_fig9(&net, &points);
}
