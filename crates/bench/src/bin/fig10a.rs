//! Regenerates Figure 10(a): simulated annealing vs greedy separate-layer
//! optimization.
//!
//! Usage: `cargo run --release -p owan-bench --bin fig10a [-- --quick]`

use owan_bench::micro::print_fig10a;
use owan_bench::{fig10a, Scale};

fn main() {
    let scale = Scale::from_args();
    let (sa, greedy) = fig10a(&scale);
    print_fig10a(&sa, &greedy);
}
