//! Regenerates Figure 8 (makespan improvement) for all three networks —
//! and, since the runs are shared, also prints the Figure 7 tables.
//!
//! Usage: `cargo run --release -p owan-bench --bin fig8 [-- --quick]`

use owan_bench::figs::{fig7, fig8, print_fig7, print_fig8};
use owan_bench::scale::{net_by_name, Scale};

fn main() {
    let scale = Scale::from_args();
    for name in ["internet2", "isp", "interdc"] {
        let net = net_by_name(name);
        let f7 = fig7(&net, &scale);
        print_fig7(&net, &f7);
        let f8 = fig8(&f7);
        print_fig8(&net, &f8);
    }
}
