//! Regenerates the §5.1 simulator-vs-testbed validation table.
//!
//! Usage: `cargo run --release -p owan-bench --bin validation [-- --quick]`

use owan_bench::micro::print_validation;
use owan_bench::{validation, Scale};

fn main() {
    let scale = Scale::from_args();
    let reports = validation(&scale);
    print_validation(&reports);
}
