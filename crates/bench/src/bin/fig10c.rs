//! Regenerates Figure 10(c): breakdown of gains (rate / +routing /
//! +topology).
//!
//! Usage: `cargo run --release -p owan-bench --bin fig10c [-- --quick]`

use owan_bench::micro::print_fig10c;
use owan_bench::{fig10c, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = fig10c(&scale);
    print_fig10c(&rows);
}
