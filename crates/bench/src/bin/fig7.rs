//! Regenerates Figure 7 (transfer completion time, deadline-unconstrained).
//!
//! Usage: `cargo run --release -p owan-bench --bin fig7 -- --net internet2|isp|interdc [--quick]`

use owan_bench::figs::{fig7, print_fig7};
use owan_bench::scale::{net_by_name, Scale};

fn main() {
    let scale = Scale::from_args();
    let net = net_by_name(&Scale::net_arg());
    let points = fig7(&net, &scale);
    print_fig7(&net, &points);
}
