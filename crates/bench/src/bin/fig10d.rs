//! Regenerates Figure 10(d): impact of the simulated-annealing running
//! time on the result quality.
//!
//! Usage: `cargo run --release -p owan-bench --bin fig10d [-- --quick]`

use owan_bench::micro::print_fig10d;
use owan_bench::{fig10d, Scale};

fn main() {
    let scale = Scale::from_args();
    let rows = fig10d(&scale);
    print_fig10d(&rows);
}
