//! Regenerates `BENCH_anneal.json` — the annealing fast-path benchmark —
//! and optionally gates on a checked-in baseline.
//!
//! ```text
//! bench_anneal [--quick] [--iters N] [--chains N] [--workers N]
//!              [--out FILE] [--check BASELINE] [--history FILE]
//!              [--no-history]
//! ```
//!
//! `--out` writes the fresh report (default: print to stdout only) and,
//! unless `--no-history` is given, appends a one-line summary record to
//! `BENCH_history.jsonl` next to it (`--history FILE` overrides the
//! path) — the append-only log `owan-cli perf diff` runs bisect against.
//! `--check` compares the fresh report's `fast_evals_per_s` against the
//! baseline file and exits 1 when it regressed more than the tolerance
//! (30%, overridable via the `BENCH_TOLERANCE` env var, e.g. `0.5`).
//! The baseline's `scale` must match the run's (`BENCH_anneal.json` is
//! the full-scale baseline, `BENCH_anneal_quick.json` the quick-scale
//! one CI gates on) — rates across scales are not comparable.
//! Run under `--release`; debug builds cross-check every cached circuit
//! build against a naive rebuild and time nothing meaningful.

use owan_bench::diff::history_record;
use owan_bench::perf::{bench_anneal, check_against_baseline};
use owan_bench::Scale;
use std::io::Write as _;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args();
    let label = if args.iter().any(|a| a == "--quick") {
        "quick"
    } else {
        "full"
    };
    let chains = arg_value(&args, "--chains")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    // Evaluation-pool budget for the multi-chain measurement: default
    // machine-sized, `--workers 1` forces the inline (no-spawn) path.
    let workers: Option<usize> = arg_value(&args, "--workers").and_then(|v| v.parse().ok());

    eprintln!(
        "bench_anneal: scale {label}, {} iters, {chains} chains, {} workers",
        scale.anneal_iterations,
        workers.map_or("auto".to_string(), |w| w.to_string()),
    );
    let report = bench_anneal(&scale, label, chains, workers);
    let json = report.to_json();
    print!("{json}");

    if let Some(path) = arg_value(&args, "--out") {
        // A 1-core multi-chain run's scaling keys read pool overhead, not
        // parallelism — such a report must carry its own caveat or it is
        // not worth checking in.
        if report.cores == 1 && report.chains > 1 && report.warnings.is_empty() {
            eprintln!(
                "bench_anneal: refusing to write {path}: cores==1 with {} chains \
                 but the report has no warning row",
                report.chains
            );
            std::process::exit(2);
        }
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("bench_anneal: cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("bench_anneal: wrote {path}");

        // Append-only history: one summary line per run, next to the
        // report unless --history points elsewhere.
        if !args.iter().any(|a| a == "--no-history") {
            let history_path = arg_value(&args, "--history").unwrap_or_else(|| {
                let dir = std::path::Path::new(&path)
                    .parent()
                    .filter(|p| !p.as_os_str().is_empty())
                    .map_or_else(String::new, |p| format!("{}/", p.display()));
                format!("{dir}BENCH_history.jsonl")
            });
            let ts = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs());
            let line = history_record(&report, ts);
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&history_path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            match appended {
                Ok(()) => eprintln!("bench_anneal: appended {history_path}"),
                Err(e) => eprintln!("bench_anneal: cannot append {history_path}: {e}"),
            }
        }
    }

    if let Some(baseline_path) = arg_value(&args, "--check") {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("bench_anneal: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let tolerance = std::env::var("BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.3f64);
        match check_against_baseline(&report, &baseline, tolerance) {
            Ok(msg) => eprintln!("bench_anneal: OK: {msg}"),
            Err(msg) => {
                eprintln!("bench_anneal: FAIL: {msg}");
                std::process::exit(1);
            }
        }
    }
}
