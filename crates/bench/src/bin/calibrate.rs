//! Quick timing calibration used while sizing the figure harnesses.

use owan_sim::runner::{run_engine, EngineKind, RunnerConfig};
use owan_sim::SimConfig;
use owan_topo::{inter_dc, internet2_testbed, isp_backbone};
use owan_workload::{generate, WorkloadConfig};
use std::time::Instant;

fn main() {
    for (name, net, wl) in [
        (
            "internet2",
            internet2_testbed(),
            WorkloadConfig::testbed(1.0, 42),
        ),
        ("isp", isp_backbone(7), WorkloadConfig::simulation(1.0, 42)),
        (
            "interdc",
            inter_dc(7),
            WorkloadConfig::simulation(1.0, 42).with_hotspots(),
        ),
    ] {
        let reqs = generate(&net, &wl);
        println!("{name}: {} transfers", reqs.len());
        for kind in [EngineKind::Owan, EngineKind::MaxFlow, EngineKind::Swan] {
            let cfg = RunnerConfig {
                sim: SimConfig {
                    slot_len_s: 300.0,
                    max_slots: 300,
                    ..Default::default()
                },
                anneal_iterations: 150,
                ..Default::default()
            };
            let t0 = Instant::now();
            let res = run_engine(kind, &net, &reqs, &cfg);
            println!(
                "  {kind:?}: {:.1}s wall, slots={}, completed={}",
                t0.elapsed().as_secs_f64(),
                res.slots,
                res.all_completed()
            );
        }
    }
}
