//! Benchmark harness regenerating every table and figure of the Owan
//! paper's evaluation (§5).
//!
//! Each `fig*` binary in `src/bin/` drives the pipelines in this library
//! and prints the same rows/series the corresponding figure plots. The
//! Criterion benches in `benches/` time the algorithm kernels and run
//! small-scale versions of the same pipelines.
//!
//! Every pipeline takes a [`Scale`]: `Scale::full()` reproduces the
//! paper's parameters (two-hour workloads, five-minute slots);
//! `Scale::quick()` shrinks everything for smoke tests and CI.

pub mod attack;
pub mod diff;
pub mod figs;
pub mod micro;
pub mod perf;
pub mod scale;

pub use attack::{bench_attack, check_attack_against_baseline, AttackBenchReport, AttackBenchRow};
pub use diff::{history_record, perf_diff, PerfDiff, PhaseDelta, Verdict};
pub use figs::{fig7, fig8, fig9};
pub use micro::{fig10a, fig10b, fig10c, fig10d, validation};
pub use perf::{bench_anneal, check_against_baseline, git_commit, AnnealBenchReport};
pub use scale::{net_by_name, workload_for, Scale};
