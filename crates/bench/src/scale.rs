//! Experiment scaling and shared setup.

use owan_core::TransferRequest;
use owan_topo::{inter_dc, internet2_testbed, isp_backbone, Network};
use owan_workload::{generate, WorkloadConfig};

/// Scale of an experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Workload arrival window, seconds.
    pub duration_s: f64,
    /// Slot length, seconds.
    pub slot_len_s: f64,
    /// Owan annealing iterations per slot.
    pub anneal_iterations: usize,
    /// Cap on generated transfers (`usize::MAX` = none).
    pub max_requests: usize,
    /// Traffic load factors swept by Figures 7/8/10(c).
    pub loads: Vec<f64>,
    /// Deadline factors σ swept by Figure 9.
    pub deadline_factors: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's parameters: two-hour workloads, five-minute slots,
    /// λ ∈ {0.5, 1.0, 1.5, 2.0}, σ ∈ {2 … 50}.
    pub fn full() -> Self {
        Scale {
            duration_s: 7_200.0,
            slot_len_s: 300.0,
            anneal_iterations: 150,
            max_requests: usize::MAX,
            loads: vec![0.5, 1.0, 1.5, 2.0],
            deadline_factors: vec![2.0, 5.0, 10.0, 20.0, 35.0, 50.0],
            seed: 42,
        }
    }

    /// A minutes-scale smoke version of the same pipelines.
    pub fn quick() -> Self {
        Scale {
            duration_s: 1_800.0,
            slot_len_s: 300.0,
            anneal_iterations: 60,
            max_requests: 40,
            loads: vec![0.5, 1.0],
            deadline_factors: vec![5.0, 20.0],
            seed: 42,
        }
    }

    /// Picks full or quick from a `--quick` flag; `--iters N` overrides
    /// the annealing iteration budget.
    pub fn from_args() -> Self {
        let mut scale = if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        };
        let args: Vec<String> = std::env::args().collect();
        if let Some(i) = args.iter().position(|a| a == "--iters") {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                scale.anneal_iterations = n;
            }
        }
        scale
    }

    /// The `--net <name>` argument, defaulting to `internet2`.
    pub fn net_arg() -> String {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--net")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "internet2".into())
    }
}

/// Constructs an evaluation network by name: `internet2` (the 9-site
/// testbed), `isp` (~40 sites), or `interdc` (~25 sites).
pub fn net_by_name(name: &str) -> Network {
    match name {
        "internet2" => internet2_testbed(),
        "isp" => isp_backbone(7),
        "interdc" => inter_dc(7),
        other => panic!("unknown network '{other}' (use internet2 | isp | interdc)"),
    }
}

/// Generates the §5.1 workload for a network at the given load factor,
/// with deadlines drawn from `U[T, σT]` when `deadline_factor` is set.
pub fn workload_for(
    network: &Network,
    load: f64,
    deadline_factor: Option<f64>,
    scale: &Scale,
) -> Vec<TransferRequest> {
    let mut cfg = if network.name == "internet2" {
        WorkloadConfig::testbed(load, scale.seed)
    } else {
        WorkloadConfig::simulation(load, scale.seed)
    };
    cfg.duration_s = scale.duration_s;
    if network.name == "interdc" {
        cfg = cfg.with_hotspots();
    }
    if let Some(sigma) = deadline_factor {
        cfg = cfg.with_deadlines(scale.slot_len_s, sigma);
    }
    let mut reqs = generate(network, &cfg);
    reqs.truncate(scale.max_requests);
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nets_resolve() {
        assert_eq!(net_by_name("internet2").plant.site_count(), 9);
        assert_eq!(net_by_name("isp").plant.site_count(), 40);
        assert_eq!(net_by_name("interdc").plant.site_count(), 24);
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn unknown_net_panics() {
        net_by_name("nope");
    }

    #[test]
    fn workload_respects_scale_cap() {
        let net = net_by_name("internet2");
        let scale = Scale::quick();
        let reqs = workload_for(&net, 1.0, None, &scale);
        assert!(reqs.len() <= scale.max_requests);
        assert!(!reqs.is_empty());
    }

    #[test]
    fn deadline_factor_passes_through() {
        let net = net_by_name("internet2");
        let scale = Scale::quick();
        let reqs = workload_for(&net, 1.0, Some(10.0), &scale);
        assert!(reqs.iter().all(|r| r.deadline_s.is_some()));
    }
}
