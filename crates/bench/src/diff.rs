//! Differential perf reports: `owan-cli perf diff A.json B.json`.
//!
//! Compares two `bench_anneal` JSON reports phase by phase, with
//! noise-aware thresholds — short quick-scale walls jitter by tens of
//! percent run to run, so each metric carries both a relative threshold
//! and an absolute noise floor below which differences are ignored.
//! Reports at different scales are refused outright (the workloads are
//! not commensurable); different core counts only warn, but mark the
//! chain-scaling rows untrustworthy.
//!
//! Also home to the append-only history record `bench_anneal --out`
//! drops into `BENCH_history.jsonl`: one line of JSON per benchmark run,
//! stamped with commit/cores/scale so regressions can be bisected
//! across time without re-running old commits.

use crate::perf::{json_number, json_string, AnnealBenchReport};

/// Which direction of change counts as a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Wall times: more seconds in B than A is a regression.
    LowerIsBetter,
    /// Rates: fewer evals/slots per second in B than A is a regression.
    HigherIsBetter,
}

/// One metric's verdict in a differential report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Moved in the good direction past the threshold.
    Improved,
    /// Moved in the bad direction past the threshold.
    Regressed,
    /// Within the threshold, or below the noise floor.
    Unchanged,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Unchanged => "~",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct PhaseDelta {
    /// JSON key of the metric.
    pub key: &'static str,
    /// Value in report A (the baseline side).
    pub a: f64,
    /// Value in report B (the candidate side).
    pub b: f64,
    /// `b / a` (1.0 when `a` is zero).
    pub ratio: f64,
    /// Which way is better.
    pub direction: Direction,
    /// The noise-aware verdict.
    pub verdict: Verdict,
}

/// A full differential report between two benchmark JSON files.
#[derive(Debug, Clone)]
pub struct PerfDiff {
    /// Scale label both reports share.
    pub scale: String,
    /// Commits of the two reports (may be "unknown").
    pub commit_a: String,
    /// See `commit_a`.
    pub commit_b: String,
    /// Per-metric verdicts, in the fixed metric order.
    pub rows: Vec<PhaseDelta>,
    /// Non-fatal comparability caveats (core-count mismatch, metrics
    /// missing from an older report, ...).
    pub warnings: Vec<String>,
}

/// `(key, direction, absolute noise floor)` for every compared metric.
/// Walls below their floor in *both* reports are too short to compare —
/// scheduler jitter dominates. Overhead fractions use an absolute floor
/// in fraction points for the same reason.
const METRICS: &[(&str, Direction, f64)] = &[
    ("naive_wall_s", Direction::LowerIsBetter, 0.02),
    ("fast_wall_s", Direction::LowerIsBetter, 0.02),
    ("naive_evals_per_s", Direction::HigherIsBetter, 0.0),
    ("fast_evals_per_s", Direction::HigherIsBetter, 0.0),
    ("pipeline_naive_wall_s", Direction::LowerIsBetter, 0.02),
    ("pipeline_fast_wall_s", Direction::LowerIsBetter, 0.02),
    ("pipeline_obs_wall_s", Direction::LowerIsBetter, 0.02),
    ("pipeline_scope_wall_s", Direction::LowerIsBetter, 0.02),
    ("pipeline_prof_wall_s", Direction::LowerIsBetter, 0.02),
    ("pipeline_slots_per_s", Direction::HigherIsBetter, 0.0),
    ("chains_seq_wall_s", Direction::LowerIsBetter, 0.02),
    ("chains_par_wall_s", Direction::LowerIsBetter, 0.02),
];

/// Overhead fractions compared by absolute delta, not ratio: they sit
/// near zero where ratios explode. `(key, regression floor in points)`,
/// calibrated at [`REFERENCE_THRESHOLD`]: a wider `--threshold` widens
/// these floors proportionally, so a CI job that tolerates 150% wall
/// jitter doesn't gate on ±3-point overhead jitter.
const OVERHEADS: &[(&str, f64)] = &[("scope_overhead", 0.02), ("prof_overhead", 0.02)];

/// The relative threshold the overhead floors are calibrated against.
/// Thresholds below it keep the calibrated floor (never twitchier).
const REFERENCE_THRESHOLD: f64 = 0.15;

/// The chain-scaling keys that stop being comparable across core counts.
const CORE_SENSITIVE: &[&str] = &["chains_seq_wall_s", "chains_par_wall_s"];

/// Compares two benchmark reports. `threshold` is the relative change
/// (fraction, e.g. `0.15`) a metric must move in the bad direction to be
/// called a regression; improvements use the same bar. Returns `Err` when
/// the reports are not comparable at all (different scales, missing
/// scale keys, unparseable files).
pub fn perf_diff(a_json: &str, b_json: &str, threshold: f64) -> Result<PerfDiff, String> {
    let scale_a = json_string(a_json, "scale").ok_or("report A is missing \"scale\"")?;
    let scale_b = json_string(b_json, "scale").ok_or("report B is missing \"scale\"")?;
    if scale_a != scale_b {
        return Err(format!(
            "scale mismatch: A is \"{scale_a}\", B is \"{scale_b}\" — \
             reports at different scales are not comparable"
        ));
    }
    let mut warnings = Vec::new();
    let cores_a = json_number(a_json, "cores");
    let cores_b = json_number(b_json, "cores");
    let cores_differ = match (cores_a, cores_b) {
        (Some(a), Some(b)) if a != b => {
            warnings.push(format!(
                "core-count mismatch: A ran on {} cores, B on {} — \
                 chain-scaling rows marked unchanged",
                a as usize, b as usize
            ));
            true
        }
        _ => false,
    };

    let mut rows = Vec::new();
    for &(key, direction, floor) in METRICS {
        let (Some(a), Some(b)) = (json_number(a_json, key), json_number(b_json, key)) else {
            warnings.push(format!("\"{key}\" missing from one report — skipped"));
            continue;
        };
        let ratio = if a.abs() > f64::EPSILON { b / a } else { 1.0 };
        let below_noise = a < floor && b < floor;
        let incomparable = cores_differ && CORE_SENSITIVE.contains(&key);
        let verdict = if below_noise || incomparable {
            Verdict::Unchanged
        } else {
            let worse = match direction {
                Direction::LowerIsBetter => ratio > 1.0 + threshold,
                Direction::HigherIsBetter => ratio < 1.0 - threshold,
            };
            let better = match direction {
                Direction::LowerIsBetter => ratio < 1.0 - threshold,
                Direction::HigherIsBetter => ratio > 1.0 + threshold,
            };
            if worse {
                Verdict::Regressed
            } else if better {
                Verdict::Improved
            } else {
                Verdict::Unchanged
            }
        };
        rows.push(PhaseDelta {
            key,
            a,
            b,
            ratio,
            direction,
            verdict,
        });
    }
    for &(key, floor) in OVERHEADS {
        let (Some(a), Some(b)) = (json_number(a_json, key), json_number(b_json, key)) else {
            warnings.push(format!("\"{key}\" missing from one report — skipped"));
            continue;
        };
        let floor = floor * (threshold / REFERENCE_THRESHOLD).max(1.0);
        let delta = b - a;
        let verdict = if delta > floor {
            Verdict::Regressed
        } else if delta < -floor {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        };
        rows.push(PhaseDelta {
            key,
            a,
            b,
            ratio: if a.abs() > f64::EPSILON { b / a } else { 1.0 },
            direction: Direction::LowerIsBetter,
            verdict,
        });
    }

    let unknown = || "unknown".to_string();
    Ok(PerfDiff {
        scale: scale_a,
        commit_a: json_string(a_json, "commit").unwrap_or_else(unknown),
        commit_b: json_string(b_json, "commit").unwrap_or_else(unknown),
        rows,
        warnings,
    })
}

impl PerfDiff {
    /// True when any metric regressed past its threshold — the `--gate`
    /// exit condition.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Renders the human-readable diff table.
    pub fn format_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff ({}): A={} B={}",
            self.scale, self.commit_a, self.commit_b
        );
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>8}  verdict",
            "metric", "A", "B", "B/A"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:>12.4} {:>12.4} {:>7.2}x  {}",
                r.key,
                r.a,
                r.b,
                r.ratio,
                r.verdict.label()
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        out
    }
}

/// One line of `BENCH_history.jsonl`: the durable subset of a benchmark
/// report, stamped for later bisection. Single-line JSON, newline
/// included, so the file stays `jsonl` under blind appends.
pub fn history_record(report: &AnnealBenchReport, unix_ts: u64) -> String {
    format!(
        concat!(
            "{{\"ts\": {}, \"commit\": \"{}\", \"scale\": \"{}\", ",
            "\"cores\": {}, \"chains\": {}, \"iterations\": {}, ",
            "\"fast_evals_per_s\": {:.2}, \"eval_speedup\": {:.2}, ",
            "\"cache_hit_rate\": {:.4}, ",
            "\"pipeline_fast_wall_s\": {:.6}, \"pipeline_speedup\": {:.2}, ",
            "\"scope_overhead\": {:.4}, \"prof_overhead\": {:.4}, ",
            "\"chains_speedup\": {:.2}, \"chains_utilization\": {:.2}, ",
            "\"miss_dominant\": \"{}\", \"miss_dominant_count\": {}}}\n"
        ),
        unix_ts,
        report.commit,
        report.scale,
        report.cores,
        report.chains,
        report.iterations,
        report.fast_evals_per_s,
        report.eval_speedup,
        report.cache_hit_rate,
        report.pipeline_fast_wall_s,
        report.pipeline_speedup,
        report.scope_overhead,
        report.prof_overhead,
        report.chains_speedup,
        report.chains_utilization,
        report.miss_dominant.0,
        report.miss_dominant.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scale: &str, fast_wall: f64, cores: usize) -> String {
        format!(
            concat!(
                "{{\n\"scale\": \"{scale}\",\n\"commit\": \"aaa\",\n",
                "\"cores\": {cores},\n",
                "\"naive_wall_s\": 1.0,\n\"fast_wall_s\": {fw:.6},\n",
                "\"naive_evals_per_s\": 100.0,\n\"fast_evals_per_s\": {rate:.2},\n",
                "\"pipeline_naive_wall_s\": 2.0,\n\"pipeline_fast_wall_s\": 1.0,\n",
                "\"pipeline_obs_wall_s\": 1.0,\n\"pipeline_scope_wall_s\": 1.02,\n",
                "\"pipeline_prof_wall_s\": 1.01,\n\"pipeline_slots_per_s\": 6.0,\n",
                "\"chains_seq_wall_s\": 1.0,\n\"chains_par_wall_s\": 0.5,\n",
                "\"scope_overhead\": 0.02,\n\"prof_overhead\": 0.01\n}}\n"
            ),
            scale = scale,
            cores = cores,
            fw = fast_wall,
            rate = 100.0 / fast_wall,
        )
    }

    #[test]
    fn identical_reports_are_unchanged() {
        let a = sample("quick", 0.25, 4);
        let diff = perf_diff(&a, &a, 0.15).unwrap();
        assert!(!diff.has_regressions());
        assert!(diff.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
        assert!(diff.warnings.is_empty());
    }

    #[test]
    fn slowdown_past_threshold_regresses_and_gates() {
        let a = sample("quick", 0.25, 4);
        let b = sample("quick", 0.50, 4); // 2x slower fast path
        let diff = perf_diff(&a, &b, 0.15).unwrap();
        assert!(diff.has_regressions());
        let row = diff.rows.iter().find(|r| r.key == "fast_wall_s").unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
        // The derived rate regressed too (HigherIsBetter direction).
        let rate = diff
            .rows
            .iter()
            .find(|r| r.key == "fast_evals_per_s")
            .unwrap();
        assert_eq!(rate.verdict, Verdict::Regressed);
        // And the reverse diff reads as an improvement, not a regression.
        let rev = perf_diff(&b, &a, 0.15).unwrap();
        assert!(!rev.has_regressions());
        assert!(rev.rows.iter().any(|r| r.verdict == Verdict::Improved));
    }

    #[test]
    fn wide_threshold_widens_the_overhead_floor_proportionally() {
        let a = sample("quick", 0.25, 4);
        // prof_overhead 0.01 → 0.06: past the calibrated 0.02 floor, but
        // inside the 0.2-point floor a 1.5 threshold buys.
        let b =
            sample("quick", 0.25, 4).replace("\"prof_overhead\": 0.01", "\"prof_overhead\": 0.06");
        let tight = perf_diff(&a, &b, 0.15).unwrap();
        let row = |d: &PerfDiff| {
            d.rows
                .iter()
                .find(|r| r.key == "prof_overhead")
                .unwrap()
                .verdict
        };
        assert_eq!(row(&tight), Verdict::Regressed);
        let wide = perf_diff(&a, &b, 1.5).unwrap();
        assert_eq!(row(&wide), Verdict::Unchanged);
        // Sub-reference thresholds keep the calibrated floor instead of
        // shrinking it into the noise.
        let c =
            sample("quick", 0.25, 4).replace("\"prof_overhead\": 0.01", "\"prof_overhead\": 0.025");
        let twitchy = perf_diff(&a, &c, 0.01).unwrap();
        assert_eq!(row(&twitchy), Verdict::Unchanged);
    }

    #[test]
    fn scale_mismatch_is_refused() {
        let a = sample("quick", 0.25, 4);
        let b = sample("full", 0.25, 4);
        let err = perf_diff(&a, &b, 0.15).unwrap_err();
        assert!(err.contains("scale mismatch"), "{err}");
    }

    #[test]
    fn core_mismatch_warns_and_neutralizes_chain_rows() {
        let a = sample("quick", 0.25, 1);
        // Make the chain rows differ wildly; the core mismatch must mask them.
        let b = sample("quick", 0.25, 8)
            .replace("\"chains_par_wall_s\": 0.5", "\"chains_par_wall_s\": 5.0");
        let diff = perf_diff(&a, &b, 0.15).unwrap();
        assert!(!diff.has_regressions());
        assert!(diff.warnings.iter().any(|w| w.contains("core-count")));
        let row = diff
            .rows
            .iter()
            .find(|r| r.key == "chains_par_wall_s")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Unchanged);
    }

    #[test]
    fn missing_keys_skip_with_warning() {
        let a = sample("quick", 0.25, 4);
        let b = a.replace(
            "\"prof_overhead\": 0.01\n",
            "\"prof_overhead_renamed\": 0.01\n",
        );
        let diff = perf_diff(&a, &b, 0.15).unwrap();
        assert!(diff
            .warnings
            .iter()
            .any(|w| w.contains("prof_overhead") && w.contains("skipped")));
        assert!(!diff.rows.iter().any(|r| r.key == "prof_overhead"));
    }

    #[test]
    fn overhead_regression_uses_absolute_points() {
        let a = sample("quick", 0.25, 4);
        let b = a.replace("\"prof_overhead\": 0.01", "\"prof_overhead\": 0.06");
        let diff = perf_diff(&a, &b, 0.15).unwrap();
        let row = diff.rows.iter().find(|r| r.key == "prof_overhead").unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
        // 0.01 -> 0.025 is a 2.5x ratio but only 1.5 points: noise.
        let c = a.replace("\"prof_overhead\": 0.01", "\"prof_overhead\": 0.025");
        let diff = perf_diff(&a, &c, 0.15).unwrap();
        let row = diff.rows.iter().find(|r| r.key == "prof_overhead").unwrap();
        assert_eq!(row.verdict, Verdict::Unchanged);
    }

    #[test]
    fn history_record_is_single_line_jsonl() {
        let report = AnnealBenchReport {
            scale: "quick".into(),
            commit: "abc1234".into(),
            iterations: 10,
            chains: 2,
            cores: 4,
            naive_wall_s: 1.0,
            naive_evals_per_s: 100.0,
            naive_shortest_path_calls: 1_000,
            fast_wall_s: 0.25,
            fast_evals_per_s: 400.0,
            fast_shortest_path_calls: 100,
            shortest_path_reduction: 10.0,
            eval_speedup: 4.0,
            cache_hit_rate: 0.5,
            outcome_hit_rate: 0.05,
            pipeline_naive_wall_s: 2.0,
            pipeline_fast_wall_s: 1.0,
            pipeline_speedup: 2.0,
            pipeline_obs_wall_s: 1.01,
            pipeline_scope_wall_s: 1.02,
            scope_overhead: 0.02,
            pipeline_prof_wall_s: 1.03,
            prof_overhead: 0.02,
            pipeline_slots: 6,
            pipeline_slots_per_s: 6.0,
            chains_seq_wall_s: 1.0,
            chains_par_wall_s: 0.5,
            chains_speedup: 2.0,
            chains_busy_s: 0.9,
            chains_concurrency: 1.8,
            chains_utilization: 2.0,
            miss_by_reason: [
                ("cold", 40),
                ("flush", 0),
                ("class_collision", 0),
                ("partial_candidate_list", 0),
                ("boundary_guard", 0),
                ("membership_crossing", 0),
                ("capacity", 0),
            ],
            miss_dominant: ("cold".into(), 40),
            warnings: Vec::new(),
        };
        let line = history_record(&report, 1_700_000_000);
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1, "must be one line");
        assert_eq!(json_number(&line, "ts"), Some(1_700_000_000.0));
        assert_eq!(json_string(&line, "commit").as_deref(), Some("abc1234"));
        assert_eq!(json_number(&line, "fast_evals_per_s"), Some(400.0));
        assert_eq!(json_number(&line, "cache_hit_rate"), Some(0.5));
        assert_eq!(json_string(&line, "miss_dominant").as_deref(), Some("cold"));
    }
}
