//! Criterion benches for the graph substrate kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use owan_graph::{dijkstra, k_shortest_paths, matching, max_flow, FlowNetwork, Graph};
use std::hint::black_box;

/// Deterministic pseudo-random mesh: `n` nodes on a ring plus chords.
fn mesh(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_undirected_edge(i, (i + 1) % n, 1.0 + (i % 7) as f64);
    }
    for i in 0..n {
        let j = (i * 7 + 3) % n;
        if i != j && !g.has_edge(i, j) {
            g.add_undirected_edge(i, j, 2.0 + (i % 5) as f64);
        }
    }
    g
}

fn bench_dijkstra(c: &mut Criterion) {
    for n in [9, 40, 200] {
        let g = mesh(n);
        c.bench_function(format!("dijkstra/{n}_nodes"), |b| {
            b.iter(|| dijkstra::shortest_paths(black_box(&g), 0))
        });
    }
}

fn bench_yen(c: &mut Criterion) {
    let g = mesh(40);
    c.bench_function("yen/k4_40_nodes", |b| {
        b.iter(|| k_shortest_paths(black_box(&g), 0, 20, 4))
    });
}

fn bench_dinic(c: &mut Criterion) {
    let g = mesh(40);
    c.bench_function("dinic/40_nodes", |b| {
        b.iter(|| {
            let mut net = FlowNetwork::new(g.node_count());
            for e in g.edges() {
                net.add_undirected_edge(e.u, e.v, e.weight);
            }
            max_flow(&mut net, 0, 20)
        })
    });
}

fn bench_blossom(c: &mut Criterion) {
    let g = mesh(60);
    c.bench_function("blossom/60_nodes", |b| {
        b.iter(|| matching::maximum_matching(black_box(&g)))
    });
}

criterion_group!(
    benches,
    bench_dijkstra,
    bench_yen,
    bench_dinic,
    bench_blossom
);
criterion_main!(benches);
