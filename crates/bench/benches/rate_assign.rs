//! Criterion bench for Algorithm 3's rate-assignment step.

use criterion::{criterion_group, criterion_main, Criterion};
use owan_bench::scale::{net_by_name, workload_for, Scale};
use owan_core::{assign_rates, RateAssignConfig, SchedulingPolicy, Transfer};
use std::hint::black_box;

fn bench_rate_assign(c: &mut Criterion) {
    for name in ["internet2", "isp"] {
        let net = net_by_name(name);
        let scale = Scale {
            max_requests: 120,
            ..Scale::quick()
        };
        let transfers: Vec<Transfer> = workload_for(&net, 1.5, None, &scale)
            .iter()
            .enumerate()
            .map(|(i, r)| Transfer::from_request(i, r))
            .collect();
        let theta = net.plant.params().wavelength_capacity_gbps;
        c.bench_function(format!("assign_rates/{name}"), |b| {
            b.iter(|| {
                assign_rates(
                    black_box(&net.static_topology),
                    theta,
                    &transfers,
                    SchedulingPolicy::ShortestJobFirst,
                    300.0,
                    &RateAssignConfig::default(),
                )
            })
        });
    }
}

criterion_group!(benches, bench_rate_assign);
criterion_main!(benches);
