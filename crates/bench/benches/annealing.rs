//! Criterion benches for the Owan optimization kernels: ComputeEnergy
//! (Algorithm 3) and the full simulated-annealing search (Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use owan_bench::scale::{net_by_name, workload_for, Scale};
use owan_core::{
    anneal, compute_energy, AnnealConfig, CircuitBuildConfig, EnergyContext, RateAssignConfig,
    SchedulingPolicy, Transfer,
};
use std::hint::black_box;

fn setup(net_name: &str) -> (owan_topo::Network, Vec<Transfer>, Vec<Vec<f64>>) {
    let net = net_by_name(net_name);
    let scale = Scale {
        max_requests: 60,
        ..Scale::quick()
    };
    let transfers: Vec<Transfer> = workload_for(&net, 1.0, None, &scale)
        .iter()
        .enumerate()
        .map(|(i, r)| Transfer::from_request(i, r))
        .collect();
    let fd = net.plant.fiber_distance_matrix();
    (net, transfers, fd)
}

fn bench_energy(c: &mut Criterion) {
    for name in ["internet2", "interdc"] {
        let (net, transfers, fd) = setup(name);
        let ctx = EnergyContext {
            plant: &net.plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 300.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        c.bench_function(format!("compute_energy/{name}"), |b| {
            b.iter(|| compute_energy(black_box(&ctx), &net.static_topology))
        });
    }
}

fn bench_anneal(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal");
    group.sample_size(10);
    for name in ["internet2", "interdc"] {
        let (net, transfers, fd) = setup(name);
        let ctx = EnergyContext {
            plant: &net.plant,
            fiber_dist: &fd,
            transfers: &transfers,
            policy: SchedulingPolicy::ShortestJobFirst,
            slot_len_s: 300.0,
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            prof: owan_core::Profiler::disabled(),
        };
        let cfg = AnnealConfig {
            max_iterations: 50,
            ..Default::default()
        };
        group.bench_function(format!("50_iters/{name}"), |b| {
            b.iter(|| anneal(black_box(&ctx), &net.static_topology, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy, bench_anneal);
criterion_main!(benches);
