//! Criterion benches for the LP solver on baseline-TE-shaped problems.

use criterion::{criterion_group, criterion_main, Criterion};
use owan_solver::McfProblem;
use std::hint::black_box;

/// A TE-shaped MCF: `links` links, `flows` commodities with 3 paths of 2-4
/// links each.
fn te_problem(links: usize, flows: usize) -> McfProblem {
    let mut p = McfProblem::new((0..links).map(|i| 50.0 + (i % 7) as f64 * 10.0).collect());
    for f in 0..flows {
        let paths: Vec<Vec<usize>> = (0..3)
            .map(|k| {
                let len = 2 + (f + k) % 3;
                (0..len).map(|h| (f * 3 + k * 5 + h * 11) % links).collect()
            })
            .collect();
        p.add_commodity(20.0 + (f % 13) as f64, paths);
    }
    p
}

fn bench_max_throughput(c: &mut Criterion) {
    for (links, flows) in [(26, 40), (64, 150)] {
        let p = te_problem(links, flows);
        c.bench_function(format!("lp_max_throughput/{links}l_{flows}f"), |b| {
            b.iter(|| black_box(&p).max_throughput())
        });
    }
}

fn bench_max_min(c: &mut Criterion) {
    let p = te_problem(26, 40);
    c.bench_function("lp_max_min_fraction/26l_40f", |b| {
        b.iter(|| black_box(&p).max_min_fraction())
    });
}

criterion_group!(benches, bench_max_throughput, bench_max_min);
criterion_main!(benches);
