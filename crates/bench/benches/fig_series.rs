//! Criterion smoke benches for the figure pipelines: tiny-scale versions
//! of the same code paths the `fig*` binaries run at full scale, so
//! `cargo bench` exercises every experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use owan_bench::figs::{fig7, fig8, fig9};
use owan_bench::micro::{fig10b, fig10c};
use owan_bench::scale::{net_by_name, Scale};

fn tiny() -> Scale {
    Scale {
        duration_s: 900.0,
        max_requests: 8,
        anneal_iterations: 30,
        loads: vec![1.0],
        deadline_factors: vec![10.0],
        ..Scale::quick()
    }
}

fn bench_fig_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_pipeline");
    group.sample_size(10);
    let net = net_by_name("internet2");
    group.bench_function("fig7+fig8/internet2_tiny", |b| {
        b.iter(|| {
            let points = fig7(&net, &tiny());
            fig8(&points)
        })
    });
    group.bench_function("fig9/internet2_tiny", |b| b.iter(|| fig9(&net, &tiny())));
    group.bench_function("fig10b/update_timeline", |b| b.iter(|| fig10b(&tiny())));
    group.bench_function("fig10c/ablation_tiny", |b| {
        b.iter(|| {
            fig10c(&Scale {
                loads: vec![1.0],
                ..tiny()
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig_pipelines);
criterion_main!(benches);
