//! Criterion bench for the Dionysus-extended update scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use owan_core::{Allocation, Topology};
use owan_update::{plan_consistent, plan_one_shot, NetworkDelta, UpdateParams};
use std::hint::black_box;

/// A delta touching `n/2` links with paths riding half of them.
fn delta(n: usize) -> NetworkDelta {
    let mut old_t = Topology::empty(n);
    for i in 0..n {
        old_t.add_links(i, (i + 1) % n, 1);
    }
    let mut new_t = Topology::empty(n);
    for i in 0..n {
        if i % 2 == 0 {
            new_t.add_links(i, (i + 1) % n, 1);
        } else {
            new_t.add_links(i, (i + 2) % n, 1);
        }
    }
    let old_a: Vec<Allocation> = (0..n / 2)
        .map(|i| Allocation {
            transfer: i,
            paths: vec![(vec![2 * i, (2 * i + 1) % n], 40.0)],
        })
        .collect();
    let new_a: Vec<Allocation> = (0..n / 2)
        .map(|i| Allocation {
            transfer: i,
            paths: vec![(vec![2 * i, (2 * i + 1) % n], 60.0)],
        })
        .collect();
    NetworkDelta::from_plans(&old_t, &old_a, &new_t, &new_a, 8)
}

fn bench_plans(c: &mut Criterion) {
    for n in [10, 40] {
        let d = delta(n);
        let params = UpdateParams::default();
        c.bench_function(format!("plan_consistent/{n}_sites"), |b| {
            b.iter(|| plan_consistent(black_box(&d), &params))
        });
        c.bench_function(format!("plan_one_shot/{n}_sites"), |b| {
            b.iter(|| plan_one_shot(black_box(&d), &params))
        });
    }
}

criterion_group!(benches, bench_plans);
criterion_main!(benches);
