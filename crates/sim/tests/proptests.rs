//! Property tests for the simulator: volume conservation, completion
//! ordering, determinism, and metric sanity on random workloads.

use owan_core::{SchedulingPolicy, TransferRequest};
use owan_optical::{FiberPlant, OpticalParams};
use owan_sim::metrics::{self, SizeBin};
use owan_sim::runner::{run_engine, EngineKind, RunnerConfig};
use owan_sim::SimConfig;
use owan_topo::Network;
use proptest::prelude::*;

fn ring_network(n: usize) -> Network {
    let mut plant = FiberPlant::new(OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 8,
        ..Default::default()
    });
    for i in 0..n {
        plant.add_site(&format!("S{i}"), 2, 1);
    }
    for i in 0..n {
        plant.add_fiber(i, (i + 1) % n, 200.0);
    }
    let mut topo = owan_core::Topology::empty(n);
    for i in 0..n {
        topo.add_links(i, (i + 1) % n, 1);
    }
    Network {
        name: "ring".into(),
        plant,
        static_topology: topo,
    }
}

fn arb_requests(n_sites: usize) -> impl Strategy<Value = Vec<TransferRequest>> {
    proptest::collection::vec(
        (
            0..n_sites,
            0..n_sites,
            10u32..3_000,
            0u32..10,
            proptest::option::of(5u32..60),
        ),
        1..12,
    )
    .prop_map(move |specs| {
        specs
            .into_iter()
            .filter(|&(s, d, _, _, _)| s != d)
            .map(|(src, dst, vol, arr, dl)| TransferRequest {
                src,
                dst,
                volume_gbits: vol as f64,
                arrival_s: arr as f64 * 100.0,
                deadline_s: dl.map(|x| (arr as f64 * 100.0) + x as f64 * 100.0),
            })
            .collect()
    })
}

fn config() -> RunnerConfig {
    RunnerConfig {
        sim: SimConfig {
            slot_len_s: 100.0,
            max_slots: 500,
            ..Default::default()
        },
        anneal_iterations: 25,
        policy: SchedulingPolicy::ShortestJobFirst,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulation_invariants_hold(reqs in arb_requests(5)) {
        let net = ring_network(5);
        for kind in [EngineKind::Owan, EngineKind::MaxFlow, EngineKind::RoutingRate] {
            let res = run_engine(kind, &net, &reqs, &config());
            prop_assert_eq!(res.completions.len(), reqs.len());
            for (c, r) in res.completions.iter().zip(&reqs) {
                // Completion cannot precede arrival.
                if let Some(ct) = c.completion_s {
                    prop_assert!(ct >= r.arrival_s - 1e-9, "{:?}", kind);
                    prop_assert!(ct <= res.makespan_s + 1e-6);
                }
                // Bytes-by-deadline never exceed the volume.
                prop_assert!(c.gbits_by_deadline <= c.volume_gbits + 1e-6);
                // A transfer that met its deadline delivered everything.
                if c.met_deadline() {
                    prop_assert!(c.gbits_by_deadline >= c.volume_gbits - 1e-3);
                }
            }
            // Connected ring: every transfer eventually completes.
            prop_assert!(res.all_completed(), "{:?} left work undone", kind);
            // Total delivered volume == total requested (throughput series
            // integrates to the workload size).
            let delivered: f64 = res
                .throughput_series
                .iter()
                .map(|(_, gbps)| gbps * 100.0)
                .sum();
            let requested: f64 = reqs.iter().map(|r| r.volume_gbits).sum();
            prop_assert!(
                delivered >= requested - 1e-3,
                "{:?}: delivered {delivered} < requested {requested}",
                kind
            );
        }
    }

    #[test]
    fn simulation_is_deterministic(reqs in arb_requests(5)) {
        let net = ring_network(5);
        let a = run_engine(EngineKind::Owan, &net, &reqs, &config());
        let b = run_engine(EngineKind::Owan, &net, &reqs, &config());
        prop_assert_eq!(a.completions, b.completions);
        prop_assert_eq!(a.throughput_series, b.throughput_series);
    }

    #[test]
    fn metrics_are_consistent(reqs in arb_requests(5)) {
        let net = ring_network(5);
        let res = run_engine(EngineKind::MaxFlow, &net, &reqs, &config());
        let all = metrics::completion_times(&res, SizeBin::All);
        let by_bin: usize = [SizeBin::Small, SizeBin::Middle, SizeBin::Large]
            .iter()
            .map(|&b| metrics::completion_times(&res, b).len())
            .sum();
        prop_assert_eq!(all.len(), by_bin, "bins partition the transfers");
        if !all.is_empty() {
            let mean = metrics::mean(&all);
            let p95 = metrics::percentile(&all, 95.0);
            let max = all.iter().fold(0.0f64, |a, &b| a.max(b));
            prop_assert!(mean <= max + 1e-9);
            prop_assert!(p95 <= max + 1e-9);
            let cdf = metrics::cdf(&all);
            prop_assert_eq!(cdf.last().unwrap().1, 1.0);
        }
        let pct = metrics::pct_deadlines_met(&res, SizeBin::All);
        prop_assert!((0.0..=100.0).contains(&pct));
    }

    #[test]
    fn impairment_never_speeds_completion(reqs in arb_requests(4)) {
        let net = ring_network(4);
        let ideal = run_engine(EngineKind::MaxFlow, &net, &reqs, &config());
        let mut impaired_cfg = config();
        impaired_cfg.sim.rate_efficiency = 0.9;
        let impaired = run_engine(EngineKind::MaxFlow, &net, &reqs, &impaired_cfg);
        // Individual transfers may reorder (freed capacity cascades), but
        // in aggregate impairment cannot speed the workload up.
        let avg = |r: &owan_sim::SimResult| {
            metrics::mean(&metrics::completion_times(r, SizeBin::All))
        };
        prop_assert!(
            avg(&impaired) >= avg(&ideal) * 0.999 - 1e-6,
            "impaired avg {} vs ideal {}",
            avg(&impaired),
            avg(&ideal)
        );
        prop_assert!(impaired.makespan_s >= ideal.makespan_s * 0.999 - 1e-6);
    }
}
