//! The time-slotted fluid flow simulator.
//!
//! Time is divided into slots "much longer than the time to reconfigure the
//! network and adjust sending rates, i.e., a few minutes vs. hundreds or
//! thousands of milliseconds" (§3.1). Each slot the simulator:
//!
//! 1. admits transfers whose arrival time has passed,
//! 2. asks the engine for a [`SlotPlan`](owan_core::SlotPlan),
//! 3. verifies the plan is feasible (no link over capacity),
//! 4. advances every transfer fluidly by its allocated rate, recording
//!    mid-slot completion times and per-deadline byte counts,
//! 5. updates starvation counters (the §3.2 starvation guard's input).
//!
//! The paper validated exactly this style of flow-level simulator against
//! its hardware testbed within 10% (§5.1); [`crate::validate`] reproduces
//! that comparison with an impaired-rate mode.

use crate::telemetry::{at_risk_count, SimTelemetry, SlotTelemetry};
use owan_core::{Profiler, SlotInput, SlotPlan, TrafficEngineer, Transfer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::FiberPlant;
use owan_scope::{path_label, ScopeRecorder, SlotObservation, TransferSlotRow};
use owan_update::{plan_consistent_observed, NetworkDelta, UpdateParams};
use owan_why::{TransferSample, WhyRecorder, WhySlotObservation};
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-9;

/// Transfers whose remaining volume falls below this floor (1e-6 Gb = 125
/// bytes) are counted complete at the end of the slot. LP-based engines
/// leave numerical dust of this order; without the floor a sub-byte
/// residue can starve forever below the allocators' rate thresholds.
const COMPLETION_FLOOR_GBITS: f64 = 1e-6;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Slot length, seconds (paper: five minutes).
    pub slot_len_s: f64,
    /// Hard cap on simulated slots (guards against engines that cannot
    /// drain the workload).
    pub max_slots: usize,
    /// Rate efficiency in `(0, 1]`: fraction of each allocated rate that
    /// is actually delivered. `1.0` is the ideal fluid model; `~0.9`
    /// emulates the testbed's imperfect rate limiting and prefix-splitting
    /// (§5.1 performance validation).
    pub rate_efficiency: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            slot_len_s: 300.0,
            max_slots: 2_000,
            rate_efficiency: 1.0,
        }
    }
}

/// Per-transfer outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// Transfer id (index into the request list).
    pub id: usize,
    /// Total volume, gigabits.
    pub volume_gbits: f64,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Deadline, if any.
    pub deadline_s: Option<f64>,
    /// Completion time (absolute seconds), or `None` if unfinished when
    /// the simulation ended.
    pub completion_s: Option<f64>,
    /// Gigabits delivered before the deadline (equals `volume_gbits` when
    /// the transfer met its deadline; meaningful only if a deadline is set).
    pub gbits_by_deadline: f64,
}

impl CompletionRecord {
    /// Completion time relative to arrival, if finished.
    pub fn completion_time_s(&self) -> Option<f64> {
        self.completion_s.map(|c| c - self.arrival_s)
    }

    /// True if the transfer finished before its deadline.
    pub fn met_deadline(&self) -> bool {
        match (self.completion_s, self.deadline_s) {
            (Some(c), Some(d)) => c <= d + EPS,
            _ => false,
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the engine that produced it.
    pub engine: String,
    /// Per-transfer outcomes, ordered by id.
    pub completions: Vec<CompletionRecord>,
    /// Absolute time the last transfer completed (the *makespan* measured
    /// in Figure 8), or the simulation end if some never finished.
    pub makespan_s: f64,
    /// Total allocated throughput per slot `(slot start, Gbps)` — the
    /// series plotted in Figure 10(a).
    pub throughput_series: Vec<(f64, f64)>,
    /// Slots simulated.
    pub slots: usize,
    /// Per-slot controller telemetry, present when the run was made with
    /// a recording [`Recorder`] (see [`simulate_observed`]).
    pub telemetry: Option<Vec<SlotTelemetry>>,
    /// Set when the engine emitted an infeasible plan: the slot it happened
    /// in and the violated feasibility condition. The run stops at that
    /// slot; transfers still pending are reported unfinished.
    pub plan_error: Option<(usize, PlanError)>,
}

impl SimResult {
    /// True if every transfer completed.
    pub fn all_completed(&self) -> bool {
        self.completions.iter().all(|c| c.completion_s.is_some())
    }
}

/// Why a [`SlotPlan`] failed the feasibility check — a bug in the engine
/// that emitted it, not an operational condition. Fuzz harnesses record it
/// in [`SimResult::plan_error`] instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// An allocation carried a negative rate.
    NegativeRate {
        /// Offending transfer id.
        transfer: usize,
        /// The negative rate, Gbps.
        rate_gbps: f64,
    },
    /// Allocated paths load a link beyond its circuit capacity.
    LinkOverCapacity {
        /// Link endpoints (u < v).
        u: usize,
        /// Link endpoints (u < v).
        v: usize,
        /// Total load crossing the link, Gbps.
        load_gbps: f64,
        /// Link capacity (multiplicity × θ), Gbps.
        capacity_gbps: f64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NegativeRate {
                transfer,
                rate_gbps,
            } => {
                write!(f, "negative rate {rate_gbps} for transfer {transfer}")
            }
            PlanError::LinkOverCapacity {
                u,
                v,
                load_gbps,
                capacity_gbps,
            } => write!(
                f,
                "link ({u},{v}) carries {load_gbps} over capacity {capacity_gbps}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Verifies that a plan does not oversubscribe any link of its topology.
pub fn plan_is_feasible(plan: &SlotPlan, theta: f64) -> Result<(), PlanError> {
    let n = plan.topology.site_count();
    let mut load = vec![0.0f64; n * n];
    for a in &plan.allocations {
        for (path, r) in &a.paths {
            if *r < -EPS {
                return Err(PlanError::NegativeRate {
                    transfer: a.transfer,
                    rate_gbps: *r,
                });
            }
            for w in path.windows(2) {
                load[w[0] * n + w[1]] += r;
                load[w[1] * n + w[0]] += r;
            }
        }
    }
    for u in 0..n {
        for v in u + 1..n {
            let cap = plan.topology.multiplicity(u, v) as f64 * theta;
            if load[u * n + v] > cap + 1e-6 {
                return Err(PlanError::LinkOverCapacity {
                    u,
                    v,
                    load_gbps: load[u * n + v],
                    capacity_gbps: cap,
                });
            }
        }
    }
    Ok(())
}

/// Supplies the plant the engine sees at each slot. The fault-free runs
/// use a static plant; failure runs fold a timeline of events into
/// progressively degraded plants ([`crate::failures`]). Centralizing the
/// slot loop behind this trait keeps the failure path from drifting from
/// the fault-free path.
pub(crate) trait PlantProvider {
    /// Plant presented to the engine for the slot starting at `now_s`.
    fn plant_at(&mut self, slot: usize, now_s: f64) -> &FiberPlant;
}

/// A fixed plant for the whole run.
pub(crate) struct StaticPlant<'a>(pub &'a FiberPlant);

impl PlantProvider for StaticPlant<'_> {
    fn plant_at(&mut self, _slot: usize, _now_s: f64) -> &FiberPlant {
        self.0
    }
}

/// Supplies the engine driving each slot. A fresh instance mid-run models
/// a stateless controller restart (§3.4): the replacement recomputes from
/// the stored plant + transfer set with no memory of its predecessor.
pub(crate) trait EngineSource {
    /// Engine for `slot`. Must be idempotent per slot (repeated calls with
    /// the same slot return the same instance, not a fresh restart).
    fn engine_at(&mut self, slot: usize) -> &mut dyn TrafficEngineer;
}

/// One engine for the whole run.
pub(crate) struct SingleEngine<'a>(pub &'a mut dyn TrafficEngineer);

impl EngineSource for SingleEngine<'_> {
    fn engine_at(&mut self, _slot: usize) -> &mut dyn TrafficEngineer {
        self.0
    }
}

/// Runs `engine` over `requests` on `plant` until every transfer completes
/// (or `max_slots` elapse).
///
/// If the engine ever emits an infeasible plan — a bug in the engine, not
/// an operational condition — the run stops at that slot and reports the
/// violation in [`SimResult::plan_error`], so differential fuzz harnesses
/// can record and minimize the failure instead of aborting.
pub fn simulate(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
) -> SimResult {
    simulate_observed(plant, requests, engine, config, &Recorder::disabled())
}

/// [`simulate`] with telemetry. When `recorder` is enabled the engine
/// gets it attached (via [`TrafficEngineer::set_recorder`]), each slot is
/// timed as a `stage.slot` span, and the result carries one
/// [`SlotTelemetry`] row per slot. The update-scheduling stage is
/// measured by running the consistent planner between consecutive plans
/// purely for telemetry — the idealized simulator still delivers the full
/// allocation, so the emitted `SlotPlan`s and all completion metrics are
/// identical to the unobserved run (the determinism test in
/// `tests/observability.rs` checks exactly this).
pub fn simulate_observed(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    recorder: &Recorder,
) -> SimResult {
    simulate_traced(
        plant,
        requests,
        engine,
        config,
        recorder,
        &ScopeRecorder::disabled(),
    )
}

/// [`simulate_observed`] with a flight recorder attached: per-transfer
/// lifecycle tracking, per-slot flight frames, and the causal span
/// timeline all land on `scope`. With a disabled scope this is exactly
/// [`simulate_observed`] — the slot loop takes the same early-return
/// path and allocates nothing extra.
pub fn simulate_traced(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
) -> SimResult {
    simulate_profiled(
        plant,
        requests,
        engine,
        config,
        recorder,
        scope,
        &Profiler::disabled(),
    )
}

/// [`simulate_traced`] with a region profiler attached on top: the engine
/// gets it via [`TrafficEngineer::set_profiler`], and the slot loop wraps
/// each slot and its telemetry-only update-scheduling pass in `slot` /
/// `update` regions. With a disabled profiler this is exactly
/// [`simulate_traced`] — region opens cost one `Option` check.
#[allow(clippy::too_many_arguments)]
pub fn simulate_profiled(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    prof: &Profiler,
) -> SimResult {
    simulate_explained(
        plant,
        requests,
        engine,
        config,
        recorder,
        scope,
        prof,
        &WhyRecorder::disabled(),
    )
}

/// [`simulate_profiled`] with the tier-4 attribution/SLO collector on
/// top: every slot is fed to `why` (per-transfer rate samples, planning
/// latency, throughput), and a tripped SLO monitor freezes the flight
/// recorder through the existing [`ScopeRecorder::anomaly`] path. With
/// a disabled why recorder this is exactly [`simulate_profiled`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_explained(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    prof: &Profiler,
    why: &WhyRecorder,
) -> SimResult {
    drive_slots(
        plant,
        requests,
        &mut StaticPlant(plant),
        &mut SingleEngine(engine),
        config,
        recorder,
        scope,
        prof,
        why,
    )
}

/// The shared slot loop behind [`simulate_observed`],
/// [`crate::failures::simulate_with_failures_observed`] and
/// [`crate::failures::simulate_with_restarts`]: admission, feasibility
/// gate, fluid delivery, deadline + starvation bookkeeping, telemetry.
/// `base` supplies global parameters (θ, reconfiguration times); the plant
/// each slot's engine actually sees comes from `plants`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_slots(
    base: &FiberPlant,
    requests: &[TransferRequest],
    plants: &mut dyn PlantProvider,
    engines: &mut dyn EngineSource,
    config: &SimConfig,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    prof: &Profiler,
    why: &WhyRecorder,
) -> SimResult {
    assert!(config.rate_efficiency > 0.0 && config.rate_efficiency <= 1.0);
    let scope_on = scope.is_enabled();
    if scope_on {
        scope.begin_run(requests);
    }
    let why_on = why.is_enabled();
    if why_on {
        why.begin_run(requests);
    }
    let theta = base.params().wavelength_capacity_gbps;
    let mut engine_name = engines.engine_at(0).name().to_string();
    let telemetry = recorder.is_enabled().then(|| SimTelemetry::new(recorder));
    let update_params = UpdateParams {
        theta_gbps: theta,
        circuit_time_s: base.params().circuit_reconfig_time_s,
        ..Default::default()
    };
    let mut slot_rows: Vec<SlotTelemetry> = Vec::new();
    let mut prev_plan: Option<SlotPlan> = None;

    let mut transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    let mut records: Vec<CompletionRecord> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| CompletionRecord {
            id,
            volume_gbits: r.volume_gbits,
            arrival_s: r.arrival_s,
            deadline_s: r.deadline_s,
            completion_s: None,
            gbits_by_deadline: 0.0,
        })
        .collect();

    let mut throughput_series = Vec::new();
    let mut makespan_s: f64 = 0.0;
    let mut slots = 0;
    let mut plan_error: Option<(usize, PlanError)> = None;

    for slot in 0..config.max_slots {
        let now = slot as f64 * config.slot_len_s;
        slots = slot + 1;
        let current_plant = plants.plant_at(slot, now);

        // Active = arrived and incomplete.
        let active: Vec<Transfer> = transfers
            .iter()
            .filter(|t| t.arrival_s <= now + EPS && !t.is_complete())
            .cloned()
            .collect();
        let pending_future = transfers
            .iter()
            .any(|t| t.arrival_s > now + EPS && !t.is_complete());
        if active.is_empty() && !pending_future {
            break;
        }
        // A workload stuck on portless endpoints (e.g. sites that died in
        // a failure run) cannot drain; stop when no active transfer can
        // make progress and nothing new will arrive.
        let any_progress_possible = active.iter().any(|t| {
            current_plant.router_ports(t.src) > 0 && current_plant.router_ports(t.dst) > 0
        });
        if !any_progress_possible && !pending_future {
            break;
        }

        let engine = engines.engine_at(slot);
        engine.set_recorder(recorder.clone());
        engine.set_profiler(prof.clone());
        engine_name = engine.name().to_string();
        let slot_region = prof.region("slot");
        let slot_start_ns = recorder.now_ns();
        let slot_span = telemetry
            .as_ref()
            .map(|t| (t.slot_stage.enter(), t.stage_marks()));
        let plan_start_ns = recorder.now_ns();
        let plan = engine.plan_slot(
            current_plant,
            &SlotInput {
                transfers: &active,
                slot_len_s: config.slot_len_s,
                now_s: now,
            },
        );
        let plan_ns = recorder.now_ns().saturating_sub(plan_start_ns);
        if let Err(e) = plan_is_feasible(&plan, theta) {
            scope.anomaly("plan.infeasible", slot);
            plan_error = Some((slot, e));
            break;
        }
        throughput_series.push((now, plan.throughput_gbps));

        // Telemetry-only update scheduling: the idealized simulator does
        // not charge transitions (see [`crate::controller`] for the loop
        // that does), but measuring the consistent planner here lets one
        // run report every controller stage. The plan is dropped after
        // counting; delivery below uses the full allocation either way.
        let update_ops = match (&telemetry, &prev_plan) {
            (Some(t), Some(prev)) => {
                let _region = prof.region("update");
                let delta = NetworkDelta::from_plans(
                    &prev.topology,
                    &prev.allocations,
                    &plan.topology,
                    &plan.allocations,
                    base.params().wavelengths_per_fiber,
                );
                plan_consistent_observed(&delta, &update_params, &t.update)
                    .ops
                    .len()
            }
            _ => 0,
        };

        // Advance transfers.
        let mut got_rate = vec![false; transfers.len()];
        let mut scope_delivered = (scope_on || why_on).then(|| vec![0.0f64; transfers.len()]);
        for alloc in &plan.allocations {
            let rate_alloc = alloc.total_rate();
            let rate = rate_alloc * config.rate_efficiency;
            if rate <= EPS {
                continue;
            }
            let t = &mut transfers[alloc.transfer];
            debug_assert!(!t.is_complete(), "allocation to a finished transfer");
            got_rate[alloc.transfer] = true;
            let remaining_before = t.remaining_gbits;

            let rec = &mut records[alloc.transfer];
            // Bytes before the deadline (pro-rata within the slot).
            if let Some(d) = t.deadline_s {
                if d > now {
                    let usable = (d - now).min(config.slot_len_s);
                    let by_deadline = (rate * usable).min(t.remaining_gbits);
                    rec.gbits_by_deadline =
                        (rec.gbits_by_deadline + by_deadline).min(t.volume_gbits);
                }
            }
            // A transfer whose *allocated* rate covers its remaining volume
            // finishes this slot; with impaired delivery it finishes up to
            // `1/rate_efficiency` later within (or just past) the slot.
            // Modeling the under-delivered sliver this way avoids the
            // unphysical geometric tail a demand-capped allocator would
            // otherwise produce.
            if rate_alloc * config.slot_len_s + EPS >= t.remaining_gbits {
                let finish = now + t.remaining_gbits / rate;
                t.remaining_gbits = 0.0;
                rec.completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            } else {
                t.remaining_gbits -= rate * config.slot_len_s;
            }
            if let Some(delivered) = scope_delivered.as_mut() {
                delivered[alloc.transfer] = remaining_before - t.remaining_gbits;
            }
        }

        // Numerical-dust floor: see COMPLETION_FLOOR_GBITS.
        for (i, t) in transfers.iter_mut().enumerate() {
            if !t.is_complete() && t.remaining_gbits < COMPLETION_FLOOR_GBITS {
                t.remaining_gbits = 0.0;
                let finish = now + config.slot_len_s;
                records[i].completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            }
        }

        // Starvation guard bookkeeping.
        let mut queue_depth = 0usize;
        for (i, t) in transfers.iter_mut().enumerate() {
            if t.arrival_s <= now + EPS && !t.is_complete() {
                if got_rate[i] {
                    t.starved_slots = 0;
                } else {
                    t.starved_slots += 1;
                    queue_depth += 1;
                }
            }
        }

        let at_risk = if telemetry.is_some() || scope_on {
            at_risk_count(&active, &plan, now)
        } else {
            0
        };
        let mut stage_ns = (0u64, 0u64, 0u64, 0u64);
        if let (Some(t), Some((span, marks))) = (&telemetry, slot_span) {
            span.finish();
            stage_ns = t.stage_marks().since(&marks);
            let row = SlotTelemetry {
                slot,
                start_s: now,
                active_transfers: active.len(),
                queue_depth,
                at_risk,
                plan_ns,
                anneal_ns: stage_ns.0,
                circuits_ns: stage_ns.1,
                rates_ns: stage_ns.2,
                update_ns: stage_ns.3,
                update_ops,
                throughput_gbps: plan.throughput_gbps,
            };
            t.publish_slot(&row);
            slot_rows.push(row);
        }
        if let (true, Some(delivered)) = (scope_on, &scope_delivered) {
            let rows = build_scope_rows(&active, &plan, &transfers, &records, delivered);
            scope.record_slot(&SlotObservation {
                slot,
                now_s: now,
                slot_len_s: config.slot_len_s,
                start_ns: slot_start_ns,
                end_ns: recorder.now_ns().max(slot_start_ns),
                plan_start_ns,
                plan_ns,
                anneal_ns: stage_ns.0,
                circuits_ns: stage_ns.1,
                rates_ns: stage_ns.2,
                update_ns: stage_ns.3,
                update_ops,
                throughput_gbps: plan.throughput_gbps,
                active_transfers: active.len(),
                queue_depth,
                at_risk,
                plan: &plan,
                rows: &rows,
                believed_down: &[],
                actual_down: &[],
                events: &[],
            });
        }
        if let (true, Some(delivered)) = (why_on, &scope_delivered) {
            // Tier-4 feed: allocation-order samples first (the order
            // the chaos runner books its Gb ledger in), then the
            // queued actives. The idealized simulator has no
            // transitions, blackholes, or attacks, so full == live,
            // scale == 1, and the fault channel stays empty.
            let mut samples: Vec<TransferSample> = Vec::with_capacity(active.len());
            let mut allocated = vec![false; transfers.len()];
            for alloc in &plan.allocations {
                let id = alloc.transfer;
                let rate_alloc = alloc.total_rate();
                allocated[id] = true;
                samples.push(TransferSample {
                    id,
                    full_rate_gbps: rate_alloc,
                    live_rate_gbps: rate_alloc,
                    delivered_gbits: delivered[id],
                    remaining_gbits: transfers[id].remaining_gbits,
                    completion_s: records[id].completion_s,
                    queued: rate_alloc <= EPS,
                });
            }
            for t in &active {
                if !allocated[t.id] {
                    samples.push(TransferSample {
                        id: t.id,
                        full_rate_gbps: 0.0,
                        live_rate_gbps: 0.0,
                        delivered_gbits: 0.0,
                        remaining_gbits: transfers[t.id].remaining_gbits,
                        completion_s: records[t.id].completion_s,
                        queued: true,
                    });
                }
            }
            if let Some(reason) = why.observe_slot(&WhySlotObservation {
                slot,
                now_s: now,
                slot_len_s: config.slot_len_s,
                start_ns: slot_start_ns,
                end_ns: recorder.now_ns().max(slot_start_ns),
                plan_ns,
                transition_scale: 1.0,
                throughput_gbps: plan.throughput_gbps,
                attack_active: false,
                samples: &samples,
                events: &[],
            }) {
                scope.anomaly(reason, slot);
            }
        }
        if telemetry.is_some() {
            prev_plan = Some(plan);
        }
        slot_region.finish();
    }

    if !records.iter().all(|r| r.completion_s.is_some()) {
        makespan_s = makespan_s.max(slots as f64 * config.slot_len_s);
    }

    SimResult {
        engine: engine_name,
        completions: records,
        makespan_s,
        throughput_series,
        slots,
        telemetry: telemetry.map(|_| slot_rows),
        plan_error,
    }
}

/// One [`TransferSlotRow`] per active transfer, for the scope's transfer
/// tracker: allocated rate, volume delivered this slot (attributed per
/// path pro-rata by path rate), post-slot remaining volume, queue
/// position for unserved transfers, and the completion instant when the
/// transfer finished this slot. Shared with the chaos loop, which feeds
/// its achieved (post-fault) plan instead of the target plan.
pub fn build_scope_rows(
    active: &[Transfer],
    plan: &SlotPlan,
    transfers: &[Transfer],
    records: &[CompletionRecord],
    delivered: &[f64],
) -> Vec<TransferSlotRow> {
    let mut rows = Vec::with_capacity(active.len());
    let mut queue_pos = 0usize;
    for a in active {
        let id = a.id;
        let alloc = plan.allocations.iter().find(|al| al.transfer == id);
        let rate_gbps = alloc.map_or(0.0, |al| al.total_rate());
        let delivered_gbits = delivered.get(id).copied().unwrap_or(0.0);
        let served = rate_gbps > EPS;
        let paths = match alloc {
            Some(al) if served && delivered_gbits > 0.0 => al
                .paths
                .iter()
                .filter(|(_, r)| *r > EPS)
                .map(|(p, r)| (path_label(p), delivered_gbits * r / rate_gbps))
                .collect(),
            _ => Vec::new(),
        };
        rows.push(TransferSlotRow {
            id,
            rate_gbps,
            delivered_gbits,
            remaining_gbits: transfers[id].remaining_gbits,
            queue_pos: if served {
                None
            } else {
                queue_pos += 1;
                Some(queue_pos - 1)
            },
            completion_s: records[id].completion_s,
            paths,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{default_topology, OwanConfig, OwanEngine};
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    fn requests() -> Vec<TransferRequest> {
        vec![
            TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 600.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 2,
                dst: 3,
                volume_gbits: 300.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 1,
                dst: 2,
                volume_gbits: 100.0,
                arrival_s: 400.0,
                deadline_s: None,
            },
        ]
    }

    #[test]
    fn owan_drains_workload() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let res = simulate(&p, &requests(), &mut e, &cfg);
        assert!(res.all_completed(), "{res:?}");
        for c in &res.completions {
            let ct = c.completion_time_s().unwrap();
            assert!(ct > 0.0);
            assert!(c.completion_s.unwrap() >= c.arrival_s);
        }
        assert!(res.makespan_s > 0.0);
    }

    #[test]
    fn late_arrival_not_served_early() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let res = simulate(&p, &requests(), &mut e, &cfg);
        let late = &res.completions[2];
        assert!(late.completion_s.unwrap() >= 400.0);
    }

    #[test]
    fn demand_limited_transfer_finishes_in_one_slot() {
        // 50 Gb over a 100 s slot: the allocator hands it exactly its
        // demand rate (0.5 Gbps), so it completes precisely at the slot
        // boundary — never later.
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: 50.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let res = simulate(&p, &reqs, &mut e, &cfg);
        let ct = res.completions[0].completion_time_s().unwrap();
        assert!((ct - 100.0).abs() < 1e-6, "got {ct}");
    }

    #[test]
    fn impaired_final_sliver_finishes_late_not_never() {
        // With rate efficiency 0.9, the same transfer completes at
        // 100 / 0.9 ≈ 111 s instead of iterating an asymptotic tail.
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: 50.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            rate_efficiency: 0.9,
            ..Default::default()
        };
        let res = simulate(&p, &reqs, &mut e, &cfg);
        let ct = res.completions[0].completion_time_s().unwrap();
        assert!((ct - 100.0 / 0.9).abs() < 1e-6, "got {ct}");
    }

    #[test]
    fn rate_efficiency_slows_completion() {
        let p = plant();
        let run = |eff: f64| {
            let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
            let cfg = SimConfig {
                slot_len_s: 100.0,
                rate_efficiency: eff,
                ..Default::default()
            };
            simulate(&p, &requests(), &mut e, &cfg)
        };
        let ideal = run(1.0);
        let impaired = run(0.9);
        let avg = |r: &SimResult| {
            r.completions
                .iter()
                .filter_map(|c| c.completion_time_s())
                .sum::<f64>()
                / r.completions.len() as f64
        };
        assert!(
            avg(&impaired) >= avg(&ideal),
            "impairment cannot speed things up"
        );
    }

    #[test]
    fn deadline_bookkeeping() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![
            // Easily met: 100 Gb, deadline after 200 s at >= 10 Gbps.
            TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 100.0,
                arrival_s: 0.0,
                deadline_s: Some(200.0),
            },
            // Impossible: 10 000 Gb in 100 s.
            TransferRequest {
                src: 2,
                dst: 3,
                volume_gbits: 10_000.0,
                arrival_s: 0.0,
                deadline_s: Some(100.0),
            },
        ];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let res = simulate(&p, &reqs, &mut e, &cfg);
        assert!(res.completions[0].met_deadline());
        assert!(!res.completions[1].met_deadline());
        // Partial bytes before the deadline were still delivered.
        assert!(res.completions[1].gbits_by_deadline > 0.0);
        assert!(res.completions[1].gbits_by_deadline < 10_000.0);
    }

    #[test]
    fn empty_workload() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let res = simulate(&p, &[], &mut e, &SimConfig::default());
        assert_eq!(res.slots, 1);
        assert!(res.completions.is_empty());
    }

    #[test]
    fn feasibility_checker_catches_overload() {
        use owan_core::{Allocation, SlotPlan, Topology};
        let mut topo = Topology::empty(2);
        topo.add_links(0, 1, 1);
        let plan = SlotPlan {
            topology: topo,
            allocations: vec![Allocation {
                transfer: 0,
                paths: vec![(vec![0, 1], 25.0)],
            }],
            throughput_gbps: 25.0,
        };
        assert!(plan_is_feasible(&plan, 10.0).is_err());
        assert!(plan_is_feasible(&plan, 30.0).is_ok());
    }
}
