//! Simulator-vs-testbed validation (§5.1 "Performance validation").
//!
//! "We have validated the results of our flow-based simulator with our
//! testbed results on the Internet2 topology. The difference on the
//! performance metrics is within 10%, which is mainly from the imperfect
//! rate limiting and prefix splitting for multi-path routing on the
//! testbed."
//!
//! We cannot ship the authors' hardware, so the *testbed* here is the same
//! simulator with the impairments the paper blames for the gap turned on:
//! a rate-limiting efficiency below 1.0 (Linux tc under-shoots its target
//! rate, and prefix splitting quantizes multi-path shares). Running both
//! modes and comparing reproduces the validation experiment: the deltas on
//! every reported metric should stay within the paper's 10% band.

use crate::metrics::{self, SizeBin};
use crate::runner::{run_engine, EngineKind, RunnerConfig};
use crate::sim::SimConfig;
use owan_core::TransferRequest;
use owan_topo::Network;

/// Result of comparing ideal (simulator) vs impaired (emulated-testbed)
/// runs of one engine.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Engine compared.
    pub engine: String,
    /// Mean completion time, ideal mode.
    pub sim_avg_s: f64,
    /// Mean completion time, impaired mode.
    pub testbed_avg_s: f64,
    /// 95th-percentile completion time, ideal mode.
    pub sim_p95_s: f64,
    /// 95th-percentile completion time, impaired mode.
    pub testbed_p95_s: f64,
}

impl ValidationReport {
    /// Relative difference of the mean metric (|a-b| / max).
    pub fn avg_delta(&self) -> f64 {
        rel_delta(self.sim_avg_s, self.testbed_avg_s)
    }

    /// Relative difference of the p95 metric.
    pub fn p95_delta(&self) -> f64 {
        rel_delta(self.sim_p95_s, self.testbed_p95_s)
    }
}

fn rel_delta(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if m <= 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

/// Runs the validation for one engine: ideal fluid mode vs impaired mode
/// with the given rate efficiency (defaults in the paper's blamed range).
pub fn validate_simulator(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
    testbed_rate_efficiency: f64,
) -> ValidationReport {
    let ideal_cfg = RunnerConfig {
        sim: SimConfig {
            rate_efficiency: 1.0,
            ..config.sim
        },
        ..*config
    };
    let impaired_cfg = RunnerConfig {
        sim: SimConfig {
            rate_efficiency: testbed_rate_efficiency,
            ..config.sim
        },
        ..*config
    };
    let ideal = run_engine(kind, network, requests, &ideal_cfg);
    let impaired = run_engine(kind, network, requests, &impaired_cfg);
    let (sim_avg_s, sim_p95_s) = metrics::summary(&ideal, SizeBin::All);
    let (testbed_avg_s, testbed_p95_s) = metrics::summary(&impaired, SizeBin::All);
    ValidationReport {
        engine: ideal.engine,
        sim_avg_s,
        testbed_avg_s,
        sim_p95_s,
        testbed_p95_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_topo::internet2_testbed;
    use owan_workload::{generate, WorkloadConfig};

    #[test]
    fn validation_within_paper_band() {
        let net = internet2_testbed();
        let mut wl = WorkloadConfig::testbed(0.5, 42);
        wl.duration_s = 1_200.0;
        let reqs: Vec<_> = generate(&net, &wl).into_iter().take(10).collect();
        let cfg = RunnerConfig {
            anneal_iterations: 60,
            ..Default::default()
        };
        let report = validate_simulator(EngineKind::MaxFlow, &net, &reqs, &cfg, 0.93);
        assert!(report.sim_avg_s > 0.0);
        assert!(
            report.testbed_avg_s >= report.sim_avg_s,
            "impairment slows completion"
        );
        assert!(
            report.avg_delta() <= 0.15,
            "avg delta {} should be around the paper's 10%",
            report.avg_delta()
        );
    }

    #[test]
    fn zero_impairment_zero_delta() {
        let net = internet2_testbed();
        let mut wl = WorkloadConfig::testbed(0.5, 7);
        wl.duration_s = 600.0;
        let reqs: Vec<_> = generate(&net, &wl).into_iter().take(5).collect();
        let cfg = RunnerConfig::default();
        let report = validate_simulator(EngineKind::MaxFlow, &net, &reqs, &cfg, 1.0);
        assert_eq!(report.avg_delta(), 0.0);
        assert_eq!(report.p95_delta(), 0.0);
    }
}
