//! The full controller loop of §3.1, including the network-update step.
//!
//! [`sim::simulate`](crate::sim::simulate) evaluates scheduling quality
//! under the paper's assumption that reconfiguration is much faster than a
//! slot ("a few minutes vs. hundreds or thousands of milliseconds").
//! [`Controller`] drops that idealization: between consecutive slots it
//! derives the [`NetworkDelta`](owan_update::NetworkDelta), schedules it
//! with the consistent (or one-shot) planner, and charges the transition
//! against the new slot — traffic ramps to the new allocation only as the
//! update timeline actually carries it, so heavy optical churn costs real
//! delivered bytes.
//!
//! This is the component a deployment would run: submit requests, tick the
//! clock, read back rate allocations and the device operation schedule.

use crate::sim::{CompletionRecord, PlanError};
use crate::telemetry::{at_risk_count, SimTelemetry, SlotTelemetry};
use owan_core::{SlotInput, SlotPlan, TrafficEngineer, Transfer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::FiberPlant;
use owan_update::{
    plan_consistent_observed, plan_one_shot_observed, throughput_timeline, NetworkDelta,
    UpdateParams, UpdatePlan, UpdateTelemetry,
};

const EPS: f64 = 1e-9;

/// Update scheduling discipline used between slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDiscipline {
    /// Dionysus-style consistent updates (the paper's §3.3).
    Consistent,
    /// Everything fired at once (the §5.4 comparison).
    OneShot,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Slot length, seconds.
    pub slot_len_s: f64,
    /// Hard cap on slots.
    pub max_slots: usize,
    /// Update discipline between slots.
    pub discipline: UpdateDiscipline,
    /// Router rule install/remove time, seconds.
    pub path_time_s: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            slot_len_s: 300.0,
            max_slots: 2_000,
            discipline: UpdateDiscipline::Consistent,
            path_time_s: 0.1,
        }
    }
}

/// Outcome of a controller run.
#[derive(Debug, Clone)]
pub struct ControllerResult {
    /// Per-transfer outcomes (same shape as the plain simulator's).
    pub completions: Vec<CompletionRecord>,
    /// Per-slot `(slot start, delivered volume in Gb)` — *delivered*, i.e.
    /// after update-transition losses, unlike the plain simulator's
    /// allocated-throughput series.
    pub delivered_series: Vec<(f64, f64)>,
    /// Makespan (absolute completion of the last transfer).
    pub makespan_s: f64,
    /// Total update operations executed across the run.
    pub update_ops: usize,
    /// Gb lost to update transitions relative to the allocated rates
    /// (what the idealized simulator would have delivered on the same
    /// plans during the transition windows).
    pub transition_loss_gbits: f64,
    /// Per-slot controller telemetry, present when the run was made with
    /// a recording recorder (see [`run_controller_observed`]).
    pub telemetry: Option<Vec<SlotTelemetry>>,
    /// Set when the engine emitted an infeasible plan: the slot it happened
    /// in and the violated feasibility condition. The run stops at that
    /// slot; transfers still pending are reported unfinished.
    pub plan_error: Option<(usize, PlanError)>,
}

impl ControllerResult {
    /// True if every transfer completed.
    pub fn all_completed(&self) -> bool {
        self.completions.iter().all(|c| c.completion_s.is_some())
    }
}

/// Per-transfer delivered volume during one slot, accounting for the
/// update transition: during `[0, makespan]` of the update plan the
/// carried rate of each path follows the update timeline; afterwards the
/// full new allocation applies. To keep the accounting per-transfer we
/// scale each transfer's allocated volume by the ratio of carried to
/// allocated network volume during the transition window (the timeline is
/// a network-level quantity).
fn transition_scale(
    delta: &NetworkDelta,
    plan: &UpdatePlan,
    params: &UpdateParams,
    slot_len_s: f64,
    new_total_gbps: f64,
) -> (f64, f64) {
    if plan.ops.is_empty() || new_total_gbps <= EPS {
        return (1.0, 0.0);
    }
    let window = plan.makespan_s.min(slot_len_s);
    if window <= EPS {
        return (1.0, 0.0);
    }
    let dt = (window / 64.0).max(0.05);
    let tl = throughput_timeline(delta, plan, params, dt, window);
    // Trapezoidal integral of carried Gbps over the window.
    let mut carried_gbits = 0.0;
    for w in tl.windows(2) {
        carried_gbits +=
            0.5 * (w[0].throughput_gbps + w[1].throughput_gbps) * (w[1].time_s - w[0].time_s);
    }
    let ideal_gbits = new_total_gbps * window;
    let steady_gbits = new_total_gbps * (slot_len_s - window);
    let slot_ideal = new_total_gbps * slot_len_s;
    let delivered = carried_gbits + steady_gbits;
    let scale = (delivered / slot_ideal).clamp(0.0, 1.0);
    (scale, (ideal_gbits - carried_gbits).max(0.0))
}

/// Runs the controller loop: admit → plan → schedule update → deliver.
pub fn run_controller(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &ControllerConfig,
) -> ControllerResult {
    run_controller_observed(plant, requests, engine, config, &Recorder::disabled())
}

/// [`run_controller`] with telemetry. Unlike [`crate::sim::simulate_observed`],
/// the update planner here is on the real execution path (its schedule
/// determines delivered volume), so the `stage.update` span times work
/// the controller was doing anyway. Delivered results are identical to
/// the unobserved run.
pub fn run_controller_observed(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &ControllerConfig,
    recorder: &Recorder,
) -> ControllerResult {
    let theta = plant.params().wavelength_capacity_gbps;
    engine.set_recorder(recorder.clone());
    let telemetry = recorder.is_enabled().then(|| SimTelemetry::new(recorder));
    let update_telemetry = telemetry
        .as_ref()
        .map_or_else(UpdateTelemetry::disabled, |t| t.update.clone());
    let mut slot_rows: Vec<SlotTelemetry> = Vec::new();
    let params = UpdateParams {
        theta_gbps: theta,
        circuit_time_s: plant.params().circuit_reconfig_time_s,
        path_time_s: config.path_time_s,
    };

    let mut transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    let mut records: Vec<CompletionRecord> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| CompletionRecord {
            id,
            volume_gbits: r.volume_gbits,
            arrival_s: r.arrival_s,
            deadline_s: r.deadline_s,
            completion_s: None,
            gbits_by_deadline: 0.0,
        })
        .collect();

    let mut prev_plan: Option<SlotPlan> = None;
    let mut delivered_series = Vec::new();
    let mut makespan_s: f64 = 0.0;
    let mut update_ops = 0usize;
    let mut transition_loss_gbits = 0.0;
    let mut plan_error: Option<(usize, PlanError)> = None;

    for slot in 0..config.max_slots {
        let now = slot as f64 * config.slot_len_s;
        let active: Vec<Transfer> = transfers
            .iter()
            .filter(|t| t.arrival_s <= now + EPS && !t.is_complete())
            .cloned()
            .collect();
        let pending = transfers
            .iter()
            .any(|t| t.arrival_s > now + EPS && !t.is_complete());
        if active.is_empty() && !pending {
            break;
        }

        let slot_span = telemetry
            .as_ref()
            .map(|t| (t.slot_stage.enter(), t.stage_marks()));
        let plan_start_ns = recorder.now_ns();
        let plan = engine.plan_slot(
            plant,
            &SlotInput {
                transfers: &active,
                slot_len_s: config.slot_len_s,
                now_s: now,
            },
        );
        let plan_ns = recorder.now_ns().saturating_sub(plan_start_ns);
        if let Err(e) = crate::sim::plan_is_feasible(&plan, theta) {
            plan_error = Some((slot, e));
            break;
        }

        // Schedule the transition from the previous state.
        let mut slot_update_ops = 0usize;
        let (scale, loss) = match &prev_plan {
            Some(prev) => {
                let delta = NetworkDelta::from_plans(
                    &prev.topology,
                    &prev.allocations,
                    &plan.topology,
                    &plan.allocations,
                    plant.params().wavelengths_per_fiber,
                );
                let update = match config.discipline {
                    UpdateDiscipline::Consistent => {
                        plan_consistent_observed(&delta, &params, &update_telemetry)
                    }
                    UpdateDiscipline::OneShot => {
                        plan_one_shot_observed(&delta, &params, &update_telemetry)
                    }
                };
                slot_update_ops = update.ops.len();
                update_ops += update.ops.len();
                transition_scale(
                    &delta,
                    &update,
                    &params,
                    config.slot_len_s,
                    plan.throughput_gbps,
                )
            }
            None => (1.0, 0.0),
        };
        transition_loss_gbits += loss;

        // Deliver.
        let mut slot_delivered = 0.0;
        let mut got_rate = vec![false; transfers.len()];
        for alloc in &plan.allocations {
            let rate_alloc = alloc.total_rate();
            let rate = rate_alloc * scale;
            if rate <= EPS {
                continue;
            }
            got_rate[alloc.transfer] = true;
            let t = &mut transfers[alloc.transfer];
            let rec = &mut records[alloc.transfer];
            if let Some(d) = t.deadline_s {
                if d > now {
                    let usable = (d - now).min(config.slot_len_s);
                    let by_deadline = (rate * usable).min(t.remaining_gbits);
                    rec.gbits_by_deadline =
                        (rec.gbits_by_deadline + by_deadline).min(t.volume_gbits);
                }
            }
            // Completion keys off the *allocated* rate (as in
            // `sim::simulate`): a transfer whose allocation covers its
            // remaining volume finishes this slot, merely later when the
            // transition ate into the slot — otherwise the scaled delivery
            // would produce an unphysical geometric tail.
            if rate_alloc * config.slot_len_s + EPS >= t.remaining_gbits {
                let finish = now + t.remaining_gbits / rate;
                slot_delivered += t.remaining_gbits;
                t.remaining_gbits = 0.0;
                rec.completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            } else {
                let vol = rate * config.slot_len_s;
                t.remaining_gbits -= vol;
                slot_delivered += vol;
            }
        }
        delivered_series.push((now, slot_delivered));

        if let (Some(t), Some((span, marks))) = (&telemetry, slot_span) {
            span.finish();
            let (anneal_ns, circuits_ns, rates_ns, update_ns) = t.stage_marks().since(&marks);
            let row = SlotTelemetry {
                slot,
                start_s: now,
                active_transfers: active.len(),
                queue_depth: active.iter().filter(|a| !got_rate[a.id]).count(),
                at_risk: at_risk_count(&active, &plan, now),
                plan_ns,
                anneal_ns,
                circuits_ns,
                rates_ns,
                update_ns,
                update_ops: slot_update_ops,
                throughput_gbps: plan.throughput_gbps,
            };
            t.publish_slot(&row);
            slot_rows.push(row);
        }
        prev_plan = Some(plan);
    }

    if !records.iter().all(|r| r.completion_s.is_some()) {
        makespan_s = makespan_s.max(delivered_series.len() as f64 * config.slot_len_s);
    }

    ControllerResult {
        completions: records,
        delivered_series,
        makespan_s,
        update_ops,
        transition_loss_gbits,
        telemetry: telemetry.map(|_| slot_rows),
        plan_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{default_topology, OwanConfig, OwanEngine};
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            circuit_reconfig_time_s: 4.0,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    fn requests() -> Vec<TransferRequest> {
        vec![
            TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 2_000.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 2,
                dst: 3,
                volume_gbits: 1_500.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 1,
                dst: 3,
                volume_gbits: 700.0,
                arrival_s: 300.0,
                deadline_s: None,
            },
        ]
    }

    fn run(discipline: UpdateDiscipline) -> ControllerResult {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let cfg = ControllerConfig {
            slot_len_s: 100.0,
            discipline,
            ..Default::default()
        };
        run_controller(&p, &requests(), &mut e, &cfg)
    }

    #[test]
    fn controller_drains_workload() {
        let res = run(UpdateDiscipline::Consistent);
        assert!(res.all_completed(), "{res:?}");
        assert!(res.makespan_s > 0.0);
        let delivered: f64 = res.delivered_series.iter().map(|(_, v)| v).sum();
        let requested: f64 = requests().iter().map(|r| r.volume_gbits).sum();
        assert!(
            (delivered - requested).abs() < 1e-3,
            "{delivered} vs {requested}"
        );
    }

    #[test]
    fn updates_are_scheduled_between_slots() {
        let res = run(UpdateDiscipline::Consistent);
        // Rates change between slots (transfers shrink), so path ops exist.
        assert!(res.update_ops > 0);
    }

    #[test]
    fn one_shot_loses_comparably_or_more_than_consistent() {
        // Loss is measured against the ideal volume of each plan's *own*
        // transition window; the consistent plan's window is longer (it
        // serializes operations), so its ramp-up counts against it even
        // though no packet is dropped. The two metrics are therefore only
        // comparable up to that window difference — one-shot must not
        // lose meaningfully *less*.
        let consistent = run(UpdateDiscipline::Consistent);
        let one_shot = run(UpdateDiscipline::OneShot);
        assert!(
            one_shot.transition_loss_gbits >= consistent.transition_loss_gbits * 0.8 - 1e-6,
            "one-shot loss {} far below consistent {}",
            one_shot.transition_loss_gbits,
            consistent.transition_loss_gbits
        );
        // And the workload still drains under both disciplines.
        assert!(consistent.all_completed());
        assert!(one_shot.all_completed());
    }

    #[test]
    fn transition_losses_slow_completion_not_break_it() {
        let res = run(UpdateDiscipline::OneShot);
        for c in &res.completions {
            assert!(c.completion_s.is_some());
            assert!(c.completion_s.unwrap() >= c.arrival_s);
        }
    }
}
