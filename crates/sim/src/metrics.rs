//! Evaluation metrics (§5.1 "Performance metrics").
//!
//! Deadline-unconstrained traffic: transfer completion time (average, 95th
//! percentile, CDF, per-size bins) and makespan. Deadline-constrained:
//! percentage of transfers meeting deadlines and percentage of bytes
//! finishing before deadlines. *Factor of improvement* = the alternative's
//! metric divided by Owan's.

use crate::sim::{CompletionRecord, SimResult};

/// Size bins used by Figures 7(b)/(e)/(h) and 9(c)/(f)/(i): the smallest
/// third of transfers, the middle third, and the largest third.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBin {
    /// Smallest third by volume.
    Small,
    /// Middle third.
    Middle,
    /// Largest third.
    Large,
    /// Every transfer.
    All,
}

impl SizeBin {
    /// The bins in display order.
    pub const BINS: [SizeBin; 4] = [
        SizeBin::Small,
        SizeBin::Middle,
        SizeBin::Large,
        SizeBin::All,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBin::Small => "Small",
            SizeBin::Middle => "Middle",
            SizeBin::Large => "Large",
            SizeBin::All => "All",
        }
    }
}

/// Splits completion records into size bins. Returns, for each record
/// index, which bin it belongs to (All is implicit).
pub fn size_bins(records: &[CompletionRecord]) -> Vec<SizeBin> {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by(|&a, &b| {
        records[a]
            .volume_gbits
            .total_cmp(&records[b].volume_gbits)
            .then(a.cmp(&b))
    });
    let n = records.len();
    let mut bins = vec![SizeBin::All; n];
    for (rank, &idx) in order.iter().enumerate() {
        bins[idx] = if rank * 3 < n {
            SizeBin::Small
        } else if rank * 3 < 2 * n {
            SizeBin::Middle
        } else {
            SizeBin::Large
        };
    }
    bins
}

/// Completion times (seconds, relative to arrival) of the records in `bin`.
/// Unfinished transfers are excluded (they have no completion time).
pub fn completion_times(result: &SimResult, bin: SizeBin) -> Vec<f64> {
    let bins = size_bins(&result.completions);
    result
        .completions
        .iter()
        .enumerate()
        .filter(|&(i, _)| bin == SizeBin::All || bins[i] == bin)
        .filter_map(|(_, c)| c.completion_time_s())
        .collect()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `p`-th percentile (0–100) by nearest-rank; 0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Empirical CDF of `xs` as `(value, fraction <= value)` points.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Factor of improvement of `ours` over `theirs` on a lower-is-better
/// metric: `theirs / ours` (> 1 means we win). Returns infinity when ours
/// is zero and theirs is not.
pub fn improvement_factor(ours: f64, theirs: f64) -> f64 {
    if ours <= 0.0 {
        if theirs <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        theirs / ours
    }
}

/// Percentage (0–100) of transfers that met their deadline, among those
/// that have one.
pub fn pct_deadlines_met(result: &SimResult, bin: SizeBin) -> f64 {
    let bins = size_bins(&result.completions);
    let eligible: Vec<&CompletionRecord> = result
        .completions
        .iter()
        .enumerate()
        .filter(|&(i, c)| c.deadline_s.is_some() && (bin == SizeBin::All || bins[i] == bin))
        .map(|(_, c)| c)
        .collect();
    if eligible.is_empty() {
        return 100.0;
    }
    let met = eligible.iter().filter(|c| c.met_deadline()).count();
    100.0 * met as f64 / eligible.len() as f64
}

/// Percentage (0–100) of bytes delivered before their transfer's deadline,
/// among deadline-carrying transfers.
pub fn pct_bytes_by_deadline(result: &SimResult) -> f64 {
    let mut total = 0.0;
    let mut on_time = 0.0;
    for c in &result.completions {
        if c.deadline_s.is_some() {
            total += c.volume_gbits;
            on_time += c.gbits_by_deadline;
        }
    }
    if total <= 0.0 {
        100.0
    } else {
        100.0 * on_time / total
    }
}

/// Mean and p95 of completion time for one result and bin — the pair every
/// Figure 7 panel reports.
pub fn summary(result: &SimResult, bin: SizeBin) -> (f64, f64) {
    let xs = completion_times(result, bin);
    (mean(&xs), percentile(&xs, 95.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, volume: f64, ct: Option<f64>, deadline: Option<f64>) -> CompletionRecord {
        CompletionRecord {
            id,
            volume_gbits: volume,
            arrival_s: 0.0,
            deadline_s: deadline,
            completion_s: ct,
            gbits_by_deadline: match (ct, deadline) {
                (Some(c), Some(d)) if c <= d => volume,
                (_, Some(_)) => volume / 2.0,
                _ => 0.0,
            },
        }
    }

    fn result(completions: Vec<CompletionRecord>) -> SimResult {
        SimResult {
            engine: "test".into(),
            completions,
            makespan_s: 0.0,
            throughput_series: Vec::new(),
            slots: 0,
            telemetry: None,
            plan_error: None,
        }
    }

    #[test]
    fn mean_and_percentile() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(mean(&xs), 22.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 95.0), 100.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    #[test]
    fn cdf_monotone_ending_at_one() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn bins_split_in_thirds() {
        let recs: Vec<CompletionRecord> = (0..9)
            .map(|i| record(i, (i + 1) as f64, Some(1.0), None))
            .collect();
        let bins = size_bins(&recs);
        assert_eq!(bins.iter().filter(|&&b| b == SizeBin::Small).count(), 3);
        assert_eq!(bins.iter().filter(|&&b| b == SizeBin::Middle).count(), 3);
        assert_eq!(bins.iter().filter(|&&b| b == SizeBin::Large).count(), 3);
        assert_eq!(bins[0], SizeBin::Small);
        assert_eq!(bins[8], SizeBin::Large);
    }

    #[test]
    fn improvement_factors() {
        assert_eq!(improvement_factor(1.0, 4.45), 4.45);
        assert_eq!(improvement_factor(0.0, 0.0), 1.0);
        assert!(improvement_factor(0.0, 5.0).is_infinite());
    }

    #[test]
    fn deadline_percentages() {
        let r = result(vec![
            record(0, 10.0, Some(5.0), Some(10.0)),  // met
            record(1, 10.0, Some(20.0), Some(10.0)), // missed
            record(2, 10.0, None, Some(10.0)),       // never finished
            record(3, 10.0, Some(5.0), None),        // no deadline: excluded
        ]);
        assert!((pct_deadlines_met(&r, SizeBin::All) - 100.0 / 3.0).abs() < 1e-9);
        // Bytes: 10 + 5 + 5 of 30.
        assert!((pct_bytes_by_deadline(&r) - 100.0 * 20.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn all_deadlines_met_when_none_exist() {
        let r = result(vec![record(0, 10.0, Some(5.0), None)]);
        assert_eq!(pct_deadlines_met(&r, SizeBin::All), 100.0);
        assert_eq!(pct_bytes_by_deadline(&r), 100.0);
    }

    #[test]
    fn unfinished_excluded_from_completion_times() {
        let r = result(vec![
            record(0, 10.0, Some(5.0), None),
            record(1, 10.0, None, None),
        ]);
        assert_eq!(completion_times(&r, SizeBin::All).len(), 1);
    }
}
