//! Failure handling (§3.4).
//!
//! "Link and switch failures are detected and sent to the controller. The
//! controller removes these links and switches from the physical network,
//! and recomputes the network state with the updated physical network."
//! Controller failure is handled by statelessness: "we only need to store
//! the physical network and the set of all transfers … when the controller
//! fails, we spawn a new instance, which starts to compute and reconfigure
//! the network state at the next time slot."
//!
//! [`degrade_plant`] produces the post-failure physical network;
//! [`simulate_with_failures`] drives an engine through a timeline of
//! failure events, presenting the degraded plant from each event's slot on;
//! [`simulate_with_restarts`] emulates the stateless controller failover by
//! swapping in a fresh engine at chosen slot boundaries. Richer fault
//! dynamics — repairs, detection delay, mid-slot blackholes, update-op
//! faults — live in the `owan-chaos` crate, which builds on the same
//! primitives.

use crate::sim::{
    drive_slots, EngineSource, PlantProvider, SimConfig, SimResult, SingleEngine, StaticPlant,
};
use owan_core::{TrafficEngineer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::{FiberId, FiberPlant, SiteId};

const EPS: f64 = 1e-9;

/// A failure event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Failure {
    /// A fiber cut: the fiber disappears from the plant.
    FiberCut(FiberId),
    /// A site (router + ROADM) goes dark: its router ports drop to zero and
    /// all its fibers are removed.
    SiteDown(SiteId),
    /// Partial degradation: an amplifier fault shrinks the fiber's usable
    /// wavelengths to `usable` (a cap below the plant-wide φ). Multiple
    /// degradations of the same fiber compose by taking the minimum.
    AmpDegraded {
        /// Affected fiber.
        fiber: FiberId,
        /// Usable wavelengths remaining.
        usable: u32,
    },
}

/// A failure at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// When the failure occurs, seconds.
    pub time_s: f64,
    /// What fails.
    pub failure: Failure,
}

/// Rebuilds a plant with the given failures applied (fibers removed, dead
/// sites stripped of ports and regenerators, degraded fibers capped). Site
/// ids are preserved; fiber ids compact (see [`degrade_plant_mapped`] for
/// the id mapping).
pub fn degrade_plant(plant: &FiberPlant, failures: &[Failure]) -> FiberPlant {
    degrade_plant_mapped(plant, failures).0
}

/// [`degrade_plant`] plus the fiber-id mapping: `map[original_id]` is the
/// fiber's id in the degraded plant, or `None` if it was removed. Failure
/// fiber ids always refer to the plant passed in; callers tracking faults
/// across a degradation (e.g. mid-slot blackhole detection in `owan-chaos`)
/// use the map to translate.
pub fn degrade_plant_mapped(
    plant: &FiberPlant,
    failures: &[Failure],
) -> (FiberPlant, Vec<Option<FiberId>>) {
    let dead_site = |s: SiteId| {
        failures
            .iter()
            .any(|f| matches!(f, Failure::SiteDown(d) if *d == s))
    };
    let cut_fiber = |f: FiberId| {
        failures
            .iter()
            .any(|x| matches!(x, Failure::FiberCut(c) if *c == f))
    };
    // Minimum surviving-wavelength cap per fiber across amp faults, folded
    // with any cap already on the fiber (degrading a degraded plant must
    // never restore capacity).
    let amp_cap = |f: FiberId| {
        failures
            .iter()
            .filter_map(|x| match x {
                Failure::AmpDegraded { fiber, usable } if *fiber == f => Some(*usable),
                _ => None,
            })
            .chain(plant.fiber(f).lambda_cap)
            .min()
    };

    let mut out = FiberPlant::new(plant.params().clone());
    for s in 0..plant.site_count() {
        let site = plant.site(s);
        if dead_site(s) {
            out.add_site(&site.name, 0, 0);
        } else {
            out.add_site(&site.name, site.router_ports, site.regenerators);
        }
    }
    let mut map = vec![None; plant.fiber_count()];
    for (id, fiber) in plant.fibers().iter().enumerate() {
        if !cut_fiber(id) && !dead_site(fiber.a) && !dead_site(fiber.b) {
            let new_id = out.add_fiber(fiber.a, fiber.b, fiber.length_km);
            out.set_fiber_wavelength_cap(new_id, amp_cap(id));
            map[id] = Some(new_id);
        }
    }
    (out, map)
}

/// Folds a failure timeline into per-slot degraded plants.
pub(crate) struct FailureTimelinePlant<'a> {
    base: &'a FiberPlant,
    /// Events sorted by time.
    timeline: Vec<FailureEvent>,
    applied: usize,
    current: FiberPlant,
}

impl<'a> FailureTimelinePlant<'a> {
    pub(crate) fn new(base: &'a FiberPlant, events: &[FailureEvent]) -> Self {
        let mut timeline = events.to_vec();
        timeline.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        FailureTimelinePlant {
            base,
            timeline,
            applied: 0,
            current: base.clone(),
        }
    }
}

impl PlantProvider for FailureTimelinePlant<'_> {
    fn plant_at(&mut self, _slot: usize, now_s: f64) -> &FiberPlant {
        let due = self
            .timeline
            .iter()
            .take_while(|e| e.time_s <= now_s + EPS)
            .count();
        if due > self.applied {
            let active: Vec<Failure> = self.timeline[..due].iter().map(|e| e.failure).collect();
            self.current = degrade_plant(self.base, &active);
            self.applied = due;
        }
        &self.current
    }
}

/// Like [`crate::sim::simulate`] but with a failure timeline: from the slot
/// containing each event onward, the engine sees the degraded plant.
/// Transfers whose endpoints died can never finish and are reported
/// unfinished.
pub fn simulate_with_failures(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    events: &[FailureEvent],
) -> SimResult {
    simulate_with_failures_observed(
        plant,
        requests,
        engine,
        config,
        events,
        &Recorder::disabled(),
    )
}

/// [`simulate_with_failures`] with telemetry: failure runs are traceable
/// exactly like [`crate::sim::simulate_observed`] — per-slot `SlotTelemetry`
/// rows, stage spans, and update-op counts land on the recorder.
pub fn simulate_with_failures_observed(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    events: &[FailureEvent],
    recorder: &Recorder,
) -> SimResult {
    drive_slots(
        plant,
        requests,
        &mut FailureTimelinePlant::new(plant, events),
        &mut SingleEngine(engine),
        config,
        recorder,
        &owan_scope::ScopeRecorder::disabled(),
        &owan_core::Profiler::disabled(),
        &owan_why::WhyRecorder::disabled(),
    )
}

/// Swaps in a fresh engine at each slot in `restart_slots` (§3.4 stateless
/// failover: a crashed controller's replacement recomputes from the stored
/// plant + transfer set, carrying no in-memory state across the crash).
struct RestartingEngines<'a> {
    factory: &'a mut dyn FnMut() -> Box<dyn TrafficEngineer>,
    /// Sorted restart boundaries.
    restart_slots: Vec<usize>,
    next_restart: usize,
    current: Box<dyn TrafficEngineer>,
}

impl<'a> RestartingEngines<'a> {
    fn new(factory: &'a mut dyn FnMut() -> Box<dyn TrafficEngineer>, restarts: &[usize]) -> Self {
        let mut restart_slots = restarts.to_vec();
        restart_slots.sort_unstable();
        restart_slots.dedup();
        let current = factory();
        RestartingEngines {
            factory,
            restart_slots,
            next_restart: 0,
            current,
        }
    }
}

impl EngineSource for RestartingEngines<'_> {
    fn engine_at(&mut self, slot: usize) -> &mut dyn TrafficEngineer {
        let mut restarted = false;
        while self.next_restart < self.restart_slots.len()
            && self.restart_slots[self.next_restart] <= slot
        {
            restarted = true;
            self.next_restart += 1;
        }
        if restarted {
            self.current = (self.factory)();
        }
        self.current.as_mut()
    }
}

/// Runs the workload with controller crashes at the given slot boundaries:
/// at each slot in `restart_slots`, the engine is discarded and `factory`
/// builds its stateless replacement. With an empty `restart_slots` this is
/// exactly [`crate::sim::simulate`].
pub fn simulate_with_restarts(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    factory: &mut dyn FnMut() -> Box<dyn TrafficEngineer>,
    config: &SimConfig,
    restart_slots: &[usize],
) -> SimResult {
    let mut engines = RestartingEngines::new(factory, restart_slots);
    drive_slots(
        plant,
        requests,
        &mut StaticPlant(plant),
        &mut engines,
        config,
        &Recorder::disabled(),
        &owan_scope::ScopeRecorder::disabled(),
        &owan_core::Profiler::disabled(),
        &owan_why::WhyRecorder::disabled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{default_topology, OwanConfig, OwanEngine};
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    #[test]
    fn degrade_removes_fibers_and_ports() {
        let p = plant();
        let d = degrade_plant(&p, &[Failure::FiberCut(0), Failure::SiteDown(3)]);
        assert_eq!(d.site_count(), 4);
        assert_eq!(d.router_ports(3), 0);
        // Fiber 0 cut, plus both fibers touching site 3 gone: 4 - 3 = 1.
        assert_eq!(d.fiber_count(), 1);
    }

    #[test]
    fn degrade_caps_wavelengths() {
        let p = plant();
        let d = degrade_plant(
            &p,
            &[Failure::AmpDegraded {
                fiber: 1,
                usable: 3,
            }],
        );
        assert_eq!(d.fiber_count(), 4, "degraded fiber survives");
        assert_eq!(d.usable_wavelengths(1), 3);
        assert_eq!(d.usable_wavelengths(0), 8);
        // Two degradations of the same fiber compose by minimum.
        let d2 = degrade_plant(
            &p,
            &[
                Failure::AmpDegraded {
                    fiber: 1,
                    usable: 3,
                },
                Failure::AmpDegraded {
                    fiber: 1,
                    usable: 5,
                },
            ],
        );
        assert_eq!(d2.usable_wavelengths(1), 3);
    }

    #[test]
    fn degrade_mapping_tracks_removals() {
        let p = plant();
        let (d, map) = degrade_plant_mapped(&p, &[Failure::FiberCut(1)]);
        assert_eq!(map, vec![Some(0), None, Some(1), Some(2)]);
        for (orig, new) in map.iter().enumerate() {
            if let Some(n) = new {
                assert_eq!(d.fiber(*n).a, p.fiber(orig).a);
                assert_eq!(d.fiber(*n).b, p.fiber(orig).b);
            }
        }
    }

    #[test]
    fn owan_survives_fiber_cut() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 2_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 150.0,
            failure: Failure::FiberCut(0),
        }];
        let res = simulate_with_failures(&p, &reqs, &mut e, &cfg, &events);
        assert!(
            res.all_completed(),
            "transfer should reroute around the cut"
        );
    }

    #[test]
    fn owan_survives_amp_degradation() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 2_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 150.0,
            failure: Failure::AmpDegraded {
                fiber: 0,
                usable: 1,
            },
        }];
        let res = simulate_with_failures(&p, &reqs, &mut e, &cfg, &events);
        assert!(res.all_completed(), "{res:?}");
    }

    #[test]
    fn dead_destination_never_completes() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 100_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            max_slots: 50,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 0.0,
            failure: Failure::SiteDown(2),
        }];
        let res = simulate_with_failures(&p, &reqs, &mut e, &cfg, &events);
        assert!(!res.all_completed());
        assert!(res.slots < 50, "simulation stops early instead of spinning");
    }

    #[test]
    fn failure_run_carries_telemetry() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 2_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 150.0,
            failure: Failure::FiberCut(0),
        }];
        let recorder = Recorder::enabled();
        let res = simulate_with_failures_observed(&p, &reqs, &mut e, &cfg, &events, &recorder);
        assert!(res.all_completed());
        let rows = res.telemetry.expect("observed run records telemetry");
        // One row per planned slot (the final admission-only slot plans
        // nothing and records no row).
        assert_eq!(rows.len(), res.throughput_series.len());
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.active_transfers >= 1));
    }

    #[test]
    fn controller_failover_is_stateless() {
        // §3.4: a restarted controller resumes from the stored physical
        // network + transfer set. Run one engine for the whole workload
        // and a crash-and-restart run split at slot 3: the replacement
        // engine re-anneals from scratch, so individual plans may differ,
        // but every transfer still completes and the makespan stays in the
        // same ballpark (the restart costs at most a couple of slots of
        // re-convergence, not the workload).
        let p = plant();
        let reqs = vec![
            TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 800.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 2,
                dst: 3,
                volume_gbits: 800.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
        ];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let mut continuous = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let res = crate::sim::simulate(&p, &reqs, &mut continuous, &cfg);
        assert!(res.all_completed());

        let mut factory = || -> Box<dyn TrafficEngineer> {
            Box::new(OwanEngine::new(default_topology(&p), OwanConfig::default()))
        };
        let restarted = simulate_with_restarts(&p, &reqs, &mut factory, &cfg, &[3]);
        assert!(
            restarted.all_completed(),
            "crash-and-restart run must still drain: {restarted:?}"
        );
        // The restarted controller may need a little re-convergence, but a
        // stateless failover must not derail the run.
        assert!(
            restarted.makespan_s <= res.makespan_s + 2.0 * cfg.slot_len_s,
            "restart cost too high: {} vs {}",
            restarted.makespan_s,
            res.makespan_s
        );
    }

    #[test]
    fn restart_with_no_boundaries_matches_plain_run() {
        let p = plant();
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 1_200.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let mut plain_engine = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let plain = crate::sim::simulate(&p, &reqs, &mut plain_engine, &cfg);
        let mut factory = || -> Box<dyn TrafficEngineer> {
            Box::new(OwanEngine::new(default_topology(&p), OwanConfig::default()))
        };
        let restarted = simulate_with_restarts(&p, &reqs, &mut factory, &cfg, &[]);
        assert_eq!(plain.completions, restarted.completions);
        assert_eq!(plain.makespan_s, restarted.makespan_s);
    }
}
