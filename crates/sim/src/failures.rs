//! Failure handling (§3.4).
//!
//! "Link and switch failures are detected and sent to the controller. The
//! controller removes these links and switches from the physical network,
//! and recomputes the network state with the updated physical network."
//! Controller failure is handled by statelessness: "we only need to store
//! the physical network and the set of all transfers … when the controller
//! fails, we spawn a new instance, which starts to compute and reconfigure
//! the network state at the next time slot."
//!
//! [`degrade_plant`] produces the post-failure physical network;
//! [`simulate_with_failures`] drives an engine through a timeline of
//! failure events, presenting the degraded plant from each event's slot on.

use crate::sim::{plan_is_feasible, PlanError, SimConfig, SimResult};
use owan_core::{SlotInput, TrafficEngineer, Transfer, TransferRequest};
use owan_optical::{FiberId, FiberPlant, SiteId};

const EPS: f64 = 1e-9;

/// A failure event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Failure {
    /// A fiber cut: the fiber disappears from the plant.
    FiberCut(FiberId),
    /// A site (router + ROADM) goes dark: its router ports drop to zero and
    /// all its fibers are removed.
    SiteDown(SiteId),
}

/// A failure at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// When the failure occurs, seconds.
    pub time_s: f64,
    /// What fails.
    pub failure: Failure,
}

/// Rebuilds a plant with the given failures applied (fibers removed, dead
/// sites stripped of ports and regenerators). Site ids are preserved.
pub fn degrade_plant(plant: &FiberPlant, failures: &[Failure]) -> FiberPlant {
    let dead_site = |s: SiteId| {
        failures
            .iter()
            .any(|f| matches!(f, Failure::SiteDown(d) if *d == s))
    };
    let cut_fiber = |f: FiberId| {
        failures
            .iter()
            .any(|x| matches!(x, Failure::FiberCut(c) if *c == f))
    };

    let mut out = FiberPlant::new(plant.params().clone());
    for s in 0..plant.site_count() {
        let site = plant.site(s);
        if dead_site(s) {
            out.add_site(&site.name, 0, 0);
        } else {
            out.add_site(&site.name, site.router_ports, site.regenerators);
        }
    }
    for (id, fiber) in plant.fibers().iter().enumerate() {
        if !cut_fiber(id) && !dead_site(fiber.a) && !dead_site(fiber.b) {
            out.add_fiber(fiber.a, fiber.b, fiber.length_km);
        }
    }
    out
}

/// Like [`crate::sim::simulate`] but with a failure timeline: from the slot
/// containing each event onward, the engine sees the degraded plant.
/// Transfers whose endpoints died can never finish and are reported
/// unfinished.
pub fn simulate_with_failures(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    engine: &mut dyn TrafficEngineer,
    config: &SimConfig,
    events: &[FailureEvent],
) -> SimResult {
    let theta = plant.params().wavelength_capacity_gbps;
    let mut transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    let mut records: Vec<crate::sim::CompletionRecord> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| crate::sim::CompletionRecord {
            id,
            volume_gbits: r.volume_gbits,
            arrival_s: r.arrival_s,
            deadline_s: r.deadline_s,
            completion_s: None,
            gbits_by_deadline: 0.0,
        })
        .collect();

    let mut throughput_series = Vec::new();
    let mut makespan_s: f64 = 0.0;
    let mut slots = 0;
    let mut plan_error: Option<(usize, PlanError)> = None;
    let mut current_plant = plant.clone();
    let mut applied = 0usize;
    // Events sorted by time.
    let mut timeline: Vec<FailureEvent> = events.to_vec();
    timeline.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));

    for slot in 0..config.max_slots {
        let now = slot as f64 * config.slot_len_s;
        slots = slot + 1;

        // Apply failures due by this slot.
        let due = timeline
            .iter()
            .take_while(|e| e.time_s <= now + EPS)
            .count();
        if due > applied {
            let active_failures: Vec<Failure> = timeline[..due].iter().map(|e| e.failure).collect();
            current_plant = degrade_plant(plant, &active_failures);
            applied = due;
        }

        let active: Vec<Transfer> = transfers
            .iter()
            .filter(|t| t.arrival_s <= now + EPS && !t.is_complete())
            .cloned()
            .collect();
        let pending_future = transfers
            .iter()
            .any(|t| t.arrival_s > now + EPS && !t.is_complete());
        if active.is_empty() && !pending_future {
            break;
        }
        // A workload stuck on dead endpoints cannot drain; stop when no
        // active transfer can make progress and nothing new will arrive.
        let any_progress_possible = active.iter().any(|t| {
            current_plant.router_ports(t.src) > 0 && current_plant.router_ports(t.dst) > 0
        });
        if !any_progress_possible && !pending_future {
            break;
        }

        let plan = engine.plan_slot(
            &current_plant,
            &SlotInput {
                transfers: &active,
                slot_len_s: config.slot_len_s,
                now_s: now,
            },
        );
        if let Err(e) = plan_is_feasible(&plan, theta) {
            plan_error = Some((slot, e));
            break;
        }
        throughput_series.push((now, plan.throughput_gbps));

        for alloc in &plan.allocations {
            let rate_alloc = alloc.total_rate();
            let rate = rate_alloc * config.rate_efficiency;
            if rate <= EPS {
                continue;
            }
            let t = &mut transfers[alloc.transfer];
            // Same completion rule as `sim::simulate` (see the comment
            // there about the impaired final sliver).
            if rate_alloc * config.slot_len_s + EPS >= t.remaining_gbits {
                let finish = now + t.remaining_gbits / rate;
                t.remaining_gbits = 0.0;
                records[alloc.transfer].completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            } else {
                t.remaining_gbits -= rate * config.slot_len_s;
            }
        }

        // Numerical-dust floor (see `sim::COMPLETION_FLOOR_GBITS`).
        for (i, t) in transfers.iter_mut().enumerate() {
            if !t.is_complete() && t.remaining_gbits < 1e-6 {
                t.remaining_gbits = 0.0;
                let finish = now + config.slot_len_s;
                records[i].completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            }
        }
    }

    if !records.iter().all(|r| r.completion_s.is_some()) {
        makespan_s = makespan_s.max(slots as f64 * config.slot_len_s);
    }

    SimResult {
        engine: engine.name().to_string(),
        completions: records,
        makespan_s,
        throughput_series,
        slots,
        telemetry: None,
        plan_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{default_topology, OwanConfig, OwanEngine};
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    #[test]
    fn degrade_removes_fibers_and_ports() {
        let p = plant();
        let d = degrade_plant(&p, &[Failure::FiberCut(0), Failure::SiteDown(3)]);
        assert_eq!(d.site_count(), 4);
        assert_eq!(d.router_ports(3), 0);
        // Fiber 0 cut, plus both fibers touching site 3 gone: 4 - 3 = 1.
        assert_eq!(d.fiber_count(), 1);
    }

    #[test]
    fn owan_survives_fiber_cut() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 2_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 150.0,
            failure: Failure::FiberCut(0),
        }];
        let res = simulate_with_failures(&p, &reqs, &mut e, &cfg, &events);
        assert!(
            res.all_completed(),
            "transfer should reroute around the cut"
        );
    }

    #[test]
    fn dead_destination_never_completes() {
        let p = plant();
        let mut e = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let reqs = vec![TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 100_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        }];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            max_slots: 50,
            ..Default::default()
        };
        let events = [FailureEvent {
            time_s: 0.0,
            failure: Failure::SiteDown(2),
        }];
        let res = simulate_with_failures(&p, &reqs, &mut e, &cfg, &events);
        assert!(!res.all_completed());
        assert!(res.slots < 50, "simulation stops early instead of spinning");
    }

    #[test]
    fn controller_failover_is_stateless() {
        // §3.4: a restarted controller resumes from the stored physical
        // network + transfer set. Emulate a crash at slot boundary k by
        // running one engine for the whole workload and another pair of
        // engines split at the boundary: completions must match closely
        // (the replacement starts its annealing from the static topology,
        // so plans may differ slightly, but everything still completes).
        let p = plant();
        let reqs = vec![
            TransferRequest {
                src: 0,
                dst: 1,
                volume_gbits: 800.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
            TransferRequest {
                src: 2,
                dst: 3,
                volume_gbits: 800.0,
                arrival_s: 0.0,
                deadline_s: None,
            },
        ];
        let cfg = SimConfig {
            slot_len_s: 100.0,
            ..Default::default()
        };
        let mut continuous = OwanEngine::new(default_topology(&p), OwanConfig::default());
        let res = crate::sim::simulate(&p, &reqs, &mut continuous, &cfg);
        assert!(res.all_completed());
    }
}
