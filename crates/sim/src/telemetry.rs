//! Per-slot controller telemetry.
//!
//! The simulator and controller publish two views of the same run:
//!
//! * metrics in the attached [`Recorder`] — the `stage.slot` span around
//!   each slot, gauges for the latest active-transfer count, queue depth
//!   and throughput, and one `slot` event per slot;
//! * a structured [`SlotTelemetry`] row per slot, returned inside the
//!   result, splitting each slot's planning wall time into the annealing /
//!   circuit-building / rate-assignment / update-scheduling stages.
//!
//! The per-stage splits work because recorder handles are shared by name:
//! the sim resolves the same `stage.anneal` (etc.) counters the engine's
//! core telemetry writes, and differences of `total_ns` across a slot give
//! that slot's share.

use owan_core::telemetry::names as core_names;
use owan_obs::{Gauge, Recorder, Stage, Value};
use owan_update::UpdateTelemetry;
use serde::{Deserialize, Serialize};

/// Metric names emitted by the simulator/controller loop.
pub mod names {
    /// Span around one whole controller slot (plan + update + delivery).
    pub const STAGE_SLOT: &str = "stage.slot";
    /// Per-slot event carrying the [`super::SlotTelemetry`] fields.
    pub const EVENT_SLOT: &str = "slot";
    /// Latest slot's admitted-and-unfinished transfer count.
    pub const GAUGE_ACTIVE: &str = "slot.active_transfers";
    /// Latest slot's queue depth (active transfers allocated no rate).
    pub const GAUGE_QUEUE: &str = "slot.queue_depth";
    /// Latest slot's allocated throughput, Gbps.
    pub const GAUGE_THROUGHPUT: &str = "slot.throughput_gbps";
}

/// One slot of the controller loop, captured when a recording
/// [`Recorder`] is attached (`None` in results otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotTelemetry {
    /// Slot index.
    pub slot: usize,
    /// Slot start, absolute seconds.
    pub start_s: f64,
    /// Transfers admitted and unfinished at slot start.
    pub active_transfers: usize,
    /// Active transfers that received no allocation this slot (the
    /// starvation guard's wait queue).
    pub queue_depth: usize,
    /// Wall time of the engine's `plan_slot` call.
    pub plan_ns: u64,
    /// Share of `plan_ns` inside the annealing loop.
    pub anneal_ns: u64,
    /// Share spent building optical circuits (inside annealing).
    pub circuits_ns: u64,
    /// Share spent assigning rates (inside annealing).
    pub rates_ns: u64,
    /// Wall time scheduling the slot-to-slot network update.
    pub update_ns: u64,
    /// Operations in the slot's update schedule.
    pub update_ops: usize,
    /// Allocated throughput, Gbps.
    pub throughput_gbps: f64,
}

/// Pre-resolved recorder handles for the simulation loop. The anneal /
/// circuits / rates stages are read-only views onto the counters the
/// engine's core telemetry writes (shared by name).
#[derive(Debug, Clone, Default)]
pub(crate) struct SimTelemetry {
    pub recorder: Recorder,
    pub slot_stage: Stage,
    pub update: UpdateTelemetry,
    pub anneal: Stage,
    pub circuits: Stage,
    pub rates: Stage,
    pub active_gauge: Gauge,
    pub queue_gauge: Gauge,
    pub throughput_gauge: Gauge,
}

impl SimTelemetry {
    pub fn new(recorder: &Recorder) -> Self {
        SimTelemetry {
            recorder: recorder.clone(),
            slot_stage: recorder.stage(names::STAGE_SLOT),
            update: UpdateTelemetry::new(recorder),
            anneal: recorder.stage(core_names::STAGE_ANNEAL),
            circuits: recorder.stage(core_names::STAGE_CIRCUITS),
            rates: recorder.stage(core_names::STAGE_RATES),
            active_gauge: recorder.gauge(names::GAUGE_ACTIVE),
            queue_gauge: recorder.gauge(names::GAUGE_QUEUE),
            throughput_gauge: recorder.gauge(names::GAUGE_THROUGHPUT),
        }
    }

    /// Stage totals right now, for before/after slot differencing.
    pub fn stage_marks(&self) -> StageMarks {
        StageMarks {
            anneal_ns: self.anneal.total_ns(),
            circuits_ns: self.circuits.total_ns(),
            rates_ns: self.rates.total_ns(),
            update_ns: self.update.update.total_ns(),
        }
    }

    /// Publishes a finished slot: gauges, the `slot` event, and the
    /// structured row (which the caller appends to the result).
    pub fn publish_slot(&self, row: &SlotTelemetry) {
        self.active_gauge.set(row.active_transfers as f64);
        self.queue_gauge.set(row.queue_depth as f64);
        self.throughput_gauge.set(row.throughput_gbps);
        self.recorder.event(
            names::EVENT_SLOT,
            &[
                ("slot", Value::from(row.slot)),
                ("start_s", Value::from(row.start_s)),
                ("active_transfers", Value::from(row.active_transfers)),
                ("queue_depth", Value::from(row.queue_depth)),
                ("plan_ns", Value::from(row.plan_ns)),
                ("anneal_ns", Value::from(row.anneal_ns)),
                ("circuits_ns", Value::from(row.circuits_ns)),
                ("rates_ns", Value::from(row.rates_ns)),
                ("update_ns", Value::from(row.update_ns)),
                ("update_ops", Value::from(row.update_ops)),
                ("throughput_gbps", Value::from(row.throughput_gbps)),
            ],
        );
    }
}

/// Snapshot of the core/update stage totals at one instant.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageMarks {
    pub anneal_ns: u64,
    pub circuits_ns: u64,
    pub rates_ns: u64,
    pub update_ns: u64,
}

impl StageMarks {
    /// Elapsed stage time since `earlier`, as the four per-slot fields.
    pub fn since(&self, earlier: &StageMarks) -> (u64, u64, u64, u64) {
        (
            self.anneal_ns - earlier.anneal_ns,
            self.circuits_ns - earlier.circuits_ns,
            self.rates_ns - earlier.rates_ns,
            self.update_ns - earlier.update_ns,
        )
    }
}
