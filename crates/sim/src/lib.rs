//! Flow-level simulation and experiment harness for the Owan evaluation.
//!
//! * [`sim`] — the time-slotted fluid simulator (validated against the
//!   paper's testbed methodology, §5.1),
//! * [`metrics`] — completion time / deadline / makespan metrics,
//! * [`runner`] — engine construction and parallel comparison sweeps,
//! * [`failures`] — link/switch failure experiments (§3.4),
//! * [`validate`] — the simulator-vs-testbed validation (§5.1).
//!
//! # Example: compare Owan against SWAN on the Internet2 testbed
//!
//! ```
//! use owan_sim::runner::{run_comparison, EngineKind, RunnerConfig};
//! use owan_sim::metrics::{self, SizeBin};
//! use owan_topo::internet2_testbed;
//! use owan_workload::{generate, WorkloadConfig};
//!
//! let net = internet2_testbed();
//! let mut wl = WorkloadConfig::testbed(0.5, 42);
//! wl.duration_s = 600.0; // keep the doctest quick
//! let requests: Vec<_> = generate(&net, &wl).into_iter().take(5).collect();
//!
//! let mut cfg = RunnerConfig::default();
//! cfg.anneal_iterations = 40;
//! let results = run_comparison(
//!     &[EngineKind::Owan, EngineKind::Swan],
//!     &net,
//!     &requests,
//!     &cfg,
//! );
//! let (owan_avg, _) = metrics::summary(&results[0], SizeBin::All);
//! let (swan_avg, _) = metrics::summary(&results[1], SizeBin::All);
//! assert!(owan_avg > 0.0 && swan_avg > 0.0);
//! ```

pub mod controller;
pub mod failures;
pub mod metrics;
pub mod runner;
pub mod sim;
pub mod telemetry;
pub mod validate;

pub use controller::{
    run_controller, run_controller_observed, ControllerConfig, ControllerResult, UpdateDiscipline,
};
pub use failures::{
    degrade_plant, degrade_plant_mapped, simulate_with_failures, simulate_with_failures_observed,
    simulate_with_restarts, Failure, FailureEvent,
};
pub use runner::{
    make_engine, run_comparison, run_engine, run_engine_explained, run_engine_observed,
    run_engine_profiled, run_engine_traced, EngineKind, RunnerConfig,
};
pub use sim::{
    build_scope_rows, plan_is_feasible, simulate, simulate_explained, simulate_observed,
    simulate_profiled, simulate_traced, CompletionRecord, PlanError, SimConfig, SimResult,
};
pub use telemetry::SlotTelemetry;
pub use validate::{validate_simulator, ValidationReport};
