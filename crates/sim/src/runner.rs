//! Experiment runner: constructs engines by name and drives whole
//! comparison sweeps, optionally in parallel across engines/loads.

use crate::sim::{
    simulate, simulate_explained, simulate_observed, simulate_profiled, simulate_traced, SimConfig,
    SimResult,
};
use owan_core::{
    default_topology, AnnealConfig, OwanConfig, OwanEngine, SchedulingPolicy, TrafficEngineer,
    TransferRequest,
};
use owan_obs::Recorder;
use owan_te::{
    AmoebaConfig, AmoebaTe, GreedyTe, MaxFlowTe, MaxMinFractTe, RateOnlyTe, RoutingRateTe, SwanTe,
    TempusConfig, TempusTe,
};
use owan_topo::Network;

/// The engines the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The full joint optimization (this paper).
    Owan,
    /// LP max total throughput.
    MaxFlow,
    /// LP max-min served fraction.
    MaxMinFract,
    /// Iterated-LP approximate max-min + throughput.
    Swan,
    /// Time-expanded deadline LP.
    Tempus,
    /// Deadline admission control.
    Amoeba,
    /// Separate-layer greedy (§5.4).
    Greedy,
    /// Rate-only ablation (Fig 10(c)).
    RateOnly,
    /// Routing+rate ablation (Fig 10(c)).
    RoutingRate,
}

impl EngineKind {
    /// Engines used in the deadline-unconstrained comparison (Fig 7/8).
    pub const UNCONSTRAINED: [EngineKind; 4] = [
        EngineKind::Owan,
        EngineKind::MaxFlow,
        EngineKind::MaxMinFract,
        EngineKind::Swan,
    ];

    /// Engines used in the deadline-constrained comparison (Fig 9).
    pub const DEADLINE: [EngineKind; 6] = [
        EngineKind::Owan,
        EngineKind::MaxFlow,
        EngineKind::MaxMinFract,
        EngineKind::Swan,
        EngineKind::Tempus,
        EngineKind::Amoeba,
    ];
}

/// Knobs shared by every engine construction.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Tunnels per site pair for LP baselines.
    pub tunnels_k: usize,
    /// Annealing iterations for Owan (per slot).
    pub anneal_iterations: usize,
    /// Optional wall-clock budget per annealing run (Fig 10(d) sweeps it).
    pub anneal_time_budget_s: Option<f64>,
    /// Starvation guard threshold `t̂` for Owan's rate assignment (§3.2).
    pub starvation_threshold: u32,
    /// Annealing seed.
    pub seed: u64,
    /// Transfer ordering policy for Owan/Greedy/ablations.
    pub policy: SchedulingPolicy,
    /// Parallel annealing chains per slot for Owan (1 = sequential; the
    /// result for N chains is deterministic and never worse than chain 0's).
    pub anneal_chains: usize,
    /// Use the energy-cache fast path in Owan. Plans are bit-identical at
    /// a fixed iteration budget; under `anneal_time_budget_s` the cheaper
    /// evaluations fit more iterations, so plans differ. Off = the naive
    /// reference evaluation, for differential tests/benchmarks.
    pub anneal_use_cache: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            sim: SimConfig::default(),
            tunnels_k: 4,
            anneal_iterations: 200,
            anneal_time_budget_s: None,
            starvation_threshold: owan_core::RateAssignConfig::default().starvation_threshold,
            seed: 1,
            policy: SchedulingPolicy::ShortestJobFirst,
            anneal_chains: 1,
            anneal_use_cache: true,
        }
    }
}

/// Builds a fresh engine of the given kind for `network`.
pub fn make_engine(
    kind: EngineKind,
    network: &Network,
    config: &RunnerConfig,
) -> Box<dyn TrafficEngineer + Send> {
    let theta = network.plant.params().wavelength_capacity_gbps;
    let topo = network.static_topology.clone();
    let k = config.tunnels_k;
    match kind {
        EngineKind::Owan => {
            let owan_cfg = OwanConfig {
                anneal: AnnealConfig {
                    max_iterations: config.anneal_iterations,
                    seed: config.seed,
                    time_budget_s: config.anneal_time_budget_s,
                    use_cache: config.anneal_use_cache,
                    ..Default::default()
                },
                rate: owan_core::RateAssignConfig {
                    starvation_threshold: config.starvation_threshold,
                    ..Default::default()
                },
                policy: config.policy,
                chains: config.anneal_chains,
                ..Default::default()
            };
            let initial = if topo.total_links() > 0 {
                topo
            } else {
                default_topology(&network.plant)
            };
            Box::new(OwanEngine::new(initial, owan_cfg))
        }
        EngineKind::MaxFlow => Box::new(MaxFlowTe::new(topo, theta, k)),
        EngineKind::MaxMinFract => Box::new(MaxMinFractTe::new(topo, theta, k)),
        EngineKind::Swan => Box::new(SwanTe::new(topo, theta, k)),
        EngineKind::Tempus => Box::new(TempusTe::new(topo, theta, k, TempusConfig::default())),
        EngineKind::Amoeba => Box::new(AmoebaTe::new(topo, theta, k, AmoebaConfig::default())),
        EngineKind::Greedy => Box::new(GreedyTe::new(config.policy)),
        EngineKind::RateOnly => Box::new(RateOnlyTe::new(topo, theta, config.policy)),
        EngineKind::RoutingRate => Box::new(RoutingRateTe::new(topo, theta, config.policy)),
    }
}

/// Runs one engine over a workload.
pub fn run_engine(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
) -> SimResult {
    let mut engine = make_engine(kind, network, config);
    simulate(&network.plant, requests, engine.as_mut(), &config.sim)
}

/// [`run_engine`] with a telemetry recorder attached to the engine and
/// the simulation loop. With a disabled recorder this is exactly
/// [`run_engine`].
pub fn run_engine_observed(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
    recorder: &Recorder,
) -> SimResult {
    let mut engine = make_engine(kind, network, config);
    simulate_observed(
        &network.plant,
        requests,
        engine.as_mut(),
        &config.sim,
        recorder,
    )
}

/// [`run_engine_observed`] with a flight recorder attached: the scope
/// collects per-transfer lifecycle state, per-slot flight frames, and
/// the causal span timeline. With a disabled scope this is exactly
/// [`run_engine_observed`].
pub fn run_engine_traced(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
    recorder: &Recorder,
    scope: &owan_scope::ScopeRecorder,
) -> SimResult {
    let mut engine = make_engine(kind, network, config);
    simulate_traced(
        &network.plant,
        requests,
        engine.as_mut(),
        &config.sim,
        recorder,
        scope,
    )
}

/// [`run_engine_traced`] with a region profiler attached on top. With a
/// disabled profiler this is exactly [`run_engine_traced`].
pub fn run_engine_profiled(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
    recorder: &Recorder,
    scope: &owan_scope::ScopeRecorder,
    prof: &owan_core::Profiler,
) -> SimResult {
    let mut engine = make_engine(kind, network, config);
    simulate_profiled(
        &network.plant,
        requests,
        engine.as_mut(),
        &config.sim,
        recorder,
        scope,
        prof,
    )
}

/// [`run_engine_profiled`] with a why recorder attached on top: the
/// recorder joins the other streams into per-transfer causal
/// attribution and online SLO monitors. With a disabled why recorder
/// this is exactly [`run_engine_profiled`].
#[allow(clippy::too_many_arguments)]
pub fn run_engine_explained(
    kind: EngineKind,
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
    recorder: &Recorder,
    scope: &owan_scope::ScopeRecorder,
    prof: &owan_core::Profiler,
    why: &owan_why::WhyRecorder,
) -> SimResult {
    let mut engine = make_engine(kind, network, config);
    simulate_explained(
        &network.plant,
        requests,
        engine.as_mut(),
        &config.sim,
        recorder,
        scope,
        prof,
        why,
    )
}

/// Runs several engines over the same workload, in parallel (one thread
/// per engine via `std::thread::scope`, which joins all threads and
/// propagates panics before returning).
pub fn run_comparison(
    kinds: &[EngineKind],
    network: &Network,
    requests: &[TransferRequest],
    config: &RunnerConfig,
) -> Vec<SimResult> {
    let mut results: Vec<Option<SimResult>> = (0..kinds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &kind) in results.iter_mut().zip(kinds) {
            scope.spawn(move || {
                *slot = Some(run_engine(kind, network, requests, config));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("thread filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_topo::internet2_testbed;
    use owan_workload::{generate, WorkloadConfig};

    fn small_workload() -> (Network, Vec<TransferRequest>) {
        let net = internet2_testbed();
        let mut cfg = WorkloadConfig::testbed(0.5, 42);
        cfg.duration_s = 1_200.0;
        (net.clone(), generate(&net, &cfg))
    }

    fn fast_runner() -> RunnerConfig {
        RunnerConfig {
            sim: SimConfig {
                slot_len_s: 300.0,
                max_slots: 400,
                ..Default::default()
            },
            anneal_iterations: 60,
            ..Default::default()
        }
    }

    #[test]
    fn every_engine_kind_constructs_and_runs() {
        let (net, reqs) = small_workload();
        let reqs: Vec<_> = reqs.into_iter().take(6).collect();
        let cfg = fast_runner();
        for kind in [
            EngineKind::Owan,
            EngineKind::MaxFlow,
            EngineKind::MaxMinFract,
            EngineKind::Swan,
            EngineKind::Tempus,
            EngineKind::Amoeba,
            EngineKind::Greedy,
            EngineKind::RateOnly,
            EngineKind::RoutingRate,
        ] {
            let res = run_engine(kind, &net, &reqs, &cfg);
            assert!(res.all_completed(), "{kind:?} left transfers unfinished");
        }
    }

    #[test]
    fn comparison_runs_in_parallel_and_preserves_order() {
        let (net, reqs) = small_workload();
        let reqs: Vec<_> = reqs.into_iter().take(5).collect();
        let cfg = fast_runner();
        let results = run_comparison(&[EngineKind::MaxFlow, EngineKind::Swan], &net, &reqs, &cfg);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].engine, "MaxFlow");
        assert_eq!(results[1].engine, "SWAN");
    }
}
