//! Synthetic ~40-site ISP backbone.
//!
//! The paper's ISP topology is proprietary; §5.1 describes it as "about 40
//! sites … connected into an irregular mesh". This generator reproduces
//! that structure deterministically from a seed: sites are scattered over a
//! continental-scale plane, connected by a random tour (guaranteeing
//! connectivity) plus nearest-neighbor chords until the target average
//! degree is reached. Fiber lengths are Euclidean distances; regenerators
//! are concentrated at the highest-degree sites, following the practice of
//! the paper's references [14, 15].

use crate::Network;
use owan_core::Topology;
use owan_optical::{FiberPlant, OpticalParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of sites in the generated backbone.
pub const ISP_SITES: usize = 40;

/// Target average network-layer degree of the static topology.
const TARGET_AVG_DEGREE: f64 = 3.2;

/// Generates the ISP backbone. The same seed always yields the same
/// network; the paper's experiments use seed 7.
pub fn isp_backbone(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ISP_SITES;

    // Continental-scale site coordinates (km).
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.random_range(0.0..4_500.0),
                rng.random_range(0.0..2_500.0),
            )
        })
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = coords[a];
        let (bx, by) = coords[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(50.0)
    };

    // Minimum spanning tree for connectivity: fibers follow geography, as
    // in a real backbone (long-haul spans stay within amplifier/ROADM
    // distance of each other).
    let mut links: Vec<(usize, usize)> = Vec::new();
    let mut has = vec![false; n * n];
    let add = |links: &mut Vec<(usize, usize)>, has: &mut Vec<bool>, u: usize, v: usize| {
        let (a, b) = (u.min(v), u.max(v));
        if a != b && !has[a * n + b] {
            has[a * n + b] = true;
            links.push((a, b));
            true
        } else {
            false
        }
    };
    {
        // Prim's algorithm.
        let mut in_tree = vec![false; n];
        in_tree[0] = true;
        for _ in 1..n {
            let mut best: Option<(f64, usize, usize)> = None;
            for u in 0..n {
                if !in_tree[u] {
                    continue;
                }
                for (v, &grown) in in_tree.iter().enumerate() {
                    if grown {
                        continue;
                    }
                    let d = dist(u, v);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("graph incomplete");
            in_tree[v] = true;
            add(&mut links, &mut has, u, v);
        }
    }

    // Nearest-neighbor chords until the average degree target is met.
    let target_links = (TARGET_AVG_DEGREE * n as f64 / 2.0).round() as usize;
    let mut candidates: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    candidates.sort_by(|&(a, b), &(c, d)| dist(a, b).total_cmp(&dist(c, d)));
    for (u, v) in candidates {
        if links.len() >= target_links {
            break;
        }
        add(&mut links, &mut has, u, v);
    }

    // No stub sites: give every degree-1 site a second (nearest) adjacency
    // — backbone POPs are at least dual-homed.
    loop {
        let mut degree = vec![0u32; n];
        for &(u, v) in &links {
            degree[u] += 1;
            degree[v] += 1;
        }
        let Some(stub) = (0..n).find(|&s| degree[s] < 2) else {
            break;
        };
        let nearest = (0..n)
            .filter(|&v| v != stub && !has[stub.min(v) * n + stub.max(v)])
            .min_by(|&a, &b| dist(stub, a).total_cmp(&dist(stub, b)))
            .expect("another site exists");
        add(&mut links, &mut has, stub, nearest);
    }

    // Build static topology and degree-derived ports.
    let mut topo = Topology::empty(n);
    for &(u, v) in &links {
        topo.add_links(u, v, 1);
    }

    // Plant: fibers mirror the static links (the ISP owns one fiber per
    // adjacency) with Euclidean lengths.
    let params = OpticalParams {
        wavelength_capacity_gbps: 100.0,
        wavelengths_per_fiber: 80,
        optical_reach_km: 2_000.0,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    // Regenerator concentration: top-quartile degree sites get 12, others 3.
    let degrees: Vec<u32> = (0..n).map(|s| topo.degree(s)).collect();
    let mut sorted = degrees.clone();
    sorted.sort_unstable();
    let cutoff = sorted[n * 3 / 4];
    for (s, &deg) in degrees.iter().enumerate() {
        let regens = if deg >= cutoff { 12 } else { 3 };
        plant.add_site(&format!("ISP{s:02}"), deg, regens);
    }
    for &(u, v) in &links {
        plant.add_fiber(u, v, dist(u, v));
    }

    Network {
        name: "isp".into(),
        plant,
        static_topology: topo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_sites_irregular_mesh() {
        let net = isp_backbone(7);
        assert_eq!(net.plant.site_count(), 40);
        let avg_degree = 2.0 * net.static_topology.total_links() as f64 / 40.0;
        assert!(
            avg_degree > 2.5 && avg_degree < 4.5,
            "avg degree {avg_degree}"
        );
        net.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = isp_backbone(7);
        let b = isp_backbone(7);
        assert_eq!(a.static_topology, b.static_topology);
        assert_eq!(a.plant.fiber_count(), b.plant.fiber_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = isp_backbone(7);
        let b = isp_backbone(8);
        assert_ne!(a.static_topology, b.static_topology);
    }

    #[test]
    fn degrees_vary() {
        let net = isp_backbone(7);
        let degrees: Vec<u32> = (0..40).map(|s| net.static_topology.degree(s)).collect();
        let min = degrees.iter().min().unwrap();
        let max = degrees.iter().max().unwrap();
        assert!(max > min, "an irregular mesh has degree variance");
        assert!(*min >= 2, "the tour guarantees degree >= 2");
    }

    #[test]
    fn fiber_lengths_reasonable() {
        let net = isp_backbone(7);
        for f in net.plant.fibers() {
            assert!(f.length_km >= 50.0);
            assert!(f.length_km <= 5_200.0);
        }
    }
}
