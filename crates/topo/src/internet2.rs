//! The 9-site Internet2 network of Figure 1.
//!
//! Sites (matching the figure's labels): SEAT, LOSA, SALT, DENV, KANS,
//! HOUS, CHIC, ATLA, WASH. The IP-layer reference topology follows
//! Figure 1(b); fiber distances approximate the physical footprint of
//! Figure 1(a).

use crate::Network;
use owan_core::Topology;
use owan_optical::{FiberPlant, OpticalParams};

/// Site names in id order.
pub const SITES: [&str; 9] = [
    "SEAT", "LOSA", "SALT", "DENV", "KANS", "HOUS", "CHIC", "ATLA", "WASH",
];

/// IP-layer links of Figure 1(b): `(u, v, fiber length km)`.
const LINKS: [(usize, usize, f64); 12] = [
    (0, 2, 1_130.0), // SEAT-SALT
    (0, 1, 1_540.0), // SEAT-LOSA
    (1, 2, 940.0),   // LOSA-SALT
    (1, 5, 2_200.0), // LOSA-HOUS
    (2, 3, 600.0),   // SALT-DENV
    (3, 4, 880.0),   // DENV-KANS
    (4, 6, 660.0),   // KANS-CHIC
    (5, 4, 1_180.0), // HOUS-KANS
    (5, 7, 1_130.0), // HOUS-ATLA
    (6, 7, 950.0),   // CHIC-ATLA
    (6, 8, 960.0),   // CHIC-WASH
    (7, 8, 870.0),   // ATLA-WASH
];

/// The static IP-layer reference topology (Figure 1(b)), one circuit per
/// link.
fn reference_topology() -> Topology {
    let mut t = Topology::empty(9);
    for &(u, v, _) in &LINKS {
        t.add_links(u, v, 1);
    }
    t
}

/// Router ports per site = degree in the reference topology (all ports in
/// use, as on the testbed where reconfiguration re-spends the same ports).
fn ports() -> [u32; 9] {
    let t = reference_topology();
    core::array::from_fn(|s| t.degree(s))
}

/// The paper's hardware testbed (§4.1): nine ROADMs in a **full mesh** of
/// short patch fibers, 15 wavelengths per fiber at 10 Gbps. The full mesh
/// means any network-layer topology Internet2 can form is constructible.
pub fn internet2_testbed() -> Network {
    let params = OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 15,
        optical_reach_km: 10_000.0, // patch fibers: reach never binds
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    let ports = ports();
    for (i, name) in SITES.iter().enumerate() {
        plant.add_site(name, ports[i], 2);
    }
    for i in 0..9 {
        for j in i + 1..9 {
            plant.add_fiber(i, j, 10.0); // lab patch fiber
        }
    }
    Network {
        name: "internet2".into(),
        plant,
        static_topology: reference_topology(),
    }
}

/// A realistic Internet2-scale WAN: fibers follow the physical footprint of
/// Figure 1(a) with geographic distances, 100 Gbps wavelengths, 2,000 km
/// optical reach, and regenerators concentrated at interior sites
/// (SALT, DENV, KANS, CHIC — cf. the regenerator-concentration practice of
/// [14, 15]).
pub fn internet2_wan() -> Network {
    let params = OpticalParams {
        wavelength_capacity_gbps: 100.0,
        wavelengths_per_fiber: 40,
        optical_reach_km: 2_000.0,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    let ports = ports();
    for (i, name) in SITES.iter().enumerate() {
        // Regenerator concentration at interior sites.
        let regens = match *name {
            "SALT" | "DENV" | "KANS" | "CHIC" => 8,
            _ => 2,
        };
        plant.add_site(name, ports[i], regens);
    }
    for &(u, v, km) in &LINKS {
        plant.add_fiber(u, v, km);
    }
    Network {
        name: "internet2-wan".into(),
        plant,
        static_topology: reference_topology(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_sites_twelve_links() {
        let net = internet2_testbed();
        assert_eq!(net.plant.site_count(), 9);
        assert_eq!(net.static_topology.total_links(), 12);
        assert_eq!(net.plant.fiber_count(), 36, "full mesh of 9 sites");
    }

    #[test]
    fn wan_variant_uses_real_fibers() {
        let net = internet2_wan();
        assert_eq!(net.plant.fiber_count(), 12);
        // LOSA-HOUS is the longest span and must exceed the typical reach
        // budget no site-pair is unreachable though.
        assert!(net.plant.fiber_distance(1, 5) <= 2_200.0);
    }

    #[test]
    fn testbed_matches_paper_hardware() {
        let net = internet2_testbed();
        assert_eq!(net.plant.params().wavelengths_per_fiber, 15);
        assert_eq!(net.plant.params().wavelength_capacity_gbps, 10.0);
    }

    #[test]
    fn site_names_resolve() {
        let net = internet2_wan();
        assert_eq!(net.plant.site_by_name("SEAT"), Some(0));
        assert_eq!(net.plant.site_by_name("WASH"), Some(8));
    }

    #[test]
    fn ports_equal_reference_degree() {
        let net = internet2_testbed();
        // SEAT: links to SALT and LOSA.
        assert_eq!(net.plant.router_ports(0), 2);
        // KANS: DENV, CHIC, HOUS.
        assert_eq!(net.plant.router_ports(4), 3);
    }

    #[test]
    fn every_pair_connected_in_wan_plant() {
        let net = internet2_wan();
        for i in 0..9 {
            for j in 0..9 {
                assert!(net.plant.fiber_distance(i, j).is_finite());
            }
        }
    }
}
