//! WAN topologies used in the Owan evaluation (§5.1).
//!
//! Three networks:
//!
//! * [`internet2`] — the 9-site Internet2 footprint of Figure 1, in two
//!   flavors: the paper's *testbed* (full-mesh fiber, 15 wavelengths of
//!   10 Gbps) and a realistic *WAN* fiber plant with geographic distances;
//! * [`isp`] — a ~40-site irregular-mesh ISP backbone (the paper's ISP
//!   traces are proprietary; the generator reproduces the described
//!   structure — see DESIGN.md §2);
//! * [`interdc`] — a ~25-site inter-DC network: "super cores" in a ring,
//!   each serving a cluster of smaller sites.
//!
//! Every constructor returns a [`Network`]: the fiber plant plus the static
//! network-layer topology that fixed-topology baselines (MaxFlow,
//! MaxMinFract, SWAN, Tempus, Amoeba) use, with router port counts sized so
//! the static topology consumes exactly the available ports — reconfiguring
//! then re-spends the same ports, as on the paper's testbed.

pub mod interdc;
pub mod internet2;
pub mod isp;

use owan_core::Topology;
use owan_optical::FiberPlant;

/// Why a [`Network`] failed [`Network::validate`] — the static topology
/// does not match the plant it ships with.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkValidationError {
    /// The static topology asks for more links at some site than its
    /// router has ports.
    PortsExceeded {
        /// Network name.
        network: String,
    },
    /// The static topology leaves some router site unreachable.
    NotConnected {
        /// Network name.
        network: String,
    },
    /// A router site leaves ports unused — on the testbed every port
    /// drives a wavelength, so the static topology must spend them all.
    PortsUnused {
        /// Network name.
        network: String,
        /// Offending site.
        site: usize,
        /// Ports the static topology uses at the site.
        used: u32,
        /// Ports the router actually has.
        available: u32,
    },
}

impl std::fmt::Display for NetworkValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkValidationError::PortsExceeded { network } => {
                write!(f, "{network}: static topology exceeds router ports")
            }
            NetworkValidationError::NotConnected { network } => {
                write!(f, "{network}: static topology does not connect routers")
            }
            NetworkValidationError::PortsUnused {
                network,
                site,
                used,
                available,
            } => write!(
                f,
                "{network}: site {site} uses {used} of {available} ports \
                 (must use all, as on the testbed)"
            ),
        }
    }
}

impl std::error::Error for NetworkValidationError {}

/// A named evaluation network: physical plant + static reference topology.
#[derive(Debug, Clone)]
pub struct Network {
    /// Short name used in result tables ("internet2", "isp", "interdc").
    pub name: String,
    /// The physical infrastructure.
    pub plant: FiberPlant,
    /// The static network-layer topology used by fixed-topology baselines
    /// and as Owan's initial state.
    pub static_topology: Topology,
}

impl Network {
    /// Per-site relative demand weights used by the workload generator
    /// (heavier sites source/sink more traffic). Derived from static-
    /// topology degree — a standard gravity-model proxy when real traces
    /// are unavailable.
    pub fn site_weights(&self) -> Vec<f64> {
        (0..self.plant.site_count())
            .map(|s| self.static_topology.degree(s) as f64)
            .collect()
    }

    /// Total router-port capacity of the network, Gbps (each port drives
    /// one wavelength of capacity θ). An upper bound on instantaneous
    /// throughput; used to calibrate workload load factors.
    pub fn total_port_capacity_gbps(&self) -> f64 {
        let theta = self.plant.params().wavelength_capacity_gbps;
        let ports: u32 = (0..self.plant.site_count())
            .map(|s| self.plant.router_ports(s))
            .sum();
        // Each link consumes two ports, so the usable simultaneous
        // capacity is half the port-rate sum.
        ports as f64 * theta / 2.0
    }

    /// Validates internal consistency (ports cover the static topology,
    /// topology connects all routers). Returns a typed violation on
    /// failure; used by tests for every shipped network.
    pub fn validate(&self) -> Result<(), NetworkValidationError> {
        if !self.static_topology.ports_feasible(&self.plant) {
            return Err(NetworkValidationError::PortsExceeded {
                network: self.name.clone(),
            });
        }
        if !self.static_topology.connects_routers(&self.plant) {
            return Err(NetworkValidationError::NotConnected {
                network: self.name.clone(),
            });
        }
        for s in 0..self.plant.site_count() {
            if self.plant.site(s).has_router()
                && self.static_topology.degree(s) != self.plant.router_ports(s)
            {
                return Err(NetworkValidationError::PortsUnused {
                    network: self.name.clone(),
                    site: s,
                    used: self.static_topology.degree(s),
                    available: self.plant.router_ports(s),
                });
            }
        }
        Ok(())
    }
}

pub use interdc::inter_dc;
pub use internet2::{internet2_testbed, internet2_wan};
pub use isp::isp_backbone;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_validate() {
        for net in [
            internet2_testbed(),
            internet2_wan(),
            isp_backbone(7),
            inter_dc(7),
        ] {
            net.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn site_weights_match_degree() {
        let net = internet2_testbed();
        let w = net.site_weights();
        for (s, &weight) in w.iter().enumerate() {
            assert_eq!(weight, net.static_topology.degree(s) as f64);
        }
    }

    #[test]
    fn port_capacity_positive() {
        assert!(internet2_testbed().total_port_capacity_gbps() > 0.0);
        assert!(isp_backbone(1).total_port_capacity_gbps() > 0.0);
    }
}
