//! Synthetic ~25-site inter-DC network.
//!
//! §5.1: "The inter-DC network has about 25 sites. There are several sites
//! called 'super cores' that are connected to many smaller sites, and the
//! super cores are connected in a ring topology." This generator builds
//! exactly that shape: `SUPER_CORES` hubs in a ring (with doubled ring
//! capacity), each serving a cluster of leaf data centers, plus a few
//! leaf-to-leaf shortcuts inside clusters.

use crate::Network;
use owan_core::Topology;
use owan_optical::{FiberPlant, OpticalParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of super-core hub sites.
pub const SUPER_CORES: usize = 4;

/// Leaf data centers per super core.
pub const LEAVES_PER_CORE: usize = 5;

/// Total sites (`SUPER_CORES * (1 + LEAVES_PER_CORE)`).
pub const INTERDC_SITES: usize = SUPER_CORES * (1 + LEAVES_PER_CORE);

/// Generates the inter-DC network deterministically from a seed.
pub fn inter_dc(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = INTERDC_SITES;

    // Ids: 0..SUPER_CORES are the cores; leaves follow, grouped by core.
    let core = |c: usize| c;
    let leaf = |c: usize, l: usize| SUPER_CORES + c * LEAVES_PER_CORE + l;

    let mut topo = Topology::empty(n);
    // Super-core ring, doubled (two circuits per ring adjacency).
    for c in 0..SUPER_CORES {
        topo.add_links(core(c), core((c + 1) % SUPER_CORES), 2);
    }
    // Each leaf dual-homed to its core.
    for c in 0..SUPER_CORES {
        for l in 0..LEAVES_PER_CORE {
            topo.add_links(core(c), leaf(c, l), 2);
        }
    }
    // One intra-cluster leaf-leaf shortcut per cluster.
    for c in 0..SUPER_CORES {
        let a = rng.random_range(0..LEAVES_PER_CORE);
        let mut b = rng.random_range(0..LEAVES_PER_CORE);
        if a == b {
            b = (b + 1) % LEAVES_PER_CORE;
        }
        topo.add_links(leaf(c, a), leaf(c, b), 1);
    }

    // Geography: cores on a square, leaves scattered around their core.
    // Core spacing stays within the 2,000 km optical reach so every ring
    // span is a single all-optical segment.
    let core_pos: [(f64, f64); 4] = [
        (800.0, 800.0),
        (2_400.0, 800.0),
        (2_400.0, 1_900.0),
        (800.0, 1_900.0),
    ];
    let mut coords = vec![(0.0, 0.0); n];
    for c in 0..SUPER_CORES {
        coords[core(c)] = core_pos[c];
        for l in 0..LEAVES_PER_CORE {
            let (cx, cy) = core_pos[c];
            coords[leaf(c, l)] = (
                cx + rng.random_range(-500.0..500.0),
                cy + rng.random_range(-400.0..400.0),
            );
        }
    }
    let dist = |a: usize, b: usize| -> f64 {
        let (ax, ay) = coords[a];
        let (bx, by) = coords[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt().max(30.0)
    };

    let params = OpticalParams {
        wavelength_capacity_gbps: 100.0,
        wavelengths_per_fiber: 80,
        optical_reach_km: 2_000.0,
        ..Default::default()
    };
    let mut plant = FiberPlant::new(params);
    for s in 0..n {
        let is_core = s < SUPER_CORES;
        let regens = if is_core { 16 } else { 2 };
        plant.add_site(
            &if is_core {
                format!("CORE{s}")
            } else {
                format!("DC{s:02}")
            },
            topo.degree(s),
            regens,
        );
    }
    // Fibers mirror the adjacency (one fiber pair per distinct adjacency).
    for (u, v, _m) in topo.links() {
        plant.add_fiber(u, v, dist(u, v));
    }

    Network {
        name: "interdc".into(),
        plant,
        static_topology: topo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_four_sites() {
        let net = inter_dc(7);
        assert_eq!(net.plant.site_count(), 24);
        net.validate().unwrap();
    }

    #[test]
    fn cores_form_doubled_ring() {
        let net = inter_dc(7);
        for c in 0..SUPER_CORES {
            let next = (c + 1) % SUPER_CORES;
            assert_eq!(net.static_topology.multiplicity(c, next), 2);
        }
    }

    #[test]
    fn leaves_dual_homed() {
        let net = inter_dc(7);
        for c in 0..SUPER_CORES {
            for l in 0..LEAVES_PER_CORE {
                let leaf = SUPER_CORES + c * LEAVES_PER_CORE + l;
                assert_eq!(net.static_topology.multiplicity(c, leaf), 2);
            }
        }
    }

    #[test]
    fn cores_have_many_ports() {
        let net = inter_dc(7);
        // Core degree: 2 ring neighbors x2 + 5 leaves x2 = 14.
        for c in 0..SUPER_CORES {
            assert_eq!(net.plant.router_ports(c), 14);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(inter_dc(3).static_topology, inter_dc(3).static_topology);
    }
}
