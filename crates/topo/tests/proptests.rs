//! Property tests for the topology generators: every seed must yield a
//! valid, connected, optically-realizable network.

use owan_core::{build_topology, CircuitBuildConfig};
use owan_topo::{inter_dc, isp_backbone};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn isp_generator_valid_for_every_seed(seed in any::<u64>()) {
        let net = isp_backbone(seed);
        net.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Connected fiber plant.
        for s in 1..net.plant.site_count() {
            prop_assert!(net.plant.fiber_distance(0, s).is_finite());
        }
        // The static topology must be buildable in full on its own plant —
        // otherwise the fixed-topology baselines assume capacity that the
        // optical layer cannot deliver.
        let fd = net.plant.fiber_distance_matrix();
        let built = build_topology(
            &net.plant,
            &net.static_topology,
            &fd,
            &CircuitBuildConfig::default(),
        );
        prop_assert_eq!(
            built.achieved.total_links(),
            net.static_topology.total_links(),
            "static ISP topology not fully realizable"
        );
    }

    #[test]
    fn interdc_generator_valid_for_every_seed(seed in any::<u64>()) {
        let net = inter_dc(seed);
        net.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let fd = net.plant.fiber_distance_matrix();
        let built = build_topology(
            &net.plant,
            &net.static_topology,
            &fd,
            &CircuitBuildConfig::default(),
        );
        prop_assert_eq!(
            built.achieved.total_links(),
            net.static_topology.total_links(),
            "static inter-DC topology not fully realizable"
        );
    }
}
