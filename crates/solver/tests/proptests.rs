//! Property tests for the LP solver.
//!
//! The strongest oracle available offline is the max-flow/min-cut theorem:
//! a single-commodity path-based MCF given *all* simple paths must equal the
//! edge-based maximum flow (flow decomposition), which `owan_graph::maxflow`
//! computes independently via Dinic's algorithm. Further properties check
//! feasibility of every returned allocation.

use owan_graph::{max_flow, FlowNetwork};
use owan_solver::{LinearProgram, McfProblem};
use proptest::prelude::*;

/// Random directed capacitated graph on `n` nodes as an edge list.
fn random_edges(n: usize, m: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (3..=n).prop_flat_map(move |nodes| {
        proptest::collection::vec((0..nodes, 0..nodes, 1u32..20), 1..=m).prop_map(move |raw| {
            let edges: Vec<(usize, usize, f64)> = raw
                .into_iter()
                .filter(|&(u, v, _)| u != v)
                .map(|(u, v, c)| (u, v, c as f64))
                .collect();
            (nodes, edges)
        })
    })
}

/// All simple paths from src to dst as lists of edge indices (for small
/// graphs only).
fn all_simple_paths(
    n: usize,
    edges: &[(usize, usize, f64)],
    src: usize,
    dst: usize,
) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut visited = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    fn rec(
        cur: usize,
        dst: usize,
        edges: &[(usize, usize, f64)],
        visited: &mut [bool],
        stack: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur == dst {
            out.push(stack.clone());
            return;
        }
        visited[cur] = true;
        for (i, &(u, v, _)) in edges.iter().enumerate() {
            if u == cur && !visited[v] {
                stack.push(i);
                rec(v, dst, edges, visited, stack, out);
                stack.pop();
            }
        }
        visited[cur] = false;
    }
    rec(src, dst, edges, &mut visited, &mut stack, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lp_single_commodity_equals_dinic((n, edges) in random_edges(6, 10)) {
        let (src, dst) = (0, n - 1);
        // Edge-based oracle.
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let oracle = max_flow(&mut net, src, dst);

        // Path-based LP over all simple paths.
        let paths = all_simple_paths(n, &edges, src, dst);
        let mut mcf = McfProblem::new(edges.iter().map(|&(_, _, c)| c).collect());
        mcf.add_commodity(1e9, paths);
        let sol = mcf.max_throughput();

        prop_assert!(
            (sol.total_throughput - oracle).abs() < 1e-6,
            "LP {} vs Dinic {}", sol.total_throughput, oracle
        );
    }

    #[test]
    fn lp_solutions_always_feasible((n, edges) in random_edges(6, 12), demands in proptest::collection::vec(1u32..30, 1..4)) {
        let caps: Vec<f64> = edges.iter().map(|&(_, _, c)| c).collect();
        let mut mcf = McfProblem::new(caps.clone());
        for (i, d) in demands.iter().enumerate() {
            let src = i % n;
            let dst = (i + n / 2) % n;
            if src == dst { continue; }
            let mut paths = all_simple_paths(n, &edges, src, dst);
            paths.truncate(6);
            mcf.add_commodity(*d as f64, paths);
        }
        let sol = mcf.max_throughput();
        let loads = sol.link_loads(&mcf);
        for (l, &load) in loads.iter().enumerate() {
            prop_assert!(load <= caps[l] + 1e-6, "link {l}: {load} > {}", caps[l]);
        }
        for f in 0..mcf.commodity_count() {
            prop_assert!(sol.commodity_rate(f) <= mcf.demand(f) + 1e-6);
            for r in &sol.rates[f] {
                prop_assert!(*r >= -1e-9);
            }
        }
    }

    #[test]
    fn max_min_alpha_is_attained((n, edges) in random_edges(6, 12)) {
        let caps: Vec<f64> = edges.iter().map(|&(_, _, c)| c).collect();
        let mut mcf = McfProblem::new(caps);
        let pairs = [(0usize, n - 1), (n - 1, 0), (1 % n, n / 2)];
        for &(s, t) in &pairs {
            if s == t { continue; }
            let mut paths = all_simple_paths(n, &edges, s, t);
            paths.truncate(6);
            mcf.add_commodity(10.0, paths);
        }
        let (alpha, sol) = mcf.max_min_fraction();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&alpha));
        // Every commodity with at least one path is served >= alpha * demand.
        for f in 0..mcf.commodity_count() {
            if !sol.rates[f].is_empty() {
                prop_assert!(
                    sol.commodity_rate(f) >= alpha * mcf.demand(f) - 1e-6,
                    "commodity {f} below fair share"
                );
            }
        }
    }

    #[test]
    fn random_small_lps_satisfy_constraints(
        nv in 1usize..5,
        rows in proptest::collection::vec(
            (proptest::collection::vec(0u32..10, 1..5), 1u32..50),
            1..6,
        ),
        obj in proptest::collection::vec(0u32..10, 1..5),
    ) {
        let mut lp = LinearProgram::maximize(nv);
        for (i, &c) in obj.iter().take(nv).enumerate() {
            lp.set_objective(i, c as f64);
        }
        let mut stored = Vec::new();
        for (coeffs, rhs) in &rows {
            let cs: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| (i % nv, c as f64))
                .collect();
            lp.add_le(&cs, *rhs as f64);
            stored.push((cs, *rhs as f64));
        }
        if let Some(sol) = lp.solve().optimal() {
            for (cs, rhs) in &stored {
                let lhs: f64 = cs.iter().map(|&(v, c)| c * sol.x[v]).sum();
                prop_assert!(lhs <= rhs + 1e-6, "violated: {lhs} > {rhs}");
            }
            for &v in &sol.x {
                prop_assert!(v >= -1e-9);
            }
        }
        // Note: objective may be unbounded when some variable has positive
        // objective and never appears in a constraint; both outcomes are fine.
    }
}
