//! Path-based multicommodity-flow LP builder.
//!
//! All the fixed-topology baselines in the paper (§5.1) solve variants of
//! the same LP: transfers are commodities, each routed over a small set of
//! candidate paths (tunnels), subject to link capacities. This module
//! expresses those variants over abstract *link indices* so it stays
//! independent of any graph representation:
//!
//! * [`McfProblem::max_throughput`] — MaxFlow: maximize total served rate,
//! * [`McfProblem::max_min_fraction`] — MaxMinFract: maximize the minimum
//!   served fraction,
//! * [`McfProblem::max_throughput_bounded`] — the inner LP of SWAN's
//!   approximate max-min iteration (per-commodity fraction floors/ceilings).

use crate::simplex::{LinearProgram, LpOutcome};

/// Identifies one rate variable `r_{f,p}`: commodity `f`, path index `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathVar {
    /// Commodity index.
    pub commodity: usize,
    /// Path index within the commodity.
    pub path: usize,
}

#[derive(Debug, Clone)]
struct Commodity {
    demand: f64,
    /// Each path is the list of link indices it crosses.
    paths: Vec<Vec<usize>>,
}

/// A path-based MCF instance.
#[derive(Debug, Clone, Default)]
pub struct McfProblem {
    link_capacity: Vec<f64>,
    commodities: Vec<Commodity>,
}

/// A solved rate allocation.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// `rates[f][p]` = rate of commodity `f` on its `p`-th path.
    pub rates: Vec<Vec<f64>>,
    /// Sum of all rates.
    pub total_throughput: f64,
}

impl McfSolution {
    /// Total rate served to commodity `f`.
    pub fn commodity_rate(&self, f: usize) -> f64 {
        self.rates[f].iter().sum()
    }

    /// Load placed on each link by this allocation, given the problem.
    pub fn link_loads(&self, problem: &McfProblem) -> Vec<f64> {
        let mut load = vec![0.0; problem.link_capacity.len()];
        for (f, c) in problem.commodities.iter().enumerate() {
            for (p, path) in c.paths.iter().enumerate() {
                for &l in path {
                    load[l] += self.rates[f][p];
                }
            }
        }
        load
    }
}

impl McfProblem {
    /// A problem over links with the given capacities.
    pub fn new(link_capacity: Vec<f64>) -> Self {
        assert!(
            link_capacity.iter().all(|&c| c >= 0.0 && c.is_finite()),
            "capacities must be finite and non-negative"
        );
        McfProblem {
            link_capacity,
            commodities: Vec::new(),
        }
    }

    /// Adds a commodity with `demand` (rate units) and candidate `paths`
    /// (each a list of link indices). Returns the commodity index. A
    /// commodity with no paths simply receives zero rate.
    pub fn add_commodity(&mut self, demand: f64, paths: Vec<Vec<usize>>) -> usize {
        assert!(
            demand >= 0.0 && demand.is_finite(),
            "demand must be non-negative"
        );
        for p in &paths {
            for &l in p {
                assert!(l < self.link_capacity.len(), "link index {l} out of range");
            }
        }
        self.commodities.push(Commodity { demand, paths });
        self.commodities.len() - 1
    }

    /// Number of commodities.
    pub fn commodity_count(&self) -> usize {
        self.commodities.len()
    }

    /// Demand of commodity `f`.
    pub fn demand(&self, f: usize) -> f64 {
        self.commodities[f].demand
    }

    /// Builds the variable layout and the base LP (link capacity and
    /// per-commodity demand-ceiling constraints). Returns `(lp, var_index)`
    /// where `var_index[f][p]` is the LP variable of `r_{f,p}`.
    fn base_lp(&self, demand_ceiling: bool) -> (LinearProgram, Vec<Vec<usize>>) {
        let n_vars: usize = self.commodities.iter().map(|c| c.paths.len()).sum();
        let mut lp = LinearProgram::maximize(n_vars);
        let mut var_index = Vec::with_capacity(self.commodities.len());
        let mut next = 0;
        for c in &self.commodities {
            let vars: Vec<usize> = (0..c.paths.len()).map(|p| next + p).collect();
            next += c.paths.len();
            var_index.push(vars);
        }

        // Link capacity rows.
        let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.link_capacity.len()];
        for (f, c) in self.commodities.iter().enumerate() {
            for (p, path) in c.paths.iter().enumerate() {
                for &l in path {
                    per_link[l].push((var_index[f][p], 1.0));
                }
            }
        }
        for (l, coeffs) in per_link.iter().enumerate() {
            if !coeffs.is_empty() {
                lp.add_le(coeffs, self.link_capacity[l]);
            }
        }

        // Demand ceilings.
        if demand_ceiling {
            for (f, c) in self.commodities.iter().enumerate() {
                if !c.paths.is_empty() {
                    let coeffs: Vec<(usize, f64)> =
                        var_index[f].iter().map(|&v| (v, 1.0)).collect();
                    lp.add_le(&coeffs, c.demand);
                }
            }
        }

        (lp, var_index)
    }

    fn extract(&self, var_index: &[Vec<usize>], x: &[f64]) -> McfSolution {
        let rates: Vec<Vec<f64>> = var_index
            .iter()
            .map(|vars| vars.iter().map(|&v| x[v].max(0.0)).collect())
            .collect();
        let total_throughput = rates.iter().flatten().sum();
        McfSolution {
            rates,
            total_throughput,
        }
    }

    /// MaxFlow baseline: maximize total served rate, each commodity capped
    /// at its demand.
    pub fn max_throughput(&self) -> McfSolution {
        let (mut lp, var_index) = self.base_lp(true);
        for vars in &var_index {
            for &v in vars {
                lp.set_objective(v, 1.0);
            }
        }
        let sol = lp
            .solve()
            .expect_optimal("max_throughput LP is feasible (0 is feasible)");
        self.extract(&var_index, &sol.x)
    }

    /// MaxMinFract baseline: maximize the minimum fraction `α` of demand
    /// served across commodities (commodities without paths or with zero
    /// demand are excluded from the min), then the allocation is whatever
    /// the LP chose at optimum. Returns `(α, solution)`.
    pub fn max_min_fraction(&self) -> (f64, McfSolution) {
        let (mut lp, var_index) = self.base_lp(true);
        let alpha = lp.add_var();
        lp.set_objective(alpha, 1.0);
        lp.add_le(&[(alpha, 1.0)], 1.0);
        let mut any = false;
        for (f, c) in self.commodities.iter().enumerate() {
            if c.paths.is_empty() || c.demand <= 0.0 {
                continue;
            }
            any = true;
            // sum_p r_{f,p} - d_f * α >= 0
            let mut coeffs: Vec<(usize, f64)> = var_index[f].iter().map(|&v| (v, 1.0)).collect();
            coeffs.push((alpha, -c.demand));
            lp.add_ge(&coeffs, 0.0);
        }
        if !any {
            return (0.0, self.extract(&var_index, &vec![0.0; lp.n_vars()]));
        }
        let sol = lp.solve().expect_optimal("max_min LP is feasible (α=0)");
        let a = sol.x[alpha].clamp(0.0, 1.0);
        (a, self.extract(&var_index, &sol.x))
    }

    /// SWAN inner LP: maximize total throughput subject to per-commodity
    /// served-rate bounds `floor[f] <= rate_f <= ceil[f]` (absolute rates,
    /// not fractions). Returns `None` if the bounds are infeasible.
    pub fn max_throughput_bounded(&self, floor: &[f64], ceil: &[f64]) -> Option<McfSolution> {
        assert_eq!(floor.len(), self.commodities.len());
        assert_eq!(ceil.len(), self.commodities.len());
        let (mut lp, var_index) = self.base_lp(false);
        for (f, c) in self.commodities.iter().enumerate() {
            if c.paths.is_empty() {
                continue;
            }
            let coeffs: Vec<(usize, f64)> = var_index[f].iter().map(|&v| (v, 1.0)).collect();
            lp.add_le(&coeffs, ceil[f].min(c.demand));
            if floor[f] > 0.0 {
                lp.add_ge(&coeffs, floor[f]);
            }
            for &v in &var_index[f] {
                lp.set_objective(v, 1.0);
            }
        }
        match lp.solve() {
            LpOutcome::Optimal(sol) => Some(self.extract(&var_index, &sol.x)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two links in series (0,1) and two parallel one-link paths.
    #[test]
    fn single_commodity_single_path() {
        let mut p = McfProblem::new(vec![10.0, 5.0]);
        p.add_commodity(100.0, vec![vec![0, 1]]);
        let s = p.max_throughput();
        assert!((s.total_throughput - 5.0).abs() < 1e-7, "series bottleneck");
    }

    #[test]
    fn demand_caps_rate() {
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(3.0, vec![vec![0]]);
        let s = p.max_throughput();
        assert!((s.total_throughput - 3.0).abs() < 1e-7);
    }

    #[test]
    fn two_commodities_share_link() {
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(8.0, vec![vec![0]]);
        p.add_commodity(8.0, vec![vec![0]]);
        let s = p.max_throughput();
        assert!((s.total_throughput - 10.0).abs() < 1e-7);
        let loads = s.link_loads(&p);
        assert!(loads[0] <= 10.0 + 1e-7);
    }

    #[test]
    fn multipath_splits() {
        // Two disjoint paths of capacity 4 and 6; demand 10 uses both fully.
        let mut p = McfProblem::new(vec![4.0, 6.0]);
        p.add_commodity(10.0, vec![vec![0], vec![1]]);
        let s = p.max_throughput();
        assert!((s.total_throughput - 10.0).abs() < 1e-7);
        assert!((s.rates[0][0] - 4.0).abs() < 1e-7);
        assert!((s.rates[0][1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn max_min_fraction_fair() {
        // Two commodities share a 10-unit link, demands 10 and 10:
        // max-min α = 0.5.
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(10.0, vec![vec![0]]);
        p.add_commodity(10.0, vec![vec![0]]);
        let (alpha, s) = p.max_min_fraction();
        assert!((alpha - 0.5).abs() < 1e-7, "alpha = {alpha}");
        assert!((s.commodity_rate(0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_alpha_capped_at_one() {
        let mut p = McfProblem::new(vec![100.0]);
        p.add_commodity(1.0, vec![vec![0]]);
        let (alpha, _) = p.max_min_fraction();
        assert!((alpha - 1.0).abs() < 1e-7);
    }

    #[test]
    fn pathless_commodity_ignored_in_min() {
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(10.0, vec![vec![0]]);
        p.add_commodity(10.0, vec![]); // unreachable commodity
        let (alpha, s) = p.max_min_fraction();
        assert!(alpha > 0.9, "unreachable commodity must not force α to 0");
        assert_eq!(s.commodity_rate(1), 0.0);
    }

    #[test]
    fn bounded_floor_enforced() {
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(10.0, vec![vec![0]]);
        p.add_commodity(10.0, vec![vec![0]]);
        let s = p
            .max_throughput_bounded(&[7.0, 0.0], &[10.0, 10.0])
            .expect("feasible");
        assert!(s.commodity_rate(0) >= 7.0 - 1e-7);
        assert!(s.total_throughput <= 10.0 + 1e-7);
    }

    #[test]
    fn bounded_infeasible_floors() {
        let mut p = McfProblem::new(vec![10.0]);
        p.add_commodity(10.0, vec![vec![0]]);
        p.add_commodity(10.0, vec![vec![0]]);
        assert!(p
            .max_throughput_bounded(&[8.0, 8.0], &[10.0, 10.0])
            .is_none());
    }

    #[test]
    fn empty_problem() {
        let p = McfProblem::new(vec![10.0]);
        let s = p.max_throughput();
        assert_eq!(s.total_throughput, 0.0);
        let (alpha, _) = p.max_min_fraction();
        assert_eq!(alpha, 0.0);
    }

    #[test]
    fn link_loads_respect_capacity() {
        let mut p = McfProblem::new(vec![3.0, 4.0, 2.0]);
        p.add_commodity(10.0, vec![vec![0, 1], vec![2]]);
        p.add_commodity(10.0, vec![vec![1], vec![0, 2]]);
        let s = p.max_throughput();
        let loads = s.link_loads(&p);
        for (l, &load) in loads.iter().enumerate() {
            assert!(
                load <= p.link_capacity[l] + 1e-6,
                "link {l} overloaded: {load}"
            );
        }
    }
}
