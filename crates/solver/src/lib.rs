//! Linear-programming substrate for the Owan reproduction.
//!
//! The network-layer-only baselines the paper compares against (MaxFlow,
//! MaxMinFract, SWAN, Tempus — §5.1) are all linear programs over per-path
//! transfer rates. Production systems hand these to a commercial solver; no
//! offline Rust crate of adequate quality exists, so this crate implements a
//! dense **two-phase primal simplex** from scratch (see DESIGN.md §2). The
//! TE LPs are small (a few thousand variables, a few hundred constraints),
//! well inside dense-tableau territory.
//!
//! * [`LinearProgram`] / [`LpOutcome`] — the general solver,
//! * [`mcf`] — a path-based multicommodity-flow LP builder shared by the
//!   baseline TE algorithms.
//!
//! # Example
//!
//! ```
//! use owan_solver::{LinearProgram, LpOutcome};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x <= 2,  x,y >= 0
//! let mut lp = LinearProgram::maximize(2);
//! lp.set_objective(0, 3.0);
//! lp.set_objective(1, 2.0);
//! lp.add_le(&[(0, 1.0), (1, 1.0)], 4.0);
//! lp.add_le(&[(0, 1.0)], 2.0);
//! match lp.solve() {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - 10.0).abs() < 1e-9);
//!         assert!((sol.x[0] - 2.0).abs() < 1e-9);
//!         assert!((sol.x[1] - 2.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

pub mod mcf;
pub mod simplex;

pub use mcf::{McfProblem, McfSolution, PathVar};
pub use simplex::{LinearProgram, LpOutcome, LpSolution};
