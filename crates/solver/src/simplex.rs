//! Dense two-phase primal simplex.
//!
//! Supports `<=`, `>=`, and `=` constraints with free sign on the right-hand
//! side and non-negative structural variables. Phase 1 drives artificial
//! variables out of the basis; phase 2 optimizes the user objective. Dantzig
//! pricing with a Bland's-rule fallback guarantees termination on degenerate
//! instances.

/// Numerical tolerance used throughout the solver.
const EPS: f64 = 1e-9;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rel {
    Le,
    Ge,
    Eq,
}

#[derive(Debug, Clone)]
struct Row {
    /// Sparse coefficients `(var, coeff)`.
    coeffs: Vec<(usize, f64)>,
    rel: Rel,
    rhs: f64,
}

/// A linear program over non-negative variables `x[0..n]`.
///
/// Build with [`LinearProgram::maximize`] or [`LinearProgram::minimize`],
/// add constraints, then call [`solve`](LinearProgram::solve).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
    maximize: bool,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value (in the user's sense: maximized or minimized).
    pub objective: f64,
    /// Simplex pivot count (phase 1 + phase 2), for diagnostics.
    pub iterations: usize,
}

/// Outcome of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal basic feasible solution.
    Optimal(LpSolution),
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution; panics otherwise.
    pub fn expect_optimal(self, msg: &str) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }

    /// The optimal solution, if any.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

impl LinearProgram {
    /// A maximization LP with `n_vars` non-negative variables and zero
    /// objective coefficients.
    pub fn maximize(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
            maximize: true,
        }
    }

    /// A minimization LP.
    pub fn minimize(n_vars: usize) -> Self {
        LinearProgram {
            maximize: false,
            ..Self::maximize(n_vars)
        }
    }

    /// Number of structural variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds a fresh variable (objective coefficient 0) and returns its index.
    pub fn add_var(&mut self) -> usize {
        self.objective.push(0.0);
        self.n_vars += 1;
        self.n_vars - 1
    }

    /// Sets the objective coefficient of `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n_vars, "variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds `sum coeffs <= rhs`.
    pub fn add_le(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Rel::Le, rhs);
    }

    /// Adds `sum coeffs >= rhs`.
    pub fn add_ge(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Rel::Ge, rhs);
    }

    /// Adds `sum coeffs == rhs`.
    pub fn add_eq(&mut self, coeffs: &[(usize, f64)], rhs: f64) {
        self.add_row(coeffs, Rel::Eq, rhs);
    }

    fn add_row(&mut self, coeffs: &[(usize, f64)], rel: Rel, rhs: f64) {
        for &(v, c) in coeffs {
            assert!(v < self.n_vars, "variable {v} out of range");
            assert!(c.is_finite(), "non-finite coefficient");
        }
        assert!(rhs.is_finite(), "non-finite rhs");
        self.rows.push(Row {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Dense simplex tableau. Rows are maintained in `B^{-1}A` form.
struct Tableau {
    m: usize,
    /// Total columns: structural + slack/surplus + artificial.
    n: usize,
    n_struct: usize,
    /// First artificial column index (columns >= this are artificial).
    art_start: usize,
    /// Row-major `m x n`.
    a: Vec<f64>,
    b: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    iterations: usize,
    /// The user's objective over structural variables, and its sense.
    user_objective: Vec<f64>,
    user_maximize: bool,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.rows.len();
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for row in &lp.rows {
            // Normalize rhs >= 0 first to know the effective relation.
            let rel = if row.rhs < 0.0 {
                match row.rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                }
            } else {
                row.rel
            };
            match rel {
                Rel::Le => n_slack += 1,
                Rel::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Rel::Eq => n_art += 1,
            }
        }
        let n_struct = lp.n_vars;
        let art_start = n_struct + n_slack;
        let n = art_start + n_art;

        let mut a = vec![0.0; m * n];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = n_struct;
        let mut next_art = art_start;

        for (i, row) in lp.rows.iter().enumerate() {
            let flip = row.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(v, c) in &row.coeffs {
                a[i * n + v] += sign * c;
            }
            b[i] = sign * row.rhs;
            let rel = if flip {
                match row.rel {
                    Rel::Le => Rel::Ge,
                    Rel::Ge => Rel::Le,
                    Rel::Eq => Rel::Eq,
                }
            } else {
                row.rel
            };
            match rel {
                Rel::Le => {
                    a[i * n + next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Rel::Ge => {
                    a[i * n + next_slack] = -1.0; // surplus
                    next_slack += 1;
                    a[i * n + next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Rel::Eq => {
                    a[i * n + next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        Tableau {
            m,
            n,
            n_struct,
            art_start,
            a,
            b,
            basis,
            iterations: 0,
            user_objective: lp.objective.clone(),
            user_maximize: lp.maximize,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Pivot on (row, col): row becomes the basic row of `col`.
    fn pivot(&mut self, row: usize, col: usize) {
        let n = self.n;
        let p = self.a[row * n + col];
        debug_assert!(p.abs() > EPS, "pivot element too small");
        let inv = 1.0 / p;
        for j in 0..n {
            self.a[row * n + j] *= inv;
        }
        self.b[row] *= inv;
        self.a[row * n + col] = 1.0; // fight rounding

        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.a[i * n + col];
            if factor.abs() <= EPS {
                self.a[i * n + col] = 0.0;
                continue;
            }
            for j in 0..n {
                self.a[i * n + j] -= factor * self.a[row * n + j];
            }
            self.a[i * n + col] = 0.0;
            self.b[i] -= factor * self.b[row];
            if self.b[i].abs() < EPS {
                self.b[i] = 0.0;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Reduced costs for maximizing `costs` (dense over all columns), given
    /// the current basis: `r_j = c_j - c_B . a_col_j`.
    fn reduced_costs(&self, costs: &[f64]) -> Vec<f64> {
        let mut r = costs.to_vec();
        for i in 0..self.m {
            let cb = costs[self.basis[i]];
            if cb.abs() <= EPS {
                continue;
            }
            for (j, rj) in r.iter_mut().enumerate() {
                *rj -= cb * self.at(i, j);
            }
        }
        r
    }

    /// Runs primal simplex maximizing `costs` over columns where
    /// `allowed(j)` is true. Returns `false` if unbounded.
    fn optimize(&mut self, costs: &[f64], allowed: impl Fn(usize) -> bool) -> bool {
        let mut reduced = self.reduced_costs(costs);
        // After this many pivots, switch to Bland's rule (anti-cycling).
        let bland_after = 20 * (self.m + self.n) + 200;

        loop {
            let use_bland = self.iterations > bland_after;
            // Entering column.
            let mut enter: Option<usize> = None;
            let mut best = EPS;
            for (j, &rj) in reduced.iter().enumerate() {
                if !allowed(j) || rj <= EPS {
                    continue;
                }
                if use_bland {
                    enter = Some(j);
                    break;
                }
                if rj > best {
                    best = rj;
                    enter = Some(j);
                }
            }
            let Some(col) = enter else {
                return true; // optimal
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let aij = self.at(i, col);
                if aij > EPS {
                    let ratio = self.b[i] / aij;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(row) = leave else {
                return false; // unbounded
            };

            self.pivot(row, col);
            // Update reduced costs incrementally: after the pivot the row is
            // normalized; r <- r - r[col] * row.
            let rc = reduced[col];
            for (j, rj) in reduced.iter_mut().enumerate() {
                *rj -= rc * self.at(row, j);
            }
            reduced[col] = 0.0;
        }
    }

    fn solve(mut self) -> LpOutcome {
        // ----- Phase 1: minimize sum of artificials (maximize the negation).
        if self.art_start < self.n {
            let mut costs = vec![0.0; self.n];
            costs[self.art_start..].fill(-1.0);
            let bounded = self.optimize(&costs, |_| true);
            debug_assert!(bounded, "phase-1 objective is bounded by construction");
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= self.art_start)
                .map(|i| self.b[i])
                .sum();
            if infeas > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Pivot remaining (degenerate) artificials out of the basis.
            for i in 0..self.m {
                if self.basis[i] >= self.art_start {
                    if let Some(col) = (0..self.art_start).find(|&j| self.at(i, j).abs() > 1e-7) {
                        self.pivot(i, col);
                    }
                    // If no eligible column exists the row is redundant
                    // (all-zero); a basic artificial at value 0 is harmless
                    // as long as it never re-enters, which `allowed` below
                    // prevents.
                }
            }
        }

        // ----- Phase 2: the real objective over non-artificial columns.
        // (The LP owner passed `maximize` or `minimize`; tableau always
        // maximizes, so minimization negates the costs.)
        let art_start = self.art_start;
        let allowed = move |j: usize| j < art_start;
        let costs = self.phase2_costs();
        if !self.optimize(&costs, allowed) {
            return LpOutcome::Unbounded;
        }

        // Extract structural solution.
        let mut x = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.b[i];
            }
        }
        let objective: f64 = x
            .iter()
            .zip(&self.user_objective)
            .map(|(xi, ci)| xi * ci)
            .sum();
        LpOutcome::Optimal(LpSolution {
            x,
            objective,
            iterations: self.iterations,
        })
    }

    fn phase2_costs(&self) -> Vec<f64> {
        let mut costs = vec![0.0; self.n];
        let sign = if self.user_maximize { 1.0 } else { -1.0 };
        for (j, &c) in self.user_objective.iter().enumerate() {
            costs[j] = sign * c;
        }
        costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_max(n: usize, obj: &[f64], le: &[(&[(usize, f64)], f64)]) -> LpOutcome {
        let mut lp = LinearProgram::maximize(n);
        for (i, &c) in obj.iter().enumerate() {
            lp.set_objective(i, c);
        }
        for &(coeffs, rhs) in le {
            lp.add_le(coeffs, rhs);
        }
        lp.solve()
    }

    #[test]
    fn textbook_two_var() {
        // max 3x+2y st x+y<=4, x<=2 -> 10 at (2,2)
        let out = solve_max(
            2,
            &[3.0, 2.0],
            &[(&[(0, 1.0), (1, 1.0)], 4.0), (&[(0, 1.0)], 2.0)],
        );
        let s = out.expect_optimal("textbook");
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraints binding it.
        let out = solve_max(1, &[1.0], &[]);
        assert!(matches!(out, LpOutcome::Unbounded));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        lp.add_le(&[(0, 1.0)], 1.0);
        lp.add_ge(&[(0, 1.0)], 2.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn equality_constraints() {
        // max x+y st x+y=3, x<=1 -> obj 3 with x<=1.
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_eq(&[(0, 1.0), (1, 1.0)], 3.0);
        lp.add_le(&[(0, 1.0)], 1.0);
        let s = lp.solve().expect_optimal("eq");
        assert!((s.objective - 3.0).abs() < 1e-7);
        assert!(s.x[0] <= 1.0 + 1e-7);
    }

    #[test]
    fn ge_constraints_and_minimization() {
        // min 2x+3y st x+y>=4, x<=3 -> x=3,y=1, obj 9... check: 2*3+3*1=9;
        // alternative x=0,y=4 obj 12. So optimum 9.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_ge(&[(0, 1.0), (1, 1.0)], 4.0);
        lp.add_le(&[(0, 1.0)], 3.0);
        let s = lp.solve().expect_optimal("min");
        assert!((s.objective - 9.0).abs() < 1e-7, "got {}", s.objective);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -1  (i.e. y >= x + 1), max x st x<=2, y<=3 -> x=2 (y can be 3).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0);
        lp.add_le(&[(0, 1.0), (1, -1.0)], -1.0);
        lp.add_le(&[(0, 1.0)], 2.0);
        lp.add_le(&[(1, 1.0)], 3.0);
        let s = lp.solve().expect_optimal("negrhs");
        assert!((s.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-ish degenerate instance.
        let mut lp = LinearProgram::maximize(3);
        for i in 0..3 {
            lp.set_objective(i, 10f64.powi(2 - i as i32));
        }
        lp.add_le(&[(0, 1.0)], 1.0);
        lp.add_le(&[(0, 20.0), (1, 1.0)], 100.0);
        lp.add_le(&[(0, 200.0), (1, 20.0), (2, 1.0)], 10_000.0);
        let s = lp.solve().expect_optimal("klee-minty");
        assert!((s.objective - 10_000.0).abs() < 1e-5);
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut lp = LinearProgram::maximize(2);
        lp.add_le(&[(0, 1.0), (1, 1.0)], 5.0);
        let s = lp.solve().expect_optimal("zero-obj");
        assert_eq!(s.objective, 0.0);
        assert!(s.x.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, 1.0);
        lp.add_eq(&[(0, 1.0), (1, 1.0)], 2.0);
        lp.add_eq(&[(0, 2.0), (1, 2.0)], 4.0); // same plane
        lp.add_le(&[(0, 1.0)], 1.5);
        let s = lp.solve().expect_optimal("redundant");
        assert!((s.x[0] - 1.5).abs() < 1e-7);
    }

    #[test]
    fn add_var_extends_program() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, 1.0);
        let y = lp.add_var();
        lp.set_objective(y, 2.0);
        lp.add_le(&[(0, 1.0), (y, 1.0)], 3.0);
        let s = lp.solve().expect_optimal("addvar");
        assert!((s.objective - 6.0).abs() < 1e-7, "all budget to y");
    }
}
