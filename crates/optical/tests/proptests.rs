//! Property tests for the optical substrate: provision/teardown sequences
//! must preserve the occupancy invariants, never over-commit wavelengths or
//! regenerators, and teardown must be an exact inverse of provision.

use owan_optical::{FiberPlant, OpticalParams, OpticalState};
use proptest::prelude::*;

/// A random connected plant: `n` sites on a ring plus random chords.
fn random_plant(max_sites: usize) -> impl Strategy<Value = (FiberPlant, Vec<(usize, usize)>)> {
    (3..=max_sites, 1u32..4, 0u32..3, any::<u64>()).prop_map(|(n, wl, regen, seed)| {
        let params = OpticalParams {
            wavelengths_per_fiber: wl,
            optical_reach_km: 900.0,
            ..Default::default()
        };
        let mut plant = FiberPlant::new(params);
        for i in 0..n {
            plant.add_site(&format!("S{i}"), 4, regen);
        }
        // Ring keeps it connected; lengths vary deterministically from seed.
        for i in 0..n {
            let len = 200.0 + ((seed >> (i % 16)) & 0xff) as f64;
            plant.add_fiber(i, (i + 1) % n, len);
        }
        // A couple of chords.
        if n >= 5 {
            plant.add_fiber(0, n / 2, 350.0);
        }
        // Candidate relay pairs to try to provision.
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        (plant, pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn provision_sequences_preserve_invariants(
        (plant, pairs) in random_plant(8),
        choices in proptest::collection::vec((0usize..64, any::<bool>()), 1..40),
    ) {
        let mut state = OpticalState::new(&plant);
        let mut live: Vec<usize> = Vec::new();
        for (pick, tear) in choices {
            if tear && !live.is_empty() {
                let id = live.remove(pick % live.len());
                prop_assert!(state.teardown(id).is_some());
            } else {
                let (src, dst) = pairs[pick % pairs.len()];
                if let Ok(id) = state.provision_direct(&plant, src, dst) {
                    live.push(id);
                }
            }
            state.check_invariants(&plant).map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
        prop_assert_eq!(state.circuit_count(), live.len());
    }

    #[test]
    fn channels_never_exceed_fiber_capacity(
        (plant, pairs) in random_plant(7),
        picks in proptest::collection::vec(0usize..64, 1..60),
    ) {
        let mut state = OpticalState::new(&plant);
        for pick in picks {
            let (src, dst) = pairs[pick % pairs.len()];
            let _ = state.provision_direct(&plant, src, dst);
        }
        let cap = plant.params().wavelengths_per_fiber;
        for f in 0..plant.fiber_count() {
            prop_assert!(state.channels_used(f) <= cap);
            prop_assert_eq!(state.channels_used(f) + state.channels_free(f), cap);
        }
    }

    #[test]
    fn teardown_is_inverse_of_provision(
        (plant, pairs) in random_plant(7),
        pick in 0usize..64,
    ) {
        let mut state = OpticalState::new(&plant);
        let fresh = state.clone();
        let (src, dst) = pairs[pick % pairs.len()];
        if let Ok(id) = state.provision_direct(&plant, src, dst) {
            state.teardown(id).unwrap();
            for f in 0..plant.fiber_count() {
                prop_assert_eq!(state.channels_used(f), fresh.channels_used(f));
            }
            for s in 0..plant.site_count() {
                prop_assert_eq!(state.free_regenerators(s), fresh.free_regenerators(s));
            }
        }
    }

    #[test]
    fn provisioned_segments_respect_reach(
        (plant, pairs) in random_plant(8),
        picks in proptest::collection::vec(0usize..64, 1..30),
    ) {
        let mut state = OpticalState::new(&plant);
        let reach = plant.params().optical_reach_km;
        for pick in picks {
            let (src, dst) = pairs[pick % pairs.len()];
            if let Ok(id) = state.provision_direct(&plant, src, dst) {
                let c = state.circuit(id).unwrap();
                for seg in &c.segments {
                    prop_assert!(seg.length_km <= reach + 1e-9);
                }
                prop_assert_eq!(c.src, src);
                prop_assert_eq!(c.dst, dst);
            }
        }
    }
}
