//! Dynamic optical state: wavelength occupancy, regenerator consumption, and
//! provisioned circuits.
//!
//! A network-layer link between routers `u` and `v` is implemented by an
//! optical circuit `oc_uv` (paper §3.2). A circuit is a chain of *segments*;
//! each segment is an all-optical stretch between two regeneration points
//! whose physical length must not exceed the optical reach `η` and which
//! must use the **same wavelength channel on every fiber it traverses**
//! (wavelength continuity). Regenerators sit between segments and may
//! convert the signal to a different wavelength, so continuity is only
//! required per segment — exactly the model of §3.2 constraint 2–4.

use crate::plant::{FiberId, FiberPlant, SiteId};
use serde::{Deserialize, Serialize};

/// Identifier of a provisioned circuit. Ids are never reused within one
/// [`OpticalState`].
pub type CircuitId = usize;

/// An all-optical segment of a circuit between two regeneration points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Fiber ids traversed, in order.
    pub fibers: Vec<FiberId>,
    /// Site sequence (one longer than `fibers`).
    pub sites: Vec<SiteId>,
    /// Wavelength channel index used on every fiber of this segment.
    pub channel: u32,
    /// Total physical length, km.
    pub length_km: f64,
}

/// A provisioned optical circuit implementing one network-layer link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Source site (router-facing add/drop).
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// The all-optical segments, in order from `src` to `dst`.
    pub segments: Vec<Segment>,
    /// Sites where the circuit is regenerated (interior relay points);
    /// one regenerator is consumed at each.
    pub regen_sites: Vec<SiteId>,
}

impl Circuit {
    /// Total physical length of the circuit, km.
    pub fn length_km(&self) -> f64 {
        self.segments.iter().map(|s| s.length_km).sum()
    }

    /// Total number of fiber hops.
    pub fn fiber_hops(&self) -> usize {
        self.segments.iter().map(|s| s.fibers.len()).sum()
    }
}

/// Why a circuit could not be provisioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvisionError {
    /// No fiber route exists between two consecutive relay sites.
    Disconnected { from: SiteId, to: SiteId },
    /// A segment's shortest fiber route exceeds the optical reach.
    ExceedsReach {
        from: SiteId,
        to: SiteId,
        length_km: u64,
        reach_km: u64,
    },
    /// No common free wavelength channel along a segment's fibers.
    NoWavelength { from: SiteId, to: SiteId },
    /// An interior relay site has no free regenerator.
    NoRegenerator { site: SiteId },
    /// The relay path is degenerate (fewer than two sites, or repeats).
    InvalidRelayPath,
}

impl std::fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvisionError::Disconnected { from, to } => {
                write!(f, "no fiber route between sites {from} and {to}")
            }
            ProvisionError::ExceedsReach {
                from,
                to,
                length_km,
                reach_km,
            } => write!(
                f,
                "segment {from}->{to} is {length_km} km, beyond optical reach {reach_km} km"
            ),
            ProvisionError::NoWavelength { from, to } => {
                write!(f, "no common free wavelength on segment {from}->{to}")
            }
            ProvisionError::NoRegenerator { site } => {
                write!(f, "no free regenerator at site {site}")
            }
            ProvisionError::InvalidRelayPath => write!(f, "invalid relay path"),
        }
    }
}

impl std::error::Error for ProvisionError {}

/// Words needed to hold one bit per channel for the widest fiber. Every
/// fiber uses the same stride so occupancy lives in one flat allocation.
fn words_for(channels: &[u32]) -> usize {
    let max = channels.iter().copied().max().unwrap_or(0) as usize;
    max.div_ceil(64).max(1)
}

/// Dynamic optical-layer state over a [`FiberPlant`].
///
/// Tracks per-fiber channel occupancy, per-site free regenerators, and live
/// circuits. Provisioning is all-or-nothing: on error, no state changes.
///
/// Occupancy is bitset-packed: fiber `f`'s channels live in the
/// `words_per_fiber` u64 words starting at `f * words_per_fiber`, bit
/// `c % 64` of word `c / 64` set when channel `c` is in use. First-fit
/// wavelength selection and occupancy comparisons are word operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalState {
    /// Packed occupancy words, `words_per_fiber` per fiber.
    channel_words: Vec<u64>,
    /// Word stride per fiber (sized for the widest fiber in the plant).
    words_per_fiber: usize,
    /// Usable channels per fiber (folds in degradation caps); bits at or
    /// beyond this count are never set.
    channels: Vec<u32>,
    /// Free regenerators per site.
    regens_free: Vec<u32>,
    /// Live circuits (`None` = torn down).
    circuits: Vec<Option<Circuit>>,
}

impl OpticalState {
    /// Fresh state: all channels free, all regenerators available. Each
    /// fiber gets its own channel count ([`FiberPlant::usable_wavelengths`]),
    /// so degraded fibers expose fewer slots.
    pub fn new(plant: &FiberPlant) -> Self {
        let channels: Vec<u32> = (0..plant.fiber_count())
            .map(|f| plant.usable_wavelengths(f))
            .collect();
        let words_per_fiber = words_for(&channels);
        OpticalState {
            channel_words: vec![0; words_per_fiber * plant.fiber_count()],
            words_per_fiber,
            channels,
            regens_free: plant.sites().iter().map(|s| s.regenerators).collect(),
            circuits: Vec::new(),
        }
    }

    /// Flat word index and bit mask addressing `channel` on `fiber`.
    #[inline]
    fn word_bit(&self, fiber: FiberId, channel: u32) -> (usize, u64) {
        (
            fiber * self.words_per_fiber + (channel as usize) / 64,
            1u64 << (channel % 64),
        )
    }

    /// Free regenerators at `site`.
    pub fn free_regenerators(&self, site: SiteId) -> u32 {
        self.regens_free[site]
    }

    /// Free regenerators at every site, as a dense vector. Used as a cache
    /// key: relay-candidate computations depend on the plant and on exactly
    /// this vector, so equal vectors yield equal candidate lists.
    pub fn free_regen_vec(&self) -> &[u32] {
        &self.regens_free
    }

    /// Packed occupancy words of `fiber`. First-fit wavelength selection
    /// reads exactly these bits, so two states with equal words on every
    /// fiber a provisioning attempt can touch make identical channel
    /// choices — occupancy-probe skip tests compare these slices.
    pub fn occupancy_words(&self, fiber: FiberId) -> &[u64] {
        let start = fiber * self.words_per_fiber;
        &self.channel_words[start..start + self.words_per_fiber]
    }

    /// Whether `channel` is in use on `fiber`.
    pub fn channel_in_use(&self, fiber: FiberId, channel: u32) -> bool {
        let (word, bit) = self.word_bit(fiber, channel);
        self.channel_words[word] & bit != 0
    }

    /// Number of channels in use on `fiber`.
    pub fn channels_used(&self, fiber: FiberId) -> u32 {
        self.occupancy_words(fiber)
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Number of free channels on `fiber`.
    pub fn channels_free(&self, fiber: FiberId) -> u32 {
        self.channels[fiber] - self.channels_used(fiber)
    }

    /// The circuit with id `id`, if still provisioned.
    pub fn circuit(&self, id: CircuitId) -> Option<&Circuit> {
        self.circuits.get(id).and_then(|c| c.as_ref())
    }

    /// Iterator over `(id, circuit)` for all live circuits.
    pub fn circuits(&self) -> impl Iterator<Item = (CircuitId, &Circuit)> {
        self.circuits
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }

    /// Number of live circuits.
    pub fn circuit_count(&self) -> usize {
        self.circuits.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live circuits between `u` and `v` (either direction).
    pub fn circuits_between(&self, u: SiteId, v: SiteId) -> usize {
        self.circuits()
            .filter(|(_, c)| (c.src == u && c.dst == v) || (c.src == v && c.dst == u))
            .count()
    }

    /// Provisions a circuit along the given relay path
    /// `[src, relay…, dst]`. Each consecutive pair becomes one all-optical
    /// segment routed over the shortest fiber route; every interior site
    /// consumes one regenerator. Returns the new circuit id.
    ///
    /// All-or-nothing: on `Err`, the state is unchanged.
    pub fn provision(
        &mut self,
        plant: &FiberPlant,
        relay_sites: &[SiteId],
    ) -> Result<CircuitId, ProvisionError> {
        if relay_sites.len() < 2 {
            return Err(ProvisionError::InvalidRelayPath);
        }
        // A site may not appear twice (would waste regenerators / loop).
        for (i, &s) in relay_sites.iter().enumerate() {
            if relay_sites[i + 1..].contains(&s) {
                return Err(ProvisionError::InvalidRelayPath);
            }
        }

        let reach = plant.params().optical_reach_km;

        // Plan phase: compute all segments against a tentative occupancy
        // overlay so that two segments of the same circuit cannot take the
        // same channel on a shared fiber. The overlay is a short list of
        // (word index, bits) pairs — only the circuit's own marks — instead
        // of a clone of the full occupancy matrix.
        let mut tentative: Vec<(usize, u64)> = Vec::new();
        let mut segments = Vec::with_capacity(relay_sites.len() - 1);
        for w in relay_sites.windows(2) {
            let (from, to) = (w[0], w[1]);
            let (fibers, sites, length_km) = plant
                .shortest_fiber_route(from, to)
                .ok_or(ProvisionError::Disconnected { from, to })?;
            if length_km > reach {
                return Err(ProvisionError::ExceedsReach {
                    from,
                    to,
                    length_km: length_km as u64,
                    reach_km: reach as u64,
                });
            }
            let channel = self
                .first_fit_channel(&tentative, &fibers)
                .ok_or(ProvisionError::NoWavelength { from, to })?;
            for &fid in &fibers {
                let (word, bit) = self.word_bit(fid, channel);
                match tentative.iter_mut().find(|(w, _)| *w == word) {
                    Some(entry) => entry.1 |= bit,
                    None => tentative.push((word, bit)),
                }
            }
            segments.push(Segment {
                fibers,
                sites,
                channel,
                length_km,
            });
        }

        // Regenerators at interior relay sites.
        let regen_sites: Vec<SiteId> = relay_sites[1..relay_sites.len() - 1].to_vec();
        for &s in &regen_sites {
            if self.regens_free[s] == 0 {
                return Err(ProvisionError::NoRegenerator { site: s });
            }
        }
        // Note: the same site cannot appear twice (checked above), so one
        // decrement per site suffices.

        // Commit.
        for &(word, bits) in &tentative {
            debug_assert_eq!(self.channel_words[word] & bits, 0);
            self.channel_words[word] |= bits;
        }
        for &s in &regen_sites {
            self.regens_free[s] -= 1;
        }
        let circuit = Circuit {
            src: *relay_sites.first().expect("non-empty"),
            dst: *relay_sites.last().expect("non-empty"),
            segments,
            regen_sites,
        };
        self.circuits.push(Some(circuit));
        Ok(self.circuits.len() - 1)
    }

    /// Provisions a direct (regeneration-free if possible) circuit between
    /// two sites — shorthand for `provision(plant, &[src, dst])`.
    pub fn provision_direct(
        &mut self,
        plant: &FiberPlant,
        src: SiteId,
        dst: SiteId,
    ) -> Result<CircuitId, ProvisionError> {
        self.provision(plant, &[src, dst])
    }

    /// Installs a pre-computed circuit verbatim: marks its segments'
    /// channels and consumes its regenerators without re-running route or
    /// wavelength selection. The caller guarantees the circuit fits the
    /// current occupancy (debug-checked); this is used to re-assemble a
    /// known-good circuit set in canonical provisioning order after an
    /// incremental rebuild, so the resulting state is structurally
    /// identical to one built from scratch.
    pub fn install(&mut self, circuit: Circuit) -> CircuitId {
        for seg in &circuit.segments {
            for &fid in &seg.fibers {
                let (word, bit) = self.word_bit(fid, seg.channel);
                debug_assert_eq!(
                    self.channel_words[word] & bit,
                    0,
                    "install: channel {} already used on fiber {fid}",
                    seg.channel
                );
                self.channel_words[word] |= bit;
            }
        }
        for &s in &circuit.regen_sites {
            debug_assert!(self.regens_free[s] > 0, "install: no regenerator at {s}");
            self.regens_free[s] -= 1;
        }
        self.circuits.push(Some(circuit));
        self.circuits.len() - 1
    }

    /// Tears down a circuit, freeing its channels and regenerators.
    /// Returns the removed circuit, or `None` if the id was already free.
    pub fn teardown(&mut self, id: CircuitId) -> Option<Circuit> {
        let circuit = self.circuits.get_mut(id)?.take()?;
        for seg in &circuit.segments {
            for &fid in &seg.fibers {
                let (word, bit) = self.word_bit(fid, seg.channel);
                debug_assert_ne!(self.channel_words[word] & bit, 0);
                self.channel_words[word] &= !bit;
            }
        }
        for &s in &circuit.regen_sites {
            self.regens_free[s] += 1;
        }
        Some(circuit)
    }

    /// Internal consistency check (used in tests and debug assertions):
    /// channel occupancy must equal the union of live circuits' segments.
    pub fn check_invariants(&self, plant: &FiberPlant) -> Result<(), String> {
        let channels: Vec<u32> = (0..plant.fiber_count())
            .map(|f| plant.usable_wavelengths(f))
            .collect();
        if channels != self.channels || words_for(&channels) != self.words_per_fiber {
            return Err("channel occupancy out of sync with circuits".into());
        }
        let mut expected = vec![0u64; self.channel_words.len()];
        let mut regen_used = vec![0u32; plant.site_count()];
        for (id, c) in self.circuits() {
            for seg in &c.segments {
                for &fid in &seg.fibers {
                    if seg.channel >= channels[fid] {
                        return Err(format!(
                            "circuit {id}: channel {} beyond fiber {fid}'s {} usable wavelengths",
                            seg.channel,
                            plant.usable_wavelengths(fid)
                        ));
                    }
                    let (word, bit) = self.word_bit(fid, seg.channel);
                    if expected[word] & bit != 0 {
                        return Err(format!(
                            "circuit {id}: channel {} double-booked on fiber {fid}",
                            seg.channel
                        ));
                    }
                    expected[word] |= bit;
                }
            }
            for &s in &c.regen_sites {
                regen_used[s] += 1;
            }
        }
        if expected != self.channel_words {
            return Err("channel occupancy out of sync with circuits".into());
        }
        for (s, &used) in regen_used.iter().enumerate() {
            let declared = plant.site(s).regenerators;
            if used + self.regens_free[s] != declared {
                return Err(format!(
                    "site {s}: {used} used + {} free != {declared} regenerators",
                    self.regens_free[s]
                ));
            }
        }
        Ok(())
    }

    /// Lowest channel index free on every fiber of `fibers`, given the
    /// committed occupancy plus a tentative overlay of `(word, bits)`
    /// marks. Fibers may expose different channel counts (per-fiber
    /// degradation caps); a channel only qualifies if it exists — and is
    /// free — on every fiber. Word-parallel: ORs the fibers' words, masks
    /// off channels beyond the qualifying count, and takes the lowest
    /// free bit.
    fn first_fit_channel(&self, tentative: &[(usize, u64)], fibers: &[FiberId]) -> Option<u32> {
        let channels = fibers
            .iter()
            .map(|&f| self.channels[f])
            .min()
            .unwrap_or_else(|| self.channels.first().copied().unwrap_or(0));
        for w in 0..self.words_per_fiber {
            let base = (w as u32) * 64;
            if base >= channels {
                break;
            }
            let mut used = 0u64;
            for &f in fibers {
                let word = f * self.words_per_fiber + w;
                used |= self.channel_words[word];
                for &(t, bits) in tentative {
                    if t == word {
                        used |= bits;
                    }
                }
            }
            let remaining = channels - base;
            let mask = if remaining >= 64 {
                !0u64
            } else {
                (1u64 << remaining) - 1
            };
            let free = !used & mask;
            if free != 0 {
                return Some(base + free.trailing_zeros());
            }
        }
        None
    }
}

/// Occupancy-only replay of an [`OpticalState`]: the packed channel words
/// and free-regenerator vector, without circuit storage or route/wavelength
/// validation. Incremental rebuilds replay a previous build's resource
/// consumption against this instead of cloning a full state — installing a
/// circuit is a handful of word ORs and regenerator decrements, and
/// occupancy-probe comparisons against a live [`OpticalState`] are word
/// compares (the two share one word layout per plant).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyShadow {
    words: Vec<u64>,
    words_per_fiber: usize,
    regens_free: Vec<u32>,
}

impl OccupancyShadow {
    /// Fresh shadow with the same word layout as `OpticalState::new(plant)`.
    pub fn new(plant: &FiberPlant) -> Self {
        let channels: Vec<u32> = (0..plant.fiber_count())
            .map(|f| plant.usable_wavelengths(f))
            .collect();
        let words_per_fiber = words_for(&channels);
        OccupancyShadow {
            words: vec![0; words_per_fiber * plant.fiber_count()],
            words_per_fiber,
            regens_free: plant.sites().iter().map(|s| s.regenerators).collect(),
        }
    }

    /// Replays a known-good circuit's resource consumption: marks its
    /// segments' channels and consumes its regenerators.
    pub fn install(&mut self, circuit: &Circuit) {
        for seg in &circuit.segments {
            for &fid in &seg.fibers {
                let word = fid * self.words_per_fiber + (seg.channel as usize) / 64;
                let bit = 1u64 << (seg.channel % 64);
                debug_assert_eq!(self.words[word] & bit, 0);
                self.words[word] |= bit;
            }
        }
        for &s in &circuit.regen_sites {
            debug_assert!(self.regens_free[s] > 0);
            self.regens_free[s] -= 1;
        }
    }

    /// Packed occupancy words of `fiber`, layout-compatible with
    /// [`OpticalState::occupancy_words`].
    pub fn occupancy_words(&self, fiber: FiberId) -> &[u64] {
        let start = fiber * self.words_per_fiber;
        &self.words[start..start + self.words_per_fiber]
    }

    /// Free regenerators at every site.
    pub fn free_regen_vec(&self) -> &[u32] {
        &self.regens_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::OpticalParams;

    /// A / B / C in a line, 400 km per hop; B has regenerators.
    fn line_plant(reach: f64, wavelengths: u32) -> FiberPlant {
        let params = OpticalParams {
            optical_reach_km: reach,
            wavelengths_per_fiber: wavelengths,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        let a = p.add_site("A", 4, 0);
        let b = p.add_site("B", 4, 2);
        let c = p.add_site("C", 4, 0);
        p.add_fiber(a, b, 400.0);
        p.add_fiber(b, c, 400.0);
        p
    }

    #[test]
    fn direct_circuit_within_reach() {
        let p = line_plant(1_000.0, 4);
        let mut s = OpticalState::new(&p);
        let id = s.provision_direct(&p, 0, 2).unwrap();
        let c = s.circuit(id).unwrap();
        assert_eq!(c.segments.len(), 1);
        assert!(c.regen_sites.is_empty());
        assert_eq!(c.length_km(), 800.0);
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn beyond_reach_needs_relay() {
        let p = line_plant(500.0, 4);
        let mut s = OpticalState::new(&p);
        // Direct is rejected: 800 km > 500 km reach.
        let err = s.provision_direct(&p, 0, 2).unwrap_err();
        assert!(matches!(err, ProvisionError::ExceedsReach { .. }));
        // Via B it works and consumes one regenerator.
        let id = s.provision(&p, &[0, 1, 2]).unwrap();
        let c = s.circuit(id).unwrap();
        assert_eq!(c.segments.len(), 2);
        assert_eq!(c.regen_sites, vec![1]);
        assert_eq!(s.free_regenerators(1), 1);
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn regenerators_exhaust() {
        let p = line_plant(500.0, 8);
        let mut s = OpticalState::new(&p);
        s.provision(&p, &[0, 1, 2]).unwrap();
        s.provision(&p, &[0, 1, 2]).unwrap();
        let err = s.provision(&p, &[0, 1, 2]).unwrap_err();
        assert_eq!(err, ProvisionError::NoRegenerator { site: 1 });
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn wavelengths_exhaust_per_fiber() {
        let p = line_plant(1_000.0, 2);
        let mut s = OpticalState::new(&p);
        s.provision_direct(&p, 0, 1).unwrap();
        s.provision_direct(&p, 0, 1).unwrap();
        let err = s.provision_direct(&p, 0, 1).unwrap_err();
        assert_eq!(err, ProvisionError::NoWavelength { from: 0, to: 1 });
        // The other fiber is untouched.
        assert_eq!(s.channels_free(1), 2);
    }

    #[test]
    fn first_fit_assigns_distinct_channels() {
        let p = line_plant(1_000.0, 4);
        let mut s = OpticalState::new(&p);
        let id0 = s.provision_direct(&p, 0, 1).unwrap();
        let id1 = s.provision_direct(&p, 0, 1).unwrap();
        assert_eq!(s.circuit(id0).unwrap().segments[0].channel, 0);
        assert_eq!(s.circuit(id1).unwrap().segments[0].channel, 1);
    }

    #[test]
    fn teardown_frees_resources() {
        let p = line_plant(500.0, 2);
        let mut s = OpticalState::new(&p);
        let id = s.provision(&p, &[0, 1, 2]).unwrap();
        assert_eq!(s.free_regenerators(1), 1);
        assert_eq!(s.channels_used(0), 1);
        let c = s.teardown(id).unwrap();
        assert_eq!(c.src, 0);
        assert_eq!(s.free_regenerators(1), 2);
        assert_eq!(s.channels_used(0), 0);
        assert!(s.teardown(id).is_none(), "double teardown is a no-op");
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn failed_provision_leaves_state_unchanged() {
        let p = line_plant(500.0, 1);
        let mut s = OpticalState::new(&p);
        s.provision(&p, &[0, 1, 2]).unwrap(); // consumes channel 0 on both fibers
        let before = s.clone();
        // Fails on wavelength (fiber full), even though a regenerator remains.
        let err = s.provision(&p, &[0, 1, 2]).unwrap_err();
        assert!(matches!(err, ProvisionError::NoWavelength { .. }));
        assert_eq!(s.channels_used(0), before.channels_used(0));
        assert_eq!(s.free_regenerators(1), before.free_regenerators(1));
    }

    #[test]
    fn wavelength_conversion_at_regenerator() {
        // Fiber A-B full on channel 0 only; regenerator at B lets the A-C
        // circuit use channel 1 on A-B and channel 0 on B-C.
        let p = line_plant(500.0, 2);
        let mut s = OpticalState::new(&p);
        s.provision_direct(&p, 0, 1).unwrap(); // takes channel 0 on fiber 0
        let id = s.provision(&p, &[0, 1, 2]).unwrap();
        let c = s.circuit(id).unwrap();
        assert_eq!(c.segments[0].channel, 1, "converted on first segment");
        assert_eq!(c.segments[1].channel, 0, "fresh fiber uses channel 0");
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn disconnected_sites_rejected() {
        let mut p = line_plant(1_000.0, 2);
        let d = p.add_site("D", 2, 0);
        let mut s = OpticalState::new(&p);
        let err = s.provision_direct(&p, 0, d).unwrap_err();
        assert_eq!(err, ProvisionError::Disconnected { from: 0, to: d });
    }

    #[test]
    fn degenerate_relay_paths_rejected() {
        let p = line_plant(1_000.0, 2);
        let mut s = OpticalState::new(&p);
        assert_eq!(
            s.provision(&p, &[0]).unwrap_err(),
            ProvisionError::InvalidRelayPath
        );
        assert_eq!(
            s.provision(&p, &[0, 1, 0]).unwrap_err(),
            ProvisionError::InvalidRelayPath
        );
    }

    #[test]
    fn circuits_between_counts_both_directions() {
        let p = line_plant(1_000.0, 4);
        let mut s = OpticalState::new(&p);
        s.provision_direct(&p, 0, 1).unwrap();
        s.provision_direct(&p, 1, 0).unwrap();
        assert_eq!(s.circuits_between(0, 1), 2);
        assert_eq!(s.circuits_between(1, 0), 2);
        assert_eq!(s.circuits_between(0, 2), 0);
    }

    #[test]
    fn degraded_fiber_limits_channels() {
        let mut p = line_plant(1_000.0, 4);
        p.set_fiber_wavelength_cap(0, Some(1));
        let mut s = OpticalState::new(&p);
        assert_eq!(s.channels_free(0), 1);
        assert_eq!(s.channels_free(1), 4);
        s.provision_direct(&p, 0, 1).unwrap();
        let err = s.provision_direct(&p, 0, 1).unwrap_err();
        assert_eq!(err, ProvisionError::NoWavelength { from: 0, to: 1 });
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn first_fit_spans_heterogeneous_caps() {
        // A segment crossing a degraded fiber (2 channels) and a healthy
        // fiber (4 channels) may only use channels that exist on both.
        let mut p = line_plant(1_000.0, 4);
        p.set_fiber_wavelength_cap(0, Some(2));
        let mut s = OpticalState::new(&p);
        // Occupy channel 0 on the healthy fiber so the A-C segment must
        // find a channel free on both: channel 1.
        s.provision_direct(&p, 1, 2).unwrap();
        let id = s.provision_direct(&p, 0, 2).unwrap();
        assert_eq!(s.circuit(id).unwrap().segments[0].channel, 1);
        // Channels 2 and 3 exist only on the healthy fiber: one more A-C
        // circuit is impossible even though fiber 1 has free channels.
        s.provision_direct(&p, 0, 2).unwrap_err();
        s.check_invariants(&p).unwrap();
    }

    #[test]
    fn cap_restoration_reexposes_channels() {
        let mut p = line_plant(1_000.0, 4);
        p.set_fiber_wavelength_cap(0, Some(1));
        assert_eq!(p.usable_wavelengths(0), 1);
        p.set_fiber_wavelength_cap(0, None);
        assert_eq!(p.usable_wavelengths(0), 4);
        let s = OpticalState::new(&p);
        assert_eq!(s.channels_free(0), 4);
    }

    #[test]
    fn ids_not_reused_after_teardown() {
        let p = line_plant(1_000.0, 4);
        let mut s = OpticalState::new(&p);
        let id0 = s.provision_direct(&p, 0, 1).unwrap();
        s.teardown(id0);
        let id1 = s.provision_direct(&p, 0, 1).unwrap();
        assert_ne!(id0, id1);
    }
}
