//! Optical power-budget model of the paper's testbed ROADM (§4.1).
//!
//! "To transmit packets from one router to another, the optical signal
//! passes through multiple optical elements, including MUX, splitter, fiber,
//! WSS and DEMUX. These five elements introduce typical optical power loss
//! of 5 dB, 10.5 dB, 0.5 dB, 7 dB, and 5 dB, respectively. The total optical
//! power loss is ∼28 dB, which is higher than the optical power budget
//! (∼16 dB) of the transceivers. That is the reason to put an EDFA between
//! WSS and DEMUX." (§4.1)
//!
//! This module reproduces that arithmetic so the library can *verify* that a
//! candidate ROADM chain closes the link budget instead of assuming it.

use serde::{Deserialize, Serialize};

/// Per-element losses and gains, in dB. Defaults are the testbed values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Multiplexer insertion loss.
    pub mux_loss_db: f64,
    /// Broadcast splitter loss.
    pub splitter_loss_db: f64,
    /// Fiber span loss (per span between adjacent ROADMs; the testbed spans
    /// are short patch fibers).
    pub fiber_loss_db: f64,
    /// Wavelength-selective switch loss.
    pub wss_loss_db: f64,
    /// Demultiplexer loss.
    pub demux_loss_db: f64,
    /// EDFA gain (fixed-gain mode).
    pub edfa_gain_db: f64,
    /// Transceiver optical power budget: maximum tolerable end-to-end loss.
    pub transceiver_budget_db: f64,
}

impl Default for PowerBudget {
    fn default() -> Self {
        PowerBudget {
            mux_loss_db: 5.0,
            splitter_loss_db: 10.5,
            fiber_loss_db: 0.5,
            wss_loss_db: 7.0,
            demux_loss_db: 5.0,
            edfa_gain_db: 18.0,
            transceiver_budget_db: 16.0,
        }
    }
}

/// Net power accounting for one all-optical segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentPower {
    /// Sum of element losses along the chain, dB.
    pub total_loss_db: f64,
    /// Sum of amplifier gains along the chain, dB.
    pub total_gain_db: f64,
}

impl SegmentPower {
    /// Net loss seen by the receiver, dB.
    pub fn net_loss_db(&self) -> f64 {
        self.total_loss_db - self.total_gain_db
    }
}

impl PowerBudget {
    /// Power accounting for a segment crossing `roadm_hops` ROADM-to-ROADM
    /// spans with one EDFA per receiving ROADM (the testbed design: EDFA
    /// between WSS and DEMUX).
    ///
    /// The chain for one span is MUX → splitter → fiber → WSS → EDFA →
    /// DEMUX; for multi-span segments the intermediate ROADMs contribute a
    /// splitter + fiber + WSS + EDFA each (express path, no add/drop
    /// MUX/DEMUX).
    pub fn segment_power(&self, roadm_hops: usize) -> SegmentPower {
        assert!(roadm_hops >= 1, "a segment crosses at least one span");
        let per_span_loss = self.splitter_loss_db + self.fiber_loss_db + self.wss_loss_db;
        let total_loss_db =
            self.mux_loss_db + self.demux_loss_db + per_span_loss * roadm_hops as f64;
        let total_gain_db = self.edfa_gain_db * roadm_hops as f64;
        SegmentPower {
            total_loss_db,
            total_gain_db,
        }
    }

    /// True if the segment closes the link budget: net loss within the
    /// transceiver budget and the signal never over-amplified into negative
    /// net loss beyond one EDFA gain (a crude saturation guard).
    pub fn segment_feasible(&self, roadm_hops: usize) -> bool {
        let p = self.segment_power(roadm_hops);
        p.net_loss_db() <= self.transceiver_budget_db
    }

    /// Loss without any amplification — demonstrates why the EDFA is
    /// required (the paper's ~28 dB figure for a single span).
    pub fn unamplified_loss_db(&self, roadm_hops: usize) -> f64 {
        self.segment_power(roadm_hops).total_loss_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_single_span_numbers() {
        let b = PowerBudget::default();
        // 5 + 10.5 + 0.5 + 7 + 5 = 28 dB total loss, as in §4.1.
        assert!((b.unamplified_loss_db(1) - 28.0).abs() < 1e-9);
        // Unamplified, the budget does not close.
        assert!(b.unamplified_loss_db(1) > b.transceiver_budget_db);
    }

    #[test]
    fn edfa_closes_single_span_budget() {
        let b = PowerBudget::default();
        let p = b.segment_power(1);
        assert!((p.net_loss_db() - 10.0).abs() < 1e-9, "28 - 18 = 10 dB net");
        assert!(b.segment_feasible(1));
    }

    #[test]
    fn multi_span_express_path() {
        let b = PowerBudget::default();
        // Each extra span adds 18 dB loss and 18 dB gain: net unchanged.
        let p1 = b.segment_power(1).net_loss_db();
        let p3 = b.segment_power(3).net_loss_db();
        assert!((p1 - p3).abs() < 1e-9);
        assert!(b.segment_feasible(8));
    }

    #[test]
    fn weak_amplifier_fails_budget() {
        let b = PowerBudget {
            edfa_gain_db: 5.0,
            ..Default::default()
        };
        assert!(!b.segment_feasible(1), "28 - 5 = 23 dB > 16 dB budget");
    }

    #[test]
    #[should_panic(expected = "at least one span")]
    fn zero_hops_panics() {
        PowerBudget::default().segment_power(0);
    }
}
