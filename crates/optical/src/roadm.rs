//! Per-device ROADM model.
//!
//! The testbed ROADM (§4.1) is a 1U box: `n` transceiver ports facing the
//! router, a MUX combining the `n` wavelengths onto one fiber, a splitter
//! broadcasting to every neighbor, and per-neighbor WSS + EDFA + DEMUX on
//! the inward direction. The WSS *selection map* — which wavelengths are
//! accepted from which neighbor — is the reconfigurable element; changing
//! it is what retunes the network-layer topology.
//!
//! The update scheduler (`owan-update`) uses [`Roadm::diff`] to count how
//! many WSS operations a topology change requires and derive its duration.

use crate::plant::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static description of one ROADM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roadm {
    /// The site this ROADM serves.
    pub site: SiteId,
    /// Number of add/drop transceiver ports facing the router (`n` in §4.1;
    /// 15 on the testbed).
    pub add_drop_ports: u32,
    /// Neighboring sites reachable by a direct fiber.
    pub neighbors: Vec<SiteId>,
}

/// The reconfigurable state of a ROADM: for each neighbor, the set of
/// wavelength channels the WSS selects from that neighbor's fiber.
///
/// Deterministically ordered (`BTreeMap`) so diffs are stable.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoadmConfig {
    /// `selected[neighbor] = sorted channel list`.
    selected: BTreeMap<SiteId, Vec<u32>>,
}

impl RoadmConfig {
    /// Empty configuration (no wavelengths selected).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects `channel` from `neighbor`. Idempotent.
    pub fn select(&mut self, neighbor: SiteId, channel: u32) {
        let chans = self.selected.entry(neighbor).or_default();
        if let Err(pos) = chans.binary_search(&channel) {
            chans.insert(pos, channel);
        }
    }

    /// Deselects `channel` from `neighbor`. Idempotent.
    pub fn deselect(&mut self, neighbor: SiteId, channel: u32) {
        if let Some(chans) = self.selected.get_mut(&neighbor) {
            if let Ok(pos) = chans.binary_search(&channel) {
                chans.remove(pos);
            }
            if chans.is_empty() {
                self.selected.remove(&neighbor);
            }
        }
    }

    /// Is `channel` currently selected from `neighbor`?
    pub fn is_selected(&self, neighbor: SiteId, channel: u32) -> bool {
        self.selected
            .get(&neighbor)
            .is_some_and(|c| c.binary_search(&channel).is_ok())
    }

    /// Total number of selected (neighbor, channel) pairs.
    pub fn selection_count(&self) -> usize {
        self.selected.values().map(|v| v.len()).sum()
    }

    /// Number of WSS operations (individual select/deselect actions) needed
    /// to move from `self` to `target`.
    pub fn diff(&self, target: &RoadmConfig) -> usize {
        let mut ops = 0;
        let neighbors: std::collections::BTreeSet<SiteId> = self
            .selected
            .keys()
            .chain(target.selected.keys())
            .copied()
            .collect();
        for n in neighbors {
            let empty = Vec::new();
            let cur = self.selected.get(&n).unwrap_or(&empty);
            let tgt = target.selected.get(&n).unwrap_or(&empty);
            ops += cur.iter().filter(|c| !tgt.contains(c)).count();
            ops += tgt.iter().filter(|c| !cur.contains(c)).count();
        }
        ops
    }
}

impl Roadm {
    /// Creates a ROADM for `site` with the given ports and neighbors.
    pub fn new(site: SiteId, add_drop_ports: u32, neighbors: Vec<SiteId>) -> Self {
        Roadm {
            site,
            add_drop_ports,
            neighbors,
        }
    }

    /// Duration of applying `ops` WSS operations, given the per-operation
    /// switching time. Operations on one device are serialized on its
    /// micro-controller (the testbed uses a Freescale i.MX53).
    pub fn reconfig_duration_s(&self, ops: usize, switch_time_s: f64) -> f64 {
        ops as f64 * switch_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_is_idempotent() {
        let mut c = RoadmConfig::new();
        c.select(1, 3);
        c.select(1, 3);
        assert_eq!(c.selection_count(), 1);
        assert!(c.is_selected(1, 3));
    }

    #[test]
    fn deselect_removes() {
        let mut c = RoadmConfig::new();
        c.select(1, 3);
        c.deselect(1, 3);
        assert!(!c.is_selected(1, 3));
        assert_eq!(c.selection_count(), 0);
        c.deselect(1, 3); // idempotent on absent entries
    }

    #[test]
    fn diff_counts_adds_and_removes() {
        let mut a = RoadmConfig::new();
        a.select(1, 0);
        a.select(1, 1);
        a.select(2, 0);
        let mut b = RoadmConfig::new();
        b.select(1, 1);
        b.select(1, 2);
        b.select(3, 0);
        // Remove (1,0),(2,0); add (1,2),(3,0) -> 4 ops. (1,1) unchanged.
        assert_eq!(a.diff(&b), 4);
        assert_eq!(b.diff(&a), 4);
        assert_eq!(a.diff(&a), 0);
    }

    #[test]
    fn reconfig_duration_scales_with_ops() {
        let r = Roadm::new(0, 15, vec![1, 2]);
        assert_eq!(r.reconfig_duration_s(4, 0.2), 0.8);
        assert_eq!(r.reconfig_duration_s(0, 0.2), 0.0);
    }
}
