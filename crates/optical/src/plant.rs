//! The static physical infrastructure: sites and fibers.

use owan_graph::{dijkstra, Graph};
use serde::{Deserialize, Serialize};

/// Identifier of a site (dense index).
pub type SiteId = usize;

/// Identifier of a fiber pair (dense index).
pub type FiberId = usize;

/// Global optical-layer parameters (Table 1 of the paper plus device
/// timings from §4/§5.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalParams {
    /// Capacity of one wavelength, Gbps (θ). Commercial ROADMs carry
    /// 40–100 Gbps per wavelength (§2.1).
    pub wavelength_capacity_gbps: f64,
    /// Wavelengths per fiber pair (φ). 80+ for commercial gear (§2.1);
    /// the paper's testbed used 15.
    pub wavelengths_per_fiber: u32,
    /// Optical reach η, km: maximum unregenerated transmission distance.
    pub optical_reach_km: f64,
    /// Time to reconfigure one optical circuit, seconds. "It takes about
    /// three to five seconds on our testbed to reconfigure an optical
    /// circuit" (§5.4).
    pub circuit_reconfig_time_s: f64,
    /// Time for a single ROADM WSS switching operation, seconds
    /// (tens to hundreds of milliseconds, §1/§2.1).
    pub roadm_switch_time_s: f64,
}

impl Default for OpticalParams {
    /// Defaults match the paper's simulation setting: 100 Gbps wavelengths,
    /// 80 wavelengths per fiber, 2,000 km reach, 4 s circuit reconfiguration.
    fn default() -> Self {
        OpticalParams {
            wavelength_capacity_gbps: 100.0,
            wavelengths_per_fiber: 80,
            optical_reach_km: 2_000.0,
            circuit_reconfig_time_s: 4.0,
            roadm_switch_time_s: 0.2,
        }
    }
}

impl OpticalParams {
    /// Parameters matching the 9-site testbed (§4.1): 10 Gbps transceivers,
    /// 15 wavelengths on the ITU 100 GHz grid.
    pub fn testbed() -> Self {
        OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 15,
            optical_reach_km: 2_000.0,
            circuit_reconfig_time_s: 4.0,
            roadm_switch_time_s: 0.2,
        }
    }
}

/// A site: one ROADM, zero or one router, and pre-deployed regenerators
/// (paper §3.2: "A site v consists of one ROADM, a set of pre-deployed
/// regenerators (could be zero), and zero or one router").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable name (e.g. "SEA").
    pub name: String,
    /// Number of WAN-facing router ports connected to the ROADM (fp_v).
    /// Zero means the site has no router (pure optical relay).
    pub router_ports: u32,
    /// Number of pre-deployed regenerators (rg_v).
    pub regenerators: u32,
}

impl Site {
    /// True if the site hosts a router (at least one WAN-facing port).
    pub fn has_router(&self) -> bool {
        self.router_ports > 0
    }
}

/// A fiber pair between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fiber {
    /// One endpoint.
    pub a: SiteId,
    /// The other endpoint.
    pub b: SiteId,
    /// Physical length, km (drives the optical-reach constraint).
    pub length_km: f64,
    /// Optional cap on usable wavelengths, below the plant-wide φ. Models
    /// partial degradation (e.g. a failed amplifier stage that narrows the
    /// usable band). `None` means the full plant-wide count is available.
    pub lambda_cap: Option<u32>,
}

impl Fiber {
    /// Given one endpoint, returns the other.
    pub fn other(&self, s: SiteId) -> SiteId {
        if s == self.a {
            self.b
        } else {
            debug_assert_eq!(s, self.b);
            self.a
        }
    }
}

/// The static optical infrastructure: sites, fibers, parameters.
///
/// The plant is immutable during operation; dynamic state (wavelength usage,
/// regenerator consumption, circuits) lives in
/// [`OpticalState`](crate::OpticalState).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberPlant {
    params: OpticalParams,
    sites: Vec<Site>,
    fibers: Vec<Fiber>,
    /// Fiber graph: node = site, edge = fiber, weight = length_km.
    /// Rebuilt on mutation; edge id == fiber id by construction.
    graph: Graph,
}

impl FiberPlant {
    /// Creates an empty plant.
    pub fn new(params: OpticalParams) -> Self {
        FiberPlant {
            params,
            sites: Vec::new(),
            fibers: Vec::new(),
            graph: Graph::new(0),
        }
    }

    /// Global parameters.
    pub fn params(&self) -> &OpticalParams {
        &self.params
    }

    /// Adds a site and returns its id.
    pub fn add_site(&mut self, name: &str, router_ports: u32, regenerators: u32) -> SiteId {
        self.sites.push(Site {
            name: name.to_string(),
            router_ports,
            regenerators,
        });
        self.graph.add_node();
        self.sites.len() - 1
    }

    /// Adds a fiber pair and returns its id.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the length is not positive.
    pub fn add_fiber(&mut self, a: SiteId, b: SiteId, length_km: f64) -> FiberId {
        assert!(
            a < self.sites.len() && b < self.sites.len(),
            "site out of range"
        );
        assert!(length_km > 0.0, "fiber length must be positive");
        assert_ne!(a, b, "fiber endpoints must differ");
        let id = self.fibers.len();
        self.fibers.push(Fiber {
            a,
            b,
            length_km,
            lambda_cap: None,
        });
        let eid = self.graph.add_undirected_edge(a, b, length_km);
        debug_assert_eq!(eid, id, "edge ids track fiber ids");
        id
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of fibers.
    pub fn fiber_count(&self) -> usize {
        self.fibers.len()
    }

    /// Site record.
    pub fn site(&self, s: SiteId) -> &Site {
        &self.sites[s]
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Fiber record.
    pub fn fiber(&self, f: FiberId) -> &Fiber {
        &self.fibers[f]
    }

    /// All fibers.
    pub fn fibers(&self) -> &[Fiber] {
        &self.fibers
    }

    /// Caps the usable wavelengths on `fiber` (amplifier degradation), or
    /// restores the full plant-wide count with `None`.
    pub fn set_fiber_wavelength_cap(&mut self, fiber: FiberId, cap: Option<u32>) {
        self.fibers[fiber].lambda_cap = cap;
    }

    /// Usable wavelengths on `fiber`: the plant-wide φ, shrunk by any
    /// per-fiber degradation cap.
    pub fn usable_wavelengths(&self, fiber: FiberId) -> u32 {
        let full = self.params.wavelengths_per_fiber;
        match self.fibers[fiber].lambda_cap {
            Some(cap) => cap.min(full),
            None => full,
        }
    }

    /// Looks up a site id by name.
    pub fn site_by_name(&self, name: &str) -> Option<SiteId> {
        self.sites.iter().position(|s| s.name == name)
    }

    /// The fiber graph (edge ids are fiber ids, weights are lengths in km).
    pub fn fiber_graph(&self) -> &Graph {
        &self.graph
    }

    /// Shortest fiber route between two sites: `(fiber ids, site sequence,
    /// total length)`, or `None` if disconnected.
    pub fn shortest_fiber_route(
        &self,
        src: SiteId,
        dst: SiteId,
    ) -> Option<(Vec<FiberId>, Vec<SiteId>, f64)> {
        if src == dst {
            return Some((Vec::new(), vec![src], 0.0));
        }
        let sp = dijkstra::shortest_paths(&self.graph, src);
        let sites = sp.path_to(dst)?;
        let mut fibers = Vec::with_capacity(sites.len() - 1);
        for w in sites.windows(2) {
            // Lightest fiber between the consecutive sites (ids == edge ids).
            let fid = self
                .graph
                .neighbors(w[0])
                .filter(|&(_, n)| n == w[1])
                .min_by(|a, b| {
                    self.graph
                        .edge(a.0)
                        .weight
                        .total_cmp(&self.graph.edge(b.0).weight)
                })
                .map(|(e, _)| e)
                .expect("consecutive path nodes are adjacent");
            fibers.push(fid);
        }
        let len = sp.distance(dst).expect("path exists");
        Some((fibers, sites, len))
    }

    /// Shortest fiber distance between two sites in km (`f64::INFINITY` if
    /// disconnected).
    pub fn fiber_distance(&self, src: SiteId, dst: SiteId) -> f64 {
        if src == dst {
            return 0.0;
        }
        dijkstra::shortest_paths(&self.graph, src)
            .distance(dst)
            .unwrap_or(f64::INFINITY)
    }

    /// Dense all-pairs shortest fiber distance matrix.
    pub fn fiber_distance_matrix(&self) -> Vec<Vec<f64>> {
        dijkstra::all_pairs_distances(&self.graph)
    }

    /// Sites that host a router.
    pub fn router_sites(&self) -> Vec<SiteId> {
        (0..self.sites.len())
            .filter(|&s| self.sites[s].has_router())
            .collect()
    }

    /// Total router ports at a site (fp_v).
    pub fn router_ports(&self, s: SiteId) -> u32 {
        self.sites[s].router_ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        let a = p.add_site("A", 2, 0);
        let b = p.add_site("B", 2, 2);
        let c = p.add_site("C", 2, 0);
        p.add_fiber(a, b, 100.0);
        p.add_fiber(b, c, 200.0);
        p
    }

    #[test]
    fn sites_and_fibers_counted() {
        let p = line_plant();
        assert_eq!(p.site_count(), 3);
        assert_eq!(p.fiber_count(), 2);
    }

    #[test]
    fn site_lookup_by_name() {
        let p = line_plant();
        assert_eq!(p.site_by_name("B"), Some(1));
        assert_eq!(p.site_by_name("Z"), None);
    }

    #[test]
    fn fiber_route_and_distance() {
        let p = line_plant();
        let (fibers, sites, len) = p.shortest_fiber_route(0, 2).unwrap();
        assert_eq!(sites, vec![0, 1, 2]);
        assert_eq!(fibers, vec![0, 1]);
        assert_eq!(len, 300.0);
        assert_eq!(p.fiber_distance(0, 2), 300.0);
    }

    #[test]
    fn route_to_self_is_empty() {
        let p = line_plant();
        let (fibers, sites, len) = p.shortest_fiber_route(1, 1).unwrap();
        assert!(fibers.is_empty());
        assert_eq!(sites, vec![1]);
        assert_eq!(len, 0.0);
    }

    #[test]
    fn disconnected_route_is_none() {
        let mut p = line_plant();
        let d = p.add_site("D", 2, 0);
        assert!(p.shortest_fiber_route(0, d).is_none());
        assert_eq!(p.fiber_distance(0, d), f64::INFINITY);
    }

    #[test]
    fn parallel_fibers_pick_shortest() {
        let mut p = FiberPlant::new(OpticalParams::default());
        let a = p.add_site("A", 2, 0);
        let b = p.add_site("B", 2, 0);
        p.add_fiber(a, b, 500.0);
        let short = p.add_fiber(a, b, 100.0);
        let (fibers, _, len) = p.shortest_fiber_route(a, b).unwrap();
        assert_eq!(fibers, vec![short]);
        assert_eq!(len, 100.0);
    }

    #[test]
    fn router_sites_excludes_portless() {
        let mut p = line_plant();
        let relay = p.add_site("RELAY", 0, 4);
        assert!(!p.site(relay).has_router());
        assert_eq!(p.router_sites(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_fiber_panics() {
        let mut p = FiberPlant::new(OpticalParams::default());
        let a = p.add_site("A", 2, 0);
        p.add_fiber(a, a, 10.0);
    }

    #[test]
    fn distance_matrix_matches_pointwise() {
        let p = line_plant();
        let m = p.fiber_distance_matrix();
        for (i, row) in m.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, p.fiber_distance(i, j));
            }
        }
    }

    #[test]
    fn wavelength_cap_clamps_to_plant_phi() {
        let mut p = line_plant();
        assert_eq!(p.usable_wavelengths(0), 80);
        p.set_fiber_wavelength_cap(0, Some(12));
        assert_eq!(p.usable_wavelengths(0), 12);
        // A cap above the plant-wide φ cannot add wavelengths.
        p.set_fiber_wavelength_cap(0, Some(200));
        assert_eq!(p.usable_wavelengths(0), 80);
        p.set_fiber_wavelength_cap(0, None);
        assert_eq!(p.usable_wavelengths(0), 80);
        assert_eq!(p.usable_wavelengths(1), 80);
    }

    #[test]
    fn testbed_params() {
        let t = OpticalParams::testbed();
        assert_eq!(t.wavelength_capacity_gbps, 10.0);
        assert_eq!(t.wavelengths_per_fiber, 15);
    }
}
