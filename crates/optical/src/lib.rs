//! Optical-layer substrate for the Owan reproduction.
//!
//! A modern WAN's network layer is built over an intelligent optical layer:
//! every network-layer link is an optical circuit that traverses ROADMs
//! (Reconfigurable Optical Add-Drop Multiplexers) connected by fiber pairs
//! (paper §2.1). This crate models that layer faithfully enough to enforce
//! every constraint of the paper's problem formulation (§3.2):
//!
//! 1. router ports per site are limited (`fp_v`),
//! 2. a wavelength travels at most the *optical reach* `η` before it must be
//!    regenerated,
//! 3. regenerators per site are limited (`rg_v`) and may convert wavelengths,
//! 4. a fiber carries at most `φ` wavelengths, all distinct, each of
//!    capacity `θ`.
//!
//! The main types:
//!
//! * [`FiberPlant`] — the static physical infrastructure: sites (ROADM +
//!   optional router + pre-deployed regenerators) and fibers,
//! * [`OpticalState`] — the dynamic state: which wavelength channels are in
//!   use on which fiber, how many regenerators remain free at each site, and
//!   the set of provisioned [`Circuit`]s,
//! * [`power`] — the optical power-budget model of the paper's testbed
//!   ROADM (§4.1: MUX/splitter/WSS/DEMUX losses, EDFA gain),
//! * [`roadm`] — per-device ROADM model used by the update scheduler to
//!   derive reconfiguration timing.
//!
//! # Example
//!
//! ```
//! use owan_optical::{FiberPlant, OpticalParams, OpticalState};
//!
//! // Three sites in a line, 400 km apart, reach 500 km, one regenerator at
//! // the middle site.
//! let mut params = OpticalParams::default();
//! params.optical_reach_km = 500.0;
//! let mut plant = FiberPlant::new(params);
//! let a = plant.add_site("A", 4, 0);
//! let b = plant.add_site("B", 4, 1);
//! let c = plant.add_site("C", 4, 0);
//! plant.add_fiber(a, b, 400.0);
//! plant.add_fiber(b, c, 400.0);
//!
//! let mut state = OpticalState::new(&plant);
//! // A→C is 800 km > 500 km reach, so the circuit must regenerate at B.
//! let id = state.provision(&plant, &[a, b, c]).unwrap();
//! assert_eq!(state.circuit(id).unwrap().regen_sites, vec![b]);
//! assert_eq!(state.free_regenerators(b), 0);
//! ```

pub mod circuit;
pub mod plant;
pub mod power;
pub mod roadm;

pub use circuit::{Circuit, CircuitId, OccupancyShadow, OpticalState, ProvisionError, Segment};
pub use plant::{Fiber, FiberId, FiberPlant, OpticalParams, Site, SiteId};
pub use power::{PowerBudget, SegmentPower};
pub use roadm::{Roadm, RoadmConfig};
