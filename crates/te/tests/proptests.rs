//! Property tests for the baseline TE engines: every engine, on random
//! topologies and transfer sets, must emit plans that are link-capacity
//! feasible, demand-respecting, and routed over real paths of the fixed
//! topology.

use owan_core::{SchedulingPolicy, SlotInput, SlotPlan, Topology, TrafficEngineer, Transfer};
use owan_optical::{FiberPlant, OpticalParams};
use owan_te::{
    AmoebaConfig, AmoebaTe, MaxFlowTe, MaxMinFractTe, RateOnlyTe, RoutingRateTe, SwanTe,
    TempusConfig, TempusTe,
};
use proptest::prelude::*;

const THETA: f64 = 10.0;
const SLOT: f64 = 50.0;

fn plant(n: usize) -> FiberPlant {
    let mut p = FiberPlant::new(OpticalParams {
        wavelength_capacity_gbps: THETA,
        wavelengths_per_fiber: 8,
        ..Default::default()
    });
    for i in 0..n {
        p.add_site(&format!("S{i}"), 4, 1);
    }
    for i in 0..n {
        p.add_fiber(i, (i + 1) % n, 100.0);
    }
    p
}

/// `(site count, extra topology links, (src, dst, size, deadline) demands)`.
type Case = (
    usize,
    Vec<(usize, usize)>,
    Vec<(usize, usize, u32, Option<u32>)>,
);

fn arb_case() -> impl Strategy<Value = Case> {
    (4usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 3..10),
            proptest::collection::vec(
                (0..n, 0..n, 1u32..800, proptest::option::of(1u32..40)),
                1..10,
            ),
        )
    })
}

fn topology(n: usize, pairs: &[(usize, usize)]) -> Topology {
    let mut t = Topology::empty(n);
    // Ring for connectivity plus the random extras (capped at port count 4).
    for i in 0..n {
        t.add_links(i, (i + 1) % n, 1);
    }
    for &(u, v) in pairs {
        if u != v && t.degree(u) < 4 && t.degree(v) < 4 {
            t.add_links(u, v, 1);
        }
    }
    t
}

fn transfers(specs: &[(usize, usize, u32, Option<u32>)]) -> Vec<Transfer> {
    specs
        .iter()
        .enumerate()
        .filter(|(_, &(s, d, _, _))| s != d)
        .map(|(i, &(s, d, vol, dl))| Transfer {
            id: i,
            src: s,
            dst: d,
            volume_gbits: vol as f64,
            remaining_gbits: vol as f64,
            arrival_s: 0.0,
            deadline_s: dl.map(|x| x as f64 * 10.0),
            starved_slots: 0,
        })
        .collect()
}

fn check_plan(plan: &SlotPlan, ts: &[Transfer], engine: &str) -> Result<(), TestCaseError> {
    // Feasibility.
    owan_sim::plan_is_feasible(plan, THETA)
        .map_err(|e| TestCaseError::fail(format!("{engine}: {e}")))?;
    for a in &plan.allocations {
        let t = ts
            .iter()
            .find(|t| t.id == a.transfer)
            .ok_or_else(|| TestCaseError::fail(format!("{engine}: unknown transfer")))?;
        prop_assert!(
            a.total_rate() <= t.demand_rate_gbps(SLOT) + 1e-6,
            "{engine}: rate above demand"
        );
        for (path, r) in &a.paths {
            prop_assert!(*r > 0.0);
            prop_assert_eq!(path[0], t.src);
            prop_assert_eq!(*path.last().unwrap(), t.dst);
            for w in path.windows(2) {
                prop_assert!(
                    plan.topology.multiplicity(w[0], w[1]) > 0,
                    "{engine}: path uses a non-existent link"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_emit_valid_plans((n, pairs, specs) in arb_case()) {
        let p = plant(n);
        let topo = topology(n, &pairs);
        let ts = transfers(&specs);
        let input = SlotInput { transfers: &ts, slot_len_s: SLOT, now_s: 0.0 };

        let mut engines: Vec<Box<dyn TrafficEngineer>> = vec![
            Box::new(MaxFlowTe::new(topo.clone(), THETA, 3)),
            Box::new(MaxMinFractTe::new(topo.clone(), THETA, 3)),
            Box::new(SwanTe::new(topo.clone(), THETA, 3)),
            Box::new(TempusTe::new(topo.clone(), THETA, 3, TempusConfig::default())),
            Box::new(AmoebaTe::new(topo.clone(), THETA, 3, AmoebaConfig::default())),
            Box::new(RateOnlyTe::new(topo.clone(), THETA, SchedulingPolicy::ShortestJobFirst)),
            Box::new(RoutingRateTe::new(topo.clone(), THETA, SchedulingPolicy::ShortestJobFirst)),
        ];
        for e in engines.iter_mut() {
            let plan = e.plan_slot(&p, &input);
            check_plan(&plan, &ts, e.name())?;
        }
    }

    #[test]
    fn maxflow_dominates_on_total_throughput((n, pairs, specs) in arb_case()) {
        // MaxFlow solves the LP exactly; no other fixed-topology engine on
        // the same tunnels can beat its total.
        let p = plant(n);
        let topo = topology(n, &pairs);
        let ts = transfers(&specs);
        let input = SlotInput { transfers: &ts, slot_len_s: SLOT, now_s: 0.0 };
        let mut maxflow = MaxFlowTe::new(topo.clone(), THETA, 3);
        let best = maxflow.plan_slot(&p, &input).throughput_gbps;
        let mut swan = SwanTe::new(topo.clone(), THETA, 3);
        let mut maxmin = MaxMinFractTe::new(topo.clone(), THETA, 3);
        prop_assert!(swan.plan_slot(&p, &input).throughput_gbps <= best + 1e-6);
        prop_assert!(maxmin.plan_slot(&p, &input).throughput_gbps <= best + 1e-6);
    }

    #[test]
    fn swan_floor_is_max_min_fair((n, pairs, specs) in arb_case()) {
        // SWAN's first iterations guarantee every commodity at least the
        // MaxMinFract α fraction... approximately: its minimum served
        // fraction must be no worse than half the exact max-min α (the
        // approximation factor of the geometric ceiling schedule).
        let p = plant(n);
        let topo = topology(n, &pairs);
        let ts = transfers(&specs);
        if ts.is_empty() {
            return Ok(());
        }
        let input = SlotInput { transfers: &ts, slot_len_s: SLOT, now_s: 0.0 };
        let mut swan = SwanTe::new(topo.clone(), THETA, 3);
        let mut maxmin = MaxMinFractTe::new(topo.clone(), THETA, 3);
        let sp = swan.plan_slot(&p, &input);
        let mp = maxmin.plan_slot(&p, &input);
        let frac = |plan: &SlotPlan, t: &Transfer| {
            plan.allocations
                .iter()
                .find(|a| a.transfer == t.id)
                .map(|a| a.total_rate())
                .unwrap_or(0.0)
                / t.demand_rate_gbps(SLOT)
        };
        let alpha_exact = ts.iter().map(|t| frac(&mp, t)).fold(f64::INFINITY, f64::min);
        let alpha_swan = ts.iter().map(|t| frac(&sp, t)).fold(f64::INFINITY, f64::min);
        prop_assert!(
            alpha_swan >= alpha_exact / 2.0 - 1e-6,
            "swan min fraction {alpha_swan} vs exact {alpha_exact}"
        );
    }
}
