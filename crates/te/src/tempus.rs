//! Tempus baseline [Kandula et al., SIGCOMM 2014].
//!
//! Tempus plans deadline traffic *across future time slots*: it "first
//! maximizes the minimal fraction a transfer can be served across all time
//! slots and then maximizes the total number of bytes that can be satisfied"
//! (§5.1). This implementation solves a bucketed time-expanded LP each
//! slot:
//!
//! * the horizon from `now` to the latest deadline is partitioned into the
//!   current slot plus up to `max_buckets - 1` coarser buckets at deadline
//!   quantiles (bucketing keeps the LP small; see DESIGN.md §4);
//! * variables are volumes per (transfer, tunnel, bucket), restricted to
//!   buckets that end before the transfer's deadline;
//! * LP 1 maximizes the minimum delivered-by-deadline fraction `α`;
//! * LP 2 pins `α` and maximizes total on-time volume;
//! * the bucket-0 volumes become the slot's rates.

use crate::fixed::FixedContext;
use owan_core::{Allocation, SlotInput, SlotPlan, Topology, TrafficEngineer};
use owan_optical::FiberPlant;
use owan_solver::{LinearProgram, LpOutcome};

/// Tempus configuration.
#[derive(Debug, Clone, Copy)]
pub struct TempusConfig {
    /// Total buckets in the time-expanded LP (including the current slot).
    pub max_buckets: usize,
    /// Tunnels per transfer considered by the LP.
    pub paths_per_transfer: usize,
    /// Most-urgent transfers planned by the LP per slot (EDF order); the
    /// rest wait. Bounds the LP size.
    pub max_planned_transfers: usize,
}

impl Default for TempusConfig {
    fn default() -> Self {
        TempusConfig {
            max_buckets: 4,
            paths_per_transfer: 2,
            max_planned_transfers: 150,
        }
    }
}

/// The Tempus engine.
pub struct TempusTe {
    ctx: FixedContext,
    config: TempusConfig,
}

impl TempusTe {
    /// Creates the engine over a fixed topology.
    pub fn new(topology: Topology, theta: f64, k: usize, config: TempusConfig) -> Self {
        TempusTe {
            ctx: FixedContext::new(topology, theta, k),
            config,
        }
    }
}

impl TrafficEngineer for TempusTe {
    fn name(&self) -> &str {
        "Tempus"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let topology = self.ctx.topology().clone();
        let empty = SlotPlan {
            topology: topology.clone(),
            allocations: Vec::new(),
            throughput_gbps: 0.0,
        };
        if input.transfers.is_empty() {
            return empty;
        }

        // EDF-ordered planning set.
        let mut order: Vec<usize> = (0..input.transfers.len()).collect();
        order.sort_by(|&a, &b| {
            let da = input.transfers[a].deadline_s.unwrap_or(f64::INFINITY);
            let db = input.transfers[b].deadline_s.unwrap_or(f64::INFINITY);
            da.total_cmp(&db).then(a.cmp(&b))
        });
        order.truncate(self.config.max_planned_transfers);

        // Bucket boundaries: [now, now+slot) then quantiles of deadlines.
        let now = input.now_s;
        let slot_end = now + input.slot_len_s;
        let mut deadlines: Vec<f64> = order
            .iter()
            .filter_map(|&i| input.transfers[i].deadline_s)
            .filter(|&d| d > slot_end)
            .collect();
        deadlines.sort_by(f64::total_cmp);
        let mut bounds = vec![now, slot_end];
        if let Some(&max_d) = deadlines.last() {
            let extra = self.config.max_buckets.saturating_sub(1);
            for b in 1..=extra {
                let q = b as f64 / extra as f64;
                let idx = (((deadlines.len() - 1) as f64) * q).round() as usize;
                let v = deadlines[idx].max(bounds[bounds.len() - 1] + 1.0);
                if v > *bounds.last().expect("non-empty") {
                    bounds.push(v);
                }
            }
            let last = *bounds.last().expect("non-empty");
            if max_d > last {
                *bounds.last_mut().expect("non-empty") = max_d;
            }
        }
        let buckets: Vec<(f64, f64)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();

        // Variable layout: var[(f_pos, p, b)] over eligible buckets.
        let caps = self.ctx.capacities();
        let mut lp = LinearProgram::maximize(0);
        struct Var {
            f_pos: usize,
            path: usize,
            bucket: usize,
            var: usize,
        }
        let mut vars: Vec<Var> = Vec::new();
        let mut tunnels: Vec<Vec<Vec<usize>>> = Vec::new(); // link lists per f_pos
        let mut site_tunnels: Vec<Vec<Vec<usize>>> = Vec::new();
        for (f_pos, &i) in order.iter().enumerate() {
            let t = &input.transfers[i];
            let mut paths = self.ctx.paths(t.src, t.dst).to_vec();
            paths.truncate(self.config.paths_per_transfer);
            let links: Vec<Vec<usize>> = paths.iter().map(|p| self.ctx.path_links(p)).collect();
            let deadline = t.deadline_s.unwrap_or(f64::INFINITY);
            for (p, _) in paths.iter().enumerate() {
                for (b, &(start, end)) in buckets.iter().enumerate() {
                    // A bucket is eligible if it ends by the deadline (the
                    // first bucket is always eligible — partial credit is
                    // resolved by the simulator's mid-slot completion).
                    if b == 0 || end <= deadline + 1e-9 {
                        let _ = start;
                        let var = lp.add_var();
                        vars.push(Var {
                            f_pos,
                            path: p,
                            bucket: b,
                            var,
                        });
                    }
                }
            }
            tunnels.push(links);
            site_tunnels.push(paths.to_vec());
        }
        let site_paths_per_f: Vec<Vec<Vec<usize>>> = site_tunnels;

        // Link-capacity rows per bucket (volume units: Gb).
        for (l, &cap) in caps.iter().enumerate() {
            for (b, &(start, end)) in buckets.iter().enumerate() {
                let coeffs: Vec<(usize, f64)> = vars
                    .iter()
                    .filter(|v| v.bucket == b && tunnels[v.f_pos][v.path].contains(&l))
                    .map(|v| (v.var, 1.0))
                    .collect();
                if !coeffs.is_empty() {
                    lp.add_le(&coeffs, cap * (end - start));
                }
            }
        }
        // Per-transfer volume ceilings.
        for (f_pos, &i) in order.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> = vars
                .iter()
                .filter(|v| v.f_pos == f_pos)
                .map(|v| (v.var, 1.0))
                .collect();
            if !coeffs.is_empty() {
                lp.add_le(&coeffs, input.transfers[i].remaining_gbits);
            }
        }

        // LP 1: maximize the minimum delivered fraction α.
        let alpha = lp.add_var();
        lp.set_objective(alpha, 1.0);
        lp.add_le(&[(alpha, 1.0)], 1.0);
        for (f_pos, &i) in order.iter().enumerate() {
            let t = &input.transfers[i];
            if t.volume_gbits <= 0.0 {
                continue;
            }
            let already = t.volume_gbits - t.remaining_gbits;
            let mut coeffs: Vec<(usize, f64)> = vars
                .iter()
                .filter(|v| v.f_pos == f_pos)
                .map(|v| (v.var, 1.0))
                .collect();
            if coeffs.is_empty() {
                continue;
            }
            coeffs.push((alpha, -t.volume_gbits));
            lp.add_ge(&coeffs, -already);
        }
        let Some(sol1) = lp.solve().optimal() else {
            return empty;
        };
        let alpha_star = sol1.x[alpha].clamp(0.0, 1.0);

        // LP 2: pin α, maximize total on-time volume.
        let mut lp2 = lp.clone();
        lp2.set_objective(alpha, 0.0);
        lp2.add_ge(&[(alpha, 1.0)], (alpha_star - 1e-6).max(0.0));
        for v in &vars {
            lp2.set_objective(v.var, 1.0);
        }
        let x = match lp2.solve() {
            LpOutcome::Optimal(s) => s.x,
            _ => sol1.x,
        };

        // Bucket-0 volumes become this slot's rates.
        let mut allocations: Vec<Allocation> = Vec::new();
        let slot = input.slot_len_s;
        for (f_pos, &i) in order.iter().enumerate() {
            let t = &input.transfers[i];
            let mut paths: Vec<(Vec<usize>, f64)> = Vec::new();
            for v in vars.iter().filter(|v| v.f_pos == f_pos && v.bucket == 0) {
                let rate = x[v.var] / slot;
                if rate > 1e-9 {
                    paths.push((site_paths_per_f[f_pos][v.path].clone(), rate));
                }
            }
            if !paths.is_empty() {
                allocations.push(Allocation {
                    transfer: t.id,
                    paths,
                });
            }
        }
        crate::fixed::enforce_capacity(&mut allocations, &topology, self.ctx.theta());
        let throughput_gbps = allocations.iter().map(|a| a.total_rate()).sum();
        SlotPlan {
            topology,
            allocations,
            throughput_gbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::Transfer;
    use owan_optical::OpticalParams;

    fn line() -> Topology {
        let mut t = Topology::empty(3);
        t.add_links(0, 1, 1);
        t.add_links(1, 2, 1);
        t
    }

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..3 {
            p.add_site(&format!("S{i}"), 2, 0);
        }
        p.add_fiber(0, 1, 100.0);
        p.add_fiber(1, 2, 100.0);
        p
    }

    fn transfer(id: usize, gbits: f64, deadline: f64) -> Transfer {
        Transfer {
            id,
            src: 0,
            dst: 2,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: Some(deadline),
            starved_slots: 0,
        }
    }

    fn plan(ts: &[Transfer]) -> SlotPlan {
        let mut e = TempusTe::new(line(), 10.0, 2, TempusConfig::default());
        let p = plant();
        e.plan_slot(
            &p,
            &SlotInput {
                transfers: ts,
                slot_len_s: 10.0,
                now_s: 0.0,
            },
        )
    }

    #[test]
    fn single_urgent_transfer_gets_full_rate() {
        // 100 Gb due in 10 s over a 10 Gbps path: infeasible but Tempus
        // still pushes the full rate.
        let p = plan(&[transfer(0, 100.0, 10.0)]);
        assert!(p.throughput_gbps > 9.0, "{}", p.throughput_gbps);
    }

    #[test]
    fn urgent_beats_lazy_on_shared_link() {
        // Two transfers share the 10 Gbps path; one due next slot, one due
        // much later. The urgent one gets the current slot's capacity.
        let ts = vec![transfer(0, 100.0, 10.0), transfer(1, 100.0, 10_000.0)];
        let p = plan(&ts);
        let urgent = p
            .allocations
            .iter()
            .find(|a| a.transfer == 0)
            .map(|a| a.total_rate())
            .unwrap_or(0.0);
        let lazy = p
            .allocations
            .iter()
            .find(|a| a.transfer == 1)
            .map(|a| a.total_rate())
            .unwrap_or(0.0);
        assert!(
            urgent > lazy,
            "urgent {urgent} should outrank lazy {lazy} in the current slot"
        );
    }

    #[test]
    fn max_min_fraction_shares_across_equals() {
        // Two identical transfers with achievable deadlines: both should be
        // planned to completion (α = 1).
        let ts = vec![transfer(0, 40.0, 100.0), transfer(1, 40.0, 100.0)];
        let p = plan(&ts);
        // Current slot capacity is 100 Gb >= 80 Gb total, so both finish
        // this slot at rate 4 each — any split with both nonzero is fine.
        let total: f64 = p.allocations.iter().map(|a| a.total_rate()).sum();
        assert!(total * 10.0 >= 79.9, "total volume {total}");
    }

    #[test]
    fn empty_input_ok() {
        let p = plan(&[]);
        assert_eq!(p.throughput_gbps, 0.0);
    }

    #[test]
    fn rates_respect_capacity() {
        let ts: Vec<Transfer> = (0..5)
            .map(|i| transfer(i, 500.0, 50.0 + 100.0 * i as f64))
            .collect();
        let p = plan(&ts);
        let total: f64 = p.allocations.iter().map(|a| a.total_rate()).sum();
        assert!(total <= 10.0 + 1e-6, "one 10 Gbps path end to end: {total}");
    }
}
