//! Shared infrastructure for fixed-topology baselines.
//!
//! All prior systems the paper compares against (B4/SWAN-style TE) "assume
//! a fixed network-layer topology" (§1). [`FixedContext`] captures that
//! fixed topology once: link indexing, aggregated capacities, and a
//! k-shortest-paths tunnel cache per site pair — the standard tunnel-based
//! TE setup.

use owan_core::{Allocation, Topology, Transfer};
use owan_graph::{k_shortest_paths, Graph};
use owan_optical::SiteId;
use owan_solver::{McfProblem, McfSolution};
use std::collections::HashMap;

/// Scales allocations down so no link exceeds its capacity. LP solutions
/// carry numerical slack proportional to the right-hand-side magnitude
/// (volumes over long horizons reach 1e5–1e6), which can overshoot link
/// capacity by far more than an absolute epsilon; one proportional pass
/// restores strict feasibility: a path scaled by the worst factor of its
/// links cannot leave any link above capacity.
pub fn enforce_capacity(allocations: &mut Vec<Allocation>, topology: &Topology, theta: f64) {
    let n = topology.site_count();
    let mut load = vec![0.0f64; n * n];
    for a in allocations.iter() {
        for (path, r) in &a.paths {
            for w in path.windows(2) {
                load[w[0] * n + w[1]] += r;
                load[w[1] * n + w[0]] += r;
            }
        }
    }
    // Per-link shrink factor (1.0 when within capacity).
    let mut factor = vec![1.0f64; n * n];
    let mut any = false;
    for u in 0..n {
        for v in 0..n {
            let cap = topology.multiplicity(u, v) as f64 * theta;
            if load[u * n + v] > cap {
                factor[u * n + v] = if load[u * n + v] > 0.0 {
                    cap / load[u * n + v]
                } else {
                    1.0
                };
                any = true;
            }
        }
    }
    if !any {
        return;
    }
    for a in allocations.iter_mut() {
        for (path, r) in &mut a.paths {
            let f = path
                .windows(2)
                .map(|w| factor[w[0] * n + w[1]])
                .fold(1.0f64, f64::min);
            *r *= f;
        }
        a.paths.retain(|(_, r)| *r > 1e-9);
    }
    allocations.retain(|a| !a.paths.is_empty());
}

/// A fixed network-layer topology prepared for LP-based TE.
#[derive(Debug, Clone)]
pub struct FixedContext {
    topology: Topology,
    theta: f64,
    /// Distinct links `(u, v)` with `u < v`, in deterministic order.
    links: Vec<(SiteId, SiteId)>,
    /// `(u, v)` (either order) → link index.
    link_index: HashMap<(SiteId, SiteId), usize>,
    /// Tunnels per site pair (cached).
    path_cache: HashMap<(SiteId, SiteId), Vec<Vec<SiteId>>>,
    /// Tunnels per pair.
    k: usize,
}

impl FixedContext {
    /// Prepares a context over `topology` with per-circuit capacity
    /// `theta` (Gbps) and `k` candidate tunnels per site pair.
    pub fn new(topology: Topology, theta: f64, k: usize) -> Self {
        let links: Vec<(SiteId, SiteId)> =
            topology.links().iter().map(|&(u, v, _)| (u, v)).collect();
        let mut link_index = HashMap::new();
        for (i, &(u, v)) in links.iter().enumerate() {
            link_index.insert((u, v), i);
            link_index.insert((v, u), i);
        }
        FixedContext {
            topology,
            theta,
            links,
            link_index,
            path_cache: HashMap::new(),
            k,
        }
    }

    /// The fixed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-circuit capacity, Gbps.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Aggregated capacity of each indexed link (multiplicity × θ).
    pub fn capacities(&self) -> Vec<f64> {
        self.links
            .iter()
            .map(|&(u, v)| self.topology.multiplicity(u, v) as f64 * self.theta)
            .collect()
    }

    /// Hop-count tunnel set for a site pair (computed once, then cached).
    pub fn paths(&mut self, src: SiteId, dst: SiteId) -> &[Vec<SiteId>] {
        if !self.path_cache.contains_key(&(src, dst)) {
            let computed = self.compute_paths(src, dst);
            self.path_cache.insert((src, dst), computed);
        }
        &self.path_cache[&(src, dst)]
    }

    fn compute_paths(&self, src: SiteId, dst: SiteId) -> Vec<Vec<SiteId>> {
        if src == dst {
            return Vec::new();
        }
        // Unit-weight simple graph over distinct links: tunnels minimize
        // hop count.
        let mut g = Graph::new(self.topology.site_count());
        for &(u, v) in &self.links {
            g.add_undirected_edge(u, v, 1.0);
        }
        k_shortest_paths(&g, src, dst, self.k)
            .into_iter()
            .map(|p| p.nodes)
            .collect()
    }

    /// Converts a site path to its link-index list.
    pub fn path_links(&self, path: &[SiteId]) -> Vec<usize> {
        path.windows(2)
            .map(|w| {
                *self
                    .link_index
                    .get(&(w[0], w[1]))
                    .expect("path uses known links")
            })
            .collect()
    }

    /// Builds the MCF problem for a transfer set: one commodity per
    /// transfer, demand = per-slot demand rate. Returns the problem plus
    /// the site-path tunnels per commodity (aligned with commodity order).
    pub fn build_mcf(
        &mut self,
        transfers: &[Transfer],
        slot_len_s: f64,
    ) -> (McfProblem, Vec<Vec<Vec<SiteId>>>) {
        let mut mcf = McfProblem::new(self.capacities());
        let mut tunnels = Vec::with_capacity(transfers.len());
        for t in transfers {
            let site_paths: Vec<Vec<SiteId>> = self.paths(t.src, t.dst).to_vec();
            let link_paths: Vec<Vec<usize>> =
                site_paths.iter().map(|p| self.path_links(p)).collect();
            mcf.add_commodity(t.demand_rate_gbps(slot_len_s), link_paths);
            tunnels.push(site_paths);
        }
        (mcf, tunnels)
    }

    /// Converts an MCF solution back into per-transfer allocations,
    /// clamped to strict link-capacity feasibility (see
    /// [`enforce_capacity`]).
    pub fn allocations_from(
        &self,
        transfers: &[Transfer],
        tunnels: &[Vec<Vec<SiteId>>],
        solution: &McfSolution,
    ) -> Vec<Allocation> {
        let mut out = Vec::new();
        for (f, t) in transfers.iter().enumerate() {
            let paths: Vec<(Vec<SiteId>, f64)> = tunnels[f]
                .iter()
                .zip(&solution.rates[f])
                .filter(|&(_, &r)| r > 1e-9)
                .map(|(p, &r)| (p.clone(), r))
                .collect();
            if !paths.is_empty() {
                out.push(Allocation {
                    transfer: t.id,
                    paths,
                });
            }
        }
        enforce_capacity(&mut out, &self.topology, self.theta);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Topology {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 1);
        t.add_links(1, 3, 2);
        t.add_links(0, 2, 1);
        t.add_links(2, 3, 1);
        t
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn capacities_aggregate_multiplicity() {
        let ctx = FixedContext::new(square(), 10.0, 4);
        let caps = ctx.capacities();
        // links() order: (0,1), (0,2), (1,3), (2,3)
        assert_eq!(caps, vec![10.0, 10.0, 20.0, 10.0]);
    }

    #[test]
    fn paths_are_hop_shortest_first() {
        let mut ctx = FixedContext::new(square(), 10.0, 4);
        let paths = ctx.paths(0, 3).to_vec();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 3, "two-hop paths first");
    }

    #[test]
    fn path_links_round_trip() {
        let mut ctx = FixedContext::new(square(), 10.0, 4);
        let paths = ctx.paths(0, 3).to_vec();
        for p in &paths {
            let links = ctx.path_links(p);
            assert_eq!(links.len(), p.len() - 1);
        }
    }

    #[test]
    fn mcf_solution_to_allocations() {
        let mut ctx = FixedContext::new(square(), 10.0, 4);
        let ts = vec![transfer(5, 0, 3, 100.0)];
        let (mcf, tunnels) = ctx.build_mcf(&ts, 1.0);
        let sol = mcf.max_throughput();
        assert!(sol.total_throughput > 0.0);
        let allocs = ctx.allocations_from(&ts, &tunnels, &sol);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].transfer, 5);
        assert!((allocs[0].total_rate() - sol.total_throughput).abs() < 1e-6);
    }
}
