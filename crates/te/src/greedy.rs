//! Greedy separate-layer optimization — the comparison point of §5.4
//! ("Joint optimization of the optical and network layers").
//!
//! "We develop a greedy algorithm, which first builds a network-layer
//! topology based on traffic demand between every two sites, and then it
//! tries to find a routing configuration that maximizes total throughput
//! using a similar routine as described in Algorithm 3." The two layers are
//! optimized *separately*: the topology step looks only at the demand
//! matrix (largest demands get direct links first), never at what routing
//! could actually achieve — which is exactly why it loses ~21% throughput
//! to the joint simulated-annealing search (Figure 10(a)).

use owan_core::{
    assign_rates, build_topology, CircuitBuildConfig, RateAssignConfig, SchedulingPolicy,
    SlotInput, SlotPlan, Topology, TrafficEngineer,
};
use owan_optical::FiberPlant;

/// The greedy separate-layer engine.
pub struct GreedyTe {
    circuit_config: CircuitBuildConfig,
    rate_config: RateAssignConfig,
    policy: SchedulingPolicy,
}

impl GreedyTe {
    /// Creates a greedy engine with default tunables and the given policy.
    pub fn new(policy: SchedulingPolicy) -> Self {
        GreedyTe {
            circuit_config: CircuitBuildConfig::default(),
            rate_config: RateAssignConfig::default(),
            policy,
        }
    }

    /// Builds a topology purely from the demand matrix: process site pairs
    /// in decreasing demand order, giving each pair as many links as spare
    /// ports allow, scaled to its demand; then spend leftover ports on the
    /// heaviest pairs again.
    fn demand_topology(&self, plant: &FiberPlant, input: &SlotInput<'_>) -> Topology {
        let n = plant.site_count();
        let theta = plant.params().wavelength_capacity_gbps;
        let mut demand = vec![0.0f64; n * n];
        for t in input.transfers {
            let rate = t.demand_rate_gbps(input.slot_len_s);
            let (a, b) = (t.src.min(t.dst), t.src.max(t.dst));
            demand[a * n + b] += rate;
        }

        let mut pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .filter(|&(u, v)| demand[u * n + v] > 0.0)
            .collect();
        pairs.sort_by(|&(a, b), &(c, d)| {
            demand[c * n + d]
                .total_cmp(&demand[a * n + b])
                .then((a, b).cmp(&(c, d)))
        });

        let mut topo = Topology::empty(n);
        let spare =
            |topo: &Topology, s: usize| plant.router_ports(s).saturating_sub(topo.degree(s));

        // Pass 1: links proportional to demand.
        for &(u, v) in &pairs {
            let want = (demand[u * n + v] / theta).ceil() as u32;
            let give = want.min(spare(&topo, u)).min(spare(&topo, v));
            if give > 0 {
                topo.add_links(u, v, give);
            }
        }
        // Pass 2: spend leftover ports on the heaviest pairs.
        for &(u, v) in &pairs {
            let give = spare(&topo, u).min(spare(&topo, v));
            if give > 0 {
                topo.add_links(u, v, give);
            }
        }
        topo
    }
}

impl TrafficEngineer for GreedyTe {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn plan_slot(&mut self, plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let desired = self.demand_topology(plant, input);
        let fiber_dist = plant.fiber_distance_matrix();
        let built = build_topology(plant, &desired, &fiber_dist, &self.circuit_config);
        let rates = assign_rates(
            &built.achieved,
            plant.params().wavelength_capacity_gbps,
            input.transfers,
            self.policy,
            input.slot_len_s,
            &self.rate_config,
        );
        SlotPlan {
            topology: built.achieved,
            throughput_gbps: rates.throughput_gbps,
            allocations: rates.allocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::Transfer;
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let params = OpticalParams {
            wavelength_capacity_gbps: 10.0,
            wavelengths_per_fiber: 8,
            ..Default::default()
        };
        let mut p = FiberPlant::new(params);
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 300.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn builds_demand_matched_topology() {
        let p = plant();
        let ts = vec![transfer(0, 0, 1, 200.0), transfer(1, 2, 3, 200.0)];
        let mut e = GreedyTe::new(SchedulingPolicy::ShortestJobFirst);
        let plan = e.plan_slot(
            &p,
            &SlotInput {
                transfers: &ts,
                slot_len_s: 1.0,
                now_s: 0.0,
            },
        );
        // Both port pairs of 0-1 and 2-3 should be direct links.
        assert_eq!(plan.topology.multiplicity(0, 1), 2);
        assert_eq!(plan.topology.multiplicity(2, 3), 2);
        assert!((plan.throughput_gbps - 40.0).abs() < 1e-6);
    }

    #[test]
    fn respects_port_limits() {
        let p = plant();
        let ts: Vec<Transfer> = (0..6)
            .map(|i| transfer(i, 0, 1 + (i % 3), 1_000.0))
            .collect();
        let mut e = GreedyTe::new(SchedulingPolicy::ShortestJobFirst);
        let plan = e.plan_slot(
            &p,
            &SlotInput {
                transfers: &ts,
                slot_len_s: 1.0,
                now_s: 0.0,
            },
        );
        assert!(plan.topology.ports_feasible(&p));
    }

    #[test]
    fn idle_slot_builds_empty_topology() {
        let p = plant();
        let mut e = GreedyTe::new(SchedulingPolicy::ShortestJobFirst);
        let plan = e.plan_slot(
            &p,
            &SlotInput {
                transfers: &[],
                slot_len_s: 1.0,
                now_s: 0.0,
            },
        );
        assert_eq!(plan.throughput_gbps, 0.0);
        assert_eq!(plan.topology.total_links(), 0);
    }
}
