//! Baseline traffic-engineering algorithms for the Owan evaluation (§5.1).
//!
//! All engines implement [`owan_core::TrafficEngineer`] so the simulator
//! (`owan-sim`) can drive Owan and the baselines identically:
//!
//! | Engine | Topology | Objective |
//! |---|---|---|
//! | [`MaxFlowTe`] | fixed | max total throughput per slot (LP) |
//! | [`MaxMinFractTe`] | fixed | max min served fraction per slot (LP) |
//! | [`SwanTe`] | fixed | throughput + approximate max-min fairness (iterated LPs) |
//! | [`TempusTe`] | fixed | deadline traffic, min-fraction across future slots then bytes (time-expanded LP) |
//! | [`AmoebaTe`] | fixed | deadline admission control over a future reservation grid |
//! | [`GreedyTe`] | reconfigured *separately* from routing | §5.4 comparison |
//! | [`RateOnlyTe`] / [`RoutingRateTe`] | fixed | the Fig 10(c) control-level ablations |
//!
//! The full joint optimization ("+topo.") is `owan_core::OwanEngine`.

pub mod ablation;
pub mod amoeba;
pub mod baselines;
pub mod fixed;
pub mod greedy;
pub mod tempus;

pub use ablation::{RateOnlyTe, RoutingRateTe};
pub use amoeba::{AmoebaConfig, AmoebaTe};
pub use baselines::{MaxFlowTe, MaxMinFractTe, SwanTe};
pub use fixed::FixedContext;
pub use greedy::GreedyTe;
pub use tempus::{TempusConfig, TempusTe};
