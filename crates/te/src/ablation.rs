//! Control-level ablations for the "breakdown of gains" experiment
//! (Figure 10(c)).
//!
//! The paper compares three levels of control:
//!
//! * **rate** — the system "cannot reconfigure the network-layer topology,
//!   nor can it change routing. It can only adjust the sending rates":
//!   every transfer is pinned to its single shortest path on the fixed
//!   topology and receives a TCP-like max-min fair share of it (no
//!   central scheduling — water-filling across competing transfers)
//!   ([`RateOnlyTe`]);
//! * **+rout.** — routing *and* rates on the fixed topology, "similar to
//!   line 15-25 in Algorithm 3" ([`RoutingRateTe`]);
//! * **+topo.** — full Owan (`owan_core::OwanEngine`).

use crate::fixed::FixedContext;
use owan_core::{
    assign_rates, Allocation, RateAssignConfig, SchedulingPolicy, SlotInput, SlotPlan, Topology,
    TrafficEngineer,
};
use owan_optical::FiberPlant;

/// Rate-only control: fixed topology, fixed single-path routing, TCP-like
/// max-min fair rates (progressive water-filling). No scheduling control:
/// this is what a WAN without central TE gives bulk transfers.
pub struct RateOnlyTe {
    ctx: FixedContext,
    #[allow(dead_code)]
    policy: SchedulingPolicy,
}

impl RateOnlyTe {
    /// Creates the engine over a fixed topology. The policy is accepted
    /// for interface symmetry but unused — fair sharing has no ordering.
    pub fn new(topology: Topology, theta: f64, policy: SchedulingPolicy) -> Self {
        RateOnlyTe {
            ctx: FixedContext::new(topology, theta, 1),
            policy,
        }
    }
}

impl TrafficEngineer for RateOnlyTe {
    fn name(&self) -> &str {
        "rate"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        const EPS: f64 = 1e-9;
        let mut residual = self.ctx.capacities();

        // Pin every transfer to its single shortest path.
        struct Pinned {
            idx: usize,
            path: Vec<usize>,
            links: Vec<usize>,
            rate: f64,
            demand: f64,
            frozen: bool,
        }
        let mut pinned: Vec<Pinned> = Vec::new();
        for (idx, t) in input.transfers.iter().enumerate() {
            let demand = t.demand_rate_gbps(input.slot_len_s);
            if demand <= EPS {
                continue;
            }
            if let Some(path) = self.ctx.paths(t.src, t.dst).first().cloned() {
                let links = self.ctx.path_links(&path);
                pinned.push(Pinned {
                    idx,
                    path,
                    links,
                    rate: 0.0,
                    demand,
                    frozen: false,
                });
            }
        }

        // Progressive filling: raise all unfrozen rates uniformly until a
        // link saturates or a demand is met; freeze and repeat.
        loop {
            let unfrozen: Vec<usize> = (0..pinned.len()).filter(|&i| !pinned[i].frozen).collect();
            if unfrozen.is_empty() {
                break;
            }
            // Per-link count of unfrozen users.
            let mut users = vec![0usize; residual.len()];
            for &i in &unfrozen {
                for &l in &pinned[i].links {
                    users[l] += 1;
                }
            }
            // Largest uniform increment every unfrozen transfer can take.
            let mut delta = f64::INFINITY;
            for (l, &n) in users.iter().enumerate() {
                if n > 0 {
                    delta = delta.min(residual[l] / n as f64);
                }
            }
            for &i in &unfrozen {
                delta = delta.min(pinned[i].demand - pinned[i].rate);
            }
            if !delta.is_finite() {
                break;
            }
            let delta = delta.max(0.0);
            for &i in &unfrozen {
                pinned[i].rate += delta;
                for &l in &pinned[i].links {
                    residual[l] -= delta;
                }
            }
            // Freeze satisfied transfers and users of saturated links.
            for &i in &unfrozen {
                let p = &pinned[i];
                let saturated =
                    p.rate + EPS >= p.demand || p.links.iter().any(|&l| residual[l] <= EPS);
                if saturated {
                    pinned[i].frozen = true;
                }
            }
            if delta <= EPS {
                // No progress possible for anyone left.
                for &i in &unfrozen {
                    pinned[i].frozen = true;
                }
            }
        }

        let mut allocations = Vec::new();
        let mut throughput = 0.0;
        for p in pinned {
            if p.rate > EPS {
                throughput += p.rate;
                allocations.push(Allocation {
                    transfer: input.transfers[p.idx].id,
                    paths: vec![(p.path, p.rate)],
                });
            }
        }
        SlotPlan {
            topology: self.ctx.topology().clone(),
            allocations,
            throughput_gbps: throughput,
        }
    }
}

/// Routing + rate control on a fixed topology: Algorithm 3's rate
/// assignment (multi-path, shortest-length-first) without the optical step.
pub struct RoutingRateTe {
    topology: Topology,
    theta: f64,
    policy: SchedulingPolicy,
    rate_config: RateAssignConfig,
}

impl RoutingRateTe {
    /// Creates the engine over a fixed topology.
    pub fn new(topology: Topology, theta: f64, policy: SchedulingPolicy) -> Self {
        RoutingRateTe {
            topology,
            theta,
            policy,
            rate_config: RateAssignConfig::default(),
        }
    }
}

impl TrafficEngineer for RoutingRateTe {
    fn name(&self) -> &str {
        "+rout."
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let rates = assign_rates(
            &self.topology,
            self.theta,
            input.transfers,
            self.policy,
            input.slot_len_s,
            &self.rate_config,
        );
        SlotPlan {
            topology: self.topology.clone(),
            throughput_gbps: rates.throughput_gbps,
            allocations: rates.allocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::Transfer;
    use owan_optical::OpticalParams;

    fn square() -> Topology {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 1);
        t.add_links(0, 2, 1);
        t.add_links(1, 3, 1);
        t.add_links(2, 3, 1);
        t
    }

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 0);
        }
        p.add_fiber(0, 1, 100.0);
        p.add_fiber(1, 2, 100.0);
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    #[test]
    fn rate_only_single_path() {
        let mut e = RateOnlyTe::new(square(), 10.0, SchedulingPolicy::ShortestJobFirst);
        let ts = vec![transfer(0, 0, 3, 1e6)];
        let p = plant();
        let plan = e.plan_slot(
            &p,
            &SlotInput {
                transfers: &ts,
                slot_len_s: 1.0,
                now_s: 0.0,
            },
        );
        // Only one (shortest) path is used: 10 Gbps, not 20.
        assert!((plan.throughput_gbps - 10.0).abs() < 1e-6);
        assert_eq!(plan.allocations[0].paths.len(), 1);
    }

    #[test]
    fn routing_adds_multipath_gain() {
        let mut rate_only = RateOnlyTe::new(square(), 10.0, SchedulingPolicy::ShortestJobFirst);
        let mut routing = RoutingRateTe::new(square(), 10.0, SchedulingPolicy::ShortestJobFirst);
        let ts = vec![transfer(0, 0, 3, 1e6)];
        let p = plant();
        let input = SlotInput {
            transfers: &ts,
            slot_len_s: 1.0,
            now_s: 0.0,
        };
        let a = rate_only.plan_slot(&p, &input);
        let b = routing.plan_slot(&p, &input);
        assert!(
            b.throughput_gbps > a.throughput_gbps + 5.0,
            "+rout. {} must beat rate-only {}",
            b.throughput_gbps,
            a.throughput_gbps
        );
    }

    #[test]
    fn names() {
        assert_eq!(
            RateOnlyTe::new(square(), 1.0, SchedulingPolicy::ShortestJobFirst).name(),
            "rate"
        );
        assert_eq!(
            RoutingRateTe::new(square(), 1.0, SchedulingPolicy::ShortestJobFirst).name(),
            "+rout."
        );
    }
}
