//! Amoeba baseline [Zhang et al., EuroSys 2015].
//!
//! Amoeba performs *deadline admission control*: when a transfer arrives it
//! tries to reserve enough future capacity, possibly rescheduling the
//! flexible parts of earlier reservations; transfers that fit are
//! guaranteed, others are rejected ("adjust previous allocation when new
//! transfers arrive", §5.1).
//!
//! This implementation re-plans the full reservation table each slot (which
//! subsumes rescheduling): transfers are processed EDF-first over a future
//! slot grid of residual link capacities; a transfer is *admitted* if its
//! remaining volume fits before its deadline, greedily earliest-slot-first
//! over its tunnels. Admitted transfers keep their reservations; the rest
//! are served best-effort with whatever slot-0 capacity remains.

use crate::fixed::FixedContext;
use owan_core::{Allocation, SlotInput, SlotPlan, Topology, TrafficEngineer};
use owan_optical::FiberPlant;

/// Amoeba configuration.
#[derive(Debug, Clone, Copy)]
pub struct AmoebaConfig {
    /// Maximum future slots in the reservation grid.
    pub max_horizon_slots: usize,
    /// Tunnels per transfer.
    pub paths_per_transfer: usize,
}

impl Default for AmoebaConfig {
    fn default() -> Self {
        AmoebaConfig {
            max_horizon_slots: 64,
            paths_per_transfer: 3,
        }
    }
}

/// The Amoeba engine.
pub struct AmoebaTe {
    ctx: FixedContext,
    config: AmoebaConfig,
}

impl AmoebaTe {
    /// Creates the engine over a fixed topology.
    pub fn new(topology: Topology, theta: f64, k: usize, config: AmoebaConfig) -> Self {
        AmoebaTe {
            ctx: FixedContext::new(topology, theta, k),
            config,
        }
    }
}

impl TrafficEngineer for AmoebaTe {
    fn name(&self) -> &str {
        "Amoeba"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let topology = self.ctx.topology().clone();
        if input.transfers.is_empty() {
            return SlotPlan {
                topology,
                allocations: Vec::new(),
                throughput_gbps: 0.0,
            };
        }

        let caps = self.ctx.capacities();
        let slot = input.slot_len_s;
        let now = input.now_s;

        // Horizon: up to the latest deadline, capped.
        let latest = input
            .transfers
            .iter()
            .filter_map(|t| t.deadline_s)
            .fold(now + slot, f64::max);
        let horizon =
            (((latest - now) / slot).ceil() as usize).clamp(1, self.config.max_horizon_slots);

        // Residual volume per (slot, link), Gb.
        let n_links = caps.len();
        let mut residual: Vec<f64> = (0..horizon)
            .flat_map(|_| caps.iter().map(|&c| c * slot))
            .collect();

        // EDF order; deadline-less transfers go last (best-effort class).
        let mut order: Vec<usize> = (0..input.transfers.len()).collect();
        order.sort_by(|&a, &b| {
            let da = input.transfers[a].deadline_s.unwrap_or(f64::INFINITY);
            let db = input.transfers[b].deadline_s.unwrap_or(f64::INFINITY);
            da.total_cmp(&db).then(a.cmp(&b))
        });

        // slot0_alloc[f] = (site path, volume in slot 0) pairs.
        let mut slot0_alloc: Vec<Vec<(Vec<usize>, f64)>> = vec![Vec::new(); input.transfers.len()];

        let mut best_effort: Vec<usize> = Vec::new();
        for &i in &order {
            let t = &input.transfers[i];
            let mut paths = self.ctx.paths(t.src, t.dst).to_vec();
            paths.truncate(self.config.paths_per_transfer);
            if paths.is_empty() {
                continue;
            }
            let link_paths: Vec<Vec<usize>> =
                paths.iter().map(|p| self.ctx.path_links(p)).collect();

            // Slots usable before the deadline (the slot containing the
            // deadline is usable pro rata).
            let usable_slots = match t.deadline_s {
                Some(d) => ((d - now) / slot).clamp(0.0, horizon as f64),
                None => {
                    best_effort.push(i);
                    continue;
                }
            };
            let full_slots = usable_slots.floor() as usize;
            let partial = usable_slots - full_slots as f64;

            // Tentatively allocate earliest-first; commit only if it fits.
            let mut tentative: Vec<(usize, usize, f64)> = Vec::new(); // (slot, path, vol)
            let mut need = t.remaining_gbits;
            'slots: for s in 0..horizon {
                if need <= 1e-9 {
                    break;
                }
                let slot_fraction = if s < full_slots {
                    1.0
                } else if s == full_slots && partial > 0.0 {
                    partial
                } else {
                    break 'slots;
                };
                for (p, lp) in link_paths.iter().enumerate() {
                    if need <= 1e-9 {
                        break;
                    }
                    let avail = lp
                        .iter()
                        .map(|&l| residual[s * n_links + l])
                        .fold(f64::INFINITY, f64::min)
                        * slot_fraction;
                    let take = need.min(avail.max(0.0));
                    if take > 1e-9 {
                        tentative.push((s, p, take));
                        for &l in lp {
                            residual[s * n_links + l] -= take;
                        }
                        need -= take;
                    }
                }
            }

            if need <= 1e-6 {
                // Admitted: keep the reservations; this slot's share is
                // whatever landed in slot 0.
                slot0_alloc[i] = tentative
                    .iter()
                    .filter(|&&(s, _, _)| s == 0)
                    .map(|&(_, p, vol)| (paths[p].clone(), vol))
                    .collect();
            } else {
                // Rejected: roll back and serve best-effort later.
                for &(s, p, vol) in &tentative {
                    for &l in &link_paths[p] {
                        residual[s * n_links + l] += vol;
                    }
                }
                best_effort.push(i);
            }
        }

        // Best-effort: fill remaining slot-0 capacity EDF-first.
        for &i in &best_effort {
            let t = &input.transfers[i];
            let mut paths = self.ctx.paths(t.src, t.dst).to_vec();
            paths.truncate(self.config.paths_per_transfer);
            let mut need = t.remaining_gbits;
            for p in &paths {
                if need <= 1e-9 {
                    break;
                }
                let lp = self.ctx.path_links(p);
                let avail = lp
                    .iter()
                    .map(|&l| residual[l])
                    .fold(f64::INFINITY, f64::min);
                let take = need.min(avail.max(0.0));
                if take > 1e-9 {
                    for &l in &lp {
                        residual[l] -= take;
                    }
                    need -= take;
                    slot0_alloc[i].push((p.clone(), take));
                }
            }
        }

        // Emit allocations: volumes in slot 0 → rates.
        let mut allocations = Vec::new();
        for (i, t) in input.transfers.iter().enumerate() {
            let paths: Vec<(Vec<usize>, f64)> = slot0_alloc[i]
                .iter()
                .map(|(p, vol)| (p.clone(), vol / slot))
                .filter(|&(_, r)| r > 1e-9)
                .collect();
            if !paths.is_empty() {
                allocations.push(Allocation {
                    transfer: t.id,
                    paths,
                });
            }
        }
        crate::fixed::enforce_capacity(&mut allocations, &topology, self.ctx.theta());
        let throughput_gbps = allocations.iter().map(|a| a.total_rate()).sum();
        SlotPlan {
            topology,
            allocations,
            throughput_gbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::Transfer;
    use owan_optical::OpticalParams;

    fn line() -> Topology {
        let mut t = Topology::empty(3);
        t.add_links(0, 1, 1);
        t.add_links(1, 2, 1);
        t
    }

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..3 {
            p.add_site(&format!("S{i}"), 2, 0);
        }
        p.add_fiber(0, 1, 100.0);
        p.add_fiber(1, 2, 100.0);
        p
    }

    fn transfer(id: usize, gbits: f64, deadline: Option<f64>) -> Transfer {
        Transfer {
            id,
            src: 0,
            dst: 2,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: deadline,
            starved_slots: 0,
        }
    }

    fn plan(ts: &[Transfer]) -> SlotPlan {
        let mut e = AmoebaTe::new(line(), 10.0, 3, AmoebaConfig::default());
        let p = plant();
        e.plan_slot(
            &p,
            &SlotInput {
                transfers: ts,
                slot_len_s: 10.0,
                now_s: 0.0,
            },
        )
    }

    #[test]
    fn feasible_transfer_admitted_entirely_in_first_slot() {
        // 50 Gb due at t=100 over a 10 Gbps path: earliest-first packs the
        // whole volume into slot 0 (100 Gb capacity), i.e. 5 Gbps for 10 s.
        let p = plan(&[transfer(0, 50.0, Some(100.0))]);
        assert!(
            (p.throughput_gbps - 5.0).abs() < 1e-6,
            "{}",
            p.throughput_gbps
        );
    }

    #[test]
    fn infeasible_transfer_still_served_best_effort() {
        // 1000 Gb due at t=20: impossible (max 20 Gb by then) → rejected by
        // admission control but given leftover slot-0 capacity.
        let p = plan(&[transfer(0, 1_000.0, Some(20.0))]);
        assert!(p.throughput_gbps > 0.0, "best-effort service expected");
    }

    #[test]
    fn admitted_transfer_squeezes_out_infeasible_one() {
        // t1 (feasible, earlier deadline) is processed first and reserves
        // what it needs; t0's huge demand cannot evict it.
        let ts = vec![
            transfer(0, 1_000.0, Some(200.0)),
            transfer(1, 100.0, Some(150.0)),
        ];
        let p = plan(&ts);
        let r1 = p
            .allocations
            .iter()
            .find(|a| a.transfer == 1)
            .map(|a| a.total_rate())
            .unwrap_or(0.0);
        assert!(r1 > 0.0, "the feasible EDF-first transfer gets capacity");
    }

    #[test]
    fn deadline_less_transfers_ride_best_effort() {
        let ts = vec![transfer(0, 40.0, Some(50.0)), transfer(1, 500.0, None)];
        let p = plan(&ts);
        let total: f64 = p.allocations.iter().map(|a| a.total_rate()).sum();
        assert!(total <= 10.0 + 1e-6, "single end-to-end path");
        assert!(total > 9.0, "leftover capacity is not wasted");
    }

    #[test]
    fn empty_input() {
        let p = plan(&[]);
        assert_eq!(p.throughput_gbps, 0.0);
    }
}
