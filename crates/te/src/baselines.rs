//! The three fixed-topology, single-slot LP baselines of §5.1:
//!
//! * **MaxFlow** — "uses linear programming to maximize the total
//!   throughput for each time slot";
//! * **MaxMinFract** — "maximize the minimal fraction that a transfer can
//!   be served at each time slot";
//! * **SWAN** — "maximize the throughput while achieving approximate
//!   max-min fairness for each time slot" (the iterated-LP scheme of the
//!   SWAN paper).

use crate::fixed::FixedContext;
use owan_core::{SlotInput, SlotPlan, Topology, TrafficEngineer};
use owan_optical::FiberPlant;

/// MaxFlow baseline.
pub struct MaxFlowTe {
    ctx: FixedContext,
}

impl MaxFlowTe {
    /// Creates the engine over a fixed topology with `k` tunnels per pair.
    pub fn new(topology: Topology, theta: f64, k: usize) -> Self {
        MaxFlowTe {
            ctx: FixedContext::new(topology, theta, k),
        }
    }
}

impl TrafficEngineer for MaxFlowTe {
    fn name(&self) -> &str {
        "MaxFlow"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let (mcf, tunnels) = self.ctx.build_mcf(input.transfers, input.slot_len_s);
        let sol = mcf.max_throughput();
        let allocations = self.ctx.allocations_from(input.transfers, &tunnels, &sol);
        SlotPlan {
            topology: self.ctx.topology().clone(),
            throughput_gbps: allocations.iter().map(|a| a.total_rate()).sum(),
            allocations,
        }
    }
}

/// MaxMinFract baseline.
pub struct MaxMinFractTe {
    ctx: FixedContext,
}

impl MaxMinFractTe {
    /// Creates the engine over a fixed topology with `k` tunnels per pair.
    pub fn new(topology: Topology, theta: f64, k: usize) -> Self {
        MaxMinFractTe {
            ctx: FixedContext::new(topology, theta, k),
        }
    }
}

impl TrafficEngineer for MaxMinFractTe {
    fn name(&self) -> &str {
        "MaxMinFract"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let (mcf, tunnels) = self.ctx.build_mcf(input.transfers, input.slot_len_s);
        let (_alpha, sol) = mcf.max_min_fraction();
        let allocations = self.ctx.allocations_from(input.transfers, &tunnels, &sol);
        SlotPlan {
            topology: self.ctx.topology().clone(),
            throughput_gbps: allocations.iter().map(|a| a.total_rate()).sum(),
            allocations,
        }
    }
}

/// SWAN baseline: approximate max-min fairness via a geometric sequence of
/// throughput-maximizing LPs with per-commodity rate floors and ceilings.
pub struct SwanTe {
    ctx: FixedContext,
    /// Geometric growth factor of the fraction ceiling per iteration
    /// (the SWAN paper's `α`; 2 in their evaluation).
    growth: f64,
}

impl SwanTe {
    /// Creates the engine over a fixed topology with `k` tunnels per pair.
    pub fn new(topology: Topology, theta: f64, k: usize) -> Self {
        SwanTe {
            ctx: FixedContext::new(topology, theta, k),
            growth: 2.0,
        }
    }
}

impl TrafficEngineer for SwanTe {
    fn name(&self) -> &str {
        "SWAN"
    }

    fn plan_slot(&mut self, _plant: &FiberPlant, input: &SlotInput<'_>) -> SlotPlan {
        let (mcf, tunnels) = self.ctx.build_mcf(input.transfers, input.slot_len_s);
        let n = input.transfers.len();
        let demands: Vec<f64> = (0..n).map(|f| mcf.demand(f)).collect();
        let max_demand = demands.iter().fold(0.0_f64, |a, &b| a.max(b));

        let mut floor = vec![0.0; n];
        let mut last = None;
        if max_demand > 0.0 {
            // Fraction ceilings: alpha, alpha*growth, … up to 1.
            let mut alpha = 1.0 / 16.0;
            loop {
                let ceil: Vec<f64> = demands.iter().map(|&d| (alpha * d).min(d)).collect();
                match mcf.max_throughput_bounded(&floor, &ceil) {
                    Some(sol) => {
                        floor = (0..n).map(|f| sol.commodity_rate(f)).collect();
                        last = Some(sol);
                    }
                    None => break, // numerically stuck; keep the last solution
                }
                if alpha >= 1.0 {
                    break;
                }
                alpha = (alpha * self.growth).min(1.0);
            }
        }

        match last {
            Some(sol) => {
                let allocations = self.ctx.allocations_from(input.transfers, &tunnels, &sol);
                SlotPlan {
                    topology: self.ctx.topology().clone(),
                    throughput_gbps: allocations.iter().map(|a| a.total_rate()).sum(),
                    allocations,
                }
            }
            None => SlotPlan {
                topology: self.ctx.topology().clone(),
                throughput_gbps: 0.0,
                allocations: Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::Transfer;
    use owan_optical::OpticalParams;

    fn square() -> Topology {
        let mut t = Topology::empty(4);
        t.add_links(0, 1, 1);
        t.add_links(0, 2, 1);
        t.add_links(1, 3, 1);
        t.add_links(2, 3, 1);
        t
    }

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 0);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 100.0);
        }
        p
    }

    fn transfer(id: usize, src: usize, dst: usize, gbits: f64) -> Transfer {
        Transfer {
            id,
            src,
            dst,
            volume_gbits: gbits,
            remaining_gbits: gbits,
            arrival_s: 0.0,
            deadline_s: None,
            starved_slots: 0,
        }
    }

    fn run(engine: &mut dyn TrafficEngineer, transfers: &[Transfer]) -> SlotPlan {
        let p = plant();
        engine.plan_slot(
            &p,
            &SlotInput {
                transfers,
                slot_len_s: 1.0,
                now_s: 0.0,
            },
        )
    }

    #[test]
    fn maxflow_saturates_square() {
        let theta = 100.0;
        let mut e = MaxFlowTe::new(square(), theta, 4);
        // One transfer 0->3 with huge demand: both 2-hop paths usable,
        // total 200 Gbps.
        let ts = vec![transfer(0, 0, 3, 1e6)];
        let plan = run(&mut e, &ts);
        assert!(
            (plan.throughput_gbps - 200.0).abs() < 1e-4,
            "{}",
            plan.throughput_gbps
        );
    }

    #[test]
    fn maxflow_can_starve_minority() {
        // MaxFlow maximizes total; with a shared bottleneck it may starve
        // a flow. Just verify total optimality here.
        let mut e = MaxFlowTe::new(square(), 10.0, 4);
        let ts = vec![transfer(0, 0, 1, 1e6), transfer(1, 0, 3, 1e6)];
        let plan = run(&mut e, &ts);
        assert!(plan.throughput_gbps >= 20.0 - 1e-6);
    }

    #[test]
    fn maxmin_serves_everyone() {
        let mut e = MaxMinFractTe::new(square(), 10.0, 4);
        let ts = vec![
            transfer(0, 0, 3, 30.0),
            transfer(1, 1, 2, 30.0),
            transfer(2, 0, 1, 30.0),
        ];
        let plan = run(&mut e, &ts);
        for t in &ts {
            let a = plan.allocations.iter().find(|a| a.transfer == t.id);
            assert!(a.is_some(), "transfer {} starved by MaxMinFract", t.id);
        }
    }

    #[test]
    fn swan_beats_maxmin_on_throughput() {
        // A classic case: one long flow competing with two short flows.
        let mk_ts = || {
            vec![
                transfer(0, 0, 3, 1e5),
                transfer(1, 0, 1, 1e5),
                transfer(2, 2, 3, 1e5),
            ]
        };
        let mut swan = SwanTe::new(square(), 10.0, 4);
        let mut maxmin = MaxMinFractTe::new(square(), 10.0, 4);
        let sp = run(&mut swan, &mk_ts());
        let mp = run(&mut maxmin, &mk_ts());
        assert!(
            sp.throughput_gbps >= mp.throughput_gbps - 1e-6,
            "SWAN {} vs MaxMinFract {}",
            sp.throughput_gbps,
            mp.throughput_gbps
        );
    }

    #[test]
    fn swan_is_work_conserving_after_fairness() {
        let mut swan = SwanTe::new(square(), 10.0, 4);
        let ts = vec![transfer(0, 0, 3, 1e6)];
        let plan = run(&mut swan, &ts);
        // A single flow should get everything MaxFlow would give it.
        assert!(
            (plan.throughput_gbps - 20.0).abs() < 1e-4,
            "{}",
            plan.throughput_gbps
        );
    }

    #[test]
    fn empty_slot_is_fine() {
        for mut e in [
            Box::new(MaxFlowTe::new(square(), 10.0, 4)) as Box<dyn TrafficEngineer>,
            Box::new(MaxMinFractTe::new(square(), 10.0, 4)),
            Box::new(SwanTe::new(square(), 10.0, 4)),
        ] {
            let plan = run(e.as_mut(), &[]);
            assert_eq!(plan.throughput_gbps, 0.0);
            assert!(plan.allocations.is_empty());
        }
    }

    #[test]
    fn names() {
        assert_eq!(MaxFlowTe::new(square(), 1.0, 1).name(), "MaxFlow");
        assert_eq!(MaxMinFractTe::new(square(), 1.0, 1).name(), "MaxMinFract");
        assert_eq!(SwanTe::new(square(), 1.0, 1).name(), "SWAN");
    }
}
