//! Performance attribution for the Owan reproduction — the third
//! observability tier.
//!
//! owan-obs answers *what happened* (counters, histograms, stage totals),
//! owan-scope answers *in what order* (causal slot timelines, flight
//! dumps). This crate answers *where the time went*: RAII scoped regions
//! on thread-local stacks, aggregated into a self-time/total-time call
//! tree, exportable as folded-stack text (flamegraph-compatible) and as
//! spans that owan-scope merges into its Chrome trace.
//!
//! Like the other tiers it is std-only and zero-cost when disabled: a
//! [`Profiler`] is an `Option<Arc<...>>`, so the disabled default makes
//! [`Profiler::region`] a single `Option` check returning an inert guard.
//! When enabled, opening a region takes one mutex acquisition on the
//! shared call tree; regions are placed in per-run hot paths whose bodies
//! are microseconds to milliseconds, so the lock is never the bottleneck
//! (the quick bench records the measured overhead as `prof_overhead`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use owan_obs::{Clock, MonotonicClock};

/// Bound on retained raw spans (the aggregate tree is unbounded but tiny;
/// raw spans feed the Chrome-trace merge and are capped so a long run
/// cannot grow without bound). Overflowing spans still aggregate.
pub const PROF_SPAN_CAP: usize = 8192;

/// One node of the aggregated region tree, keyed by (parent, name).
struct Node {
    name: &'static str,
    parent: Option<usize>,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

/// A retained raw span (one completed region entry).
struct RawSpan {
    node: usize,
    parent: Option<usize>,
    start_ns: u64,
    end_ns: u64,
    tid: u32,
}

#[derive(Default)]
struct ProfState {
    nodes: Vec<Node>,
    spans: Vec<RawSpan>,
    spans_dropped: u64,
    tids: HashMap<ThreadId, u32>,
}

struct ProfInner {
    clock: Arc<dyn Clock>,
    state: Mutex<ProfState>,
}

thread_local! {
    /// Per-thread stack of open regions: (profiler tag, node id, span id).
    /// The tag distinguishes interleaved profilers on one thread.
    static REGION_STACK: RefCell<Vec<(usize, usize, Option<usize>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Handle to a region profiler, cheaply cloneable and shareable across
/// threads. The disabled default records nothing and every operation is
/// one `Option` check.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Names a node in the profiler's region tree; lets a spawned thread
/// attach its root region under the spawner's current region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionId(usize);

impl Profiler {
    /// The no-op profiler; all operations are early returns.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// An active profiler timing regions with a [`MonotonicClock`].
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// An active profiler with an injected clock (tests pass a
    /// [`owan_obs::ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Profiler {
            inner: Some(Arc::new(ProfInner {
                clock,
                state: Mutex::new(ProfState::default()),
            })),
        }
    }

    /// Whether this profiler captures anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a region named `name` nested under the calling thread's
    /// innermost open region (or as a root). The returned RAII guard
    /// closes the region on drop.
    pub fn region(&self, name: &'static str) -> Region {
        let parent = self.inner.as_ref().map(|inner| {
            let tag = Arc::as_ptr(inner) as usize;
            REGION_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|(t, _, _)| *t == tag)
                    .map(|&(_, node, _)| node)
            })
        });
        self.open(name, parent.flatten())
    }

    /// Opens a region under an explicit parent — for spawned threads
    /// whose thread-local stack is empty but whose work logically nests
    /// under the spawner's region (e.g. parallel annealing chains).
    pub fn region_under(&self, parent: Option<RegionId>, name: &'static str) -> Region {
        self.open(name, parent.map(|p| p.0))
    }

    fn open(&self, name: &'static str, parent: Option<usize>) -> Region {
        let Some(inner) = &self.inner else {
            return Region { inner: None };
        };
        let tag = Arc::as_ptr(inner) as usize;
        let (node, span, start_ns) = {
            let mut state = inner.state.lock().expect("profiler state poisoned");
            let node = state.intern(name, parent);
            let tid = state.tid(std::thread::current().id());
            let start_ns = inner.clock.now_ns();
            // Parent *span* is the innermost open region on this thread
            // (if any) — looked up by the caller before the lock.
            let parent_span = REGION_STACK.with(|s| {
                s.borrow()
                    .iter()
                    .rev()
                    .find(|(t, _, _)| *t == tag)
                    .and_then(|&(_, _, span)| span)
            });
            let span = if state.spans.len() < PROF_SPAN_CAP {
                state.spans.push(RawSpan {
                    node,
                    parent: parent_span,
                    start_ns,
                    end_ns: start_ns,
                    tid,
                });
                Some(state.spans.len() - 1)
            } else {
                state.spans_dropped += 1;
                None
            };
            (node, span, start_ns)
        };
        REGION_STACK.with(|s| s.borrow_mut().push((tag, node, span)));
        Region {
            inner: Some(OpenRegion {
                prof: Arc::clone(inner),
                node,
                span,
                start_ns,
            }),
        }
    }

    /// A point-in-time copy of the aggregated tree and retained spans.
    pub fn snapshot(&self) -> ProfSnapshot {
        let Some(inner) = &self.inner else {
            return ProfSnapshot::default();
        };
        let state = inner.state.lock().expect("profiler state poisoned");
        let mut nodes: Vec<ProfNode> = state
            .nodes
            .iter()
            .map(|n| ProfNode {
                name: n.name.to_string(),
                parent: n.parent,
                children: n.children.clone(),
                calls: n.calls,
                total_ns: n.total_ns,
                self_ns: n.total_ns,
            })
            .collect();
        // Self time = total minus children's totals. A child observed
        // mid-flight can momentarily exceed its parent; saturate.
        for i in 0..state.nodes.len() {
            if let Some(p) = state.nodes[i].parent {
                nodes[p].self_ns = nodes[p].self_ns.saturating_sub(state.nodes[i].total_ns);
            }
        }
        ProfSnapshot {
            nodes,
            spans: state
                .spans
                .iter()
                .map(|s| ProfSpan {
                    node: s.node,
                    parent: s.parent,
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                    tid: s.tid,
                })
                .collect(),
            spans_dropped: state.spans_dropped,
        }
    }

    /// Writes the aggregated tree as folded stacks (`a;b;c <self_ns>`),
    /// the input format flamegraph tooling consumes. No-op when disabled.
    pub fn write_folded<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        self.snapshot().write_folded(writer)
    }
}

impl ProfState {
    /// Finds or creates the tree node for `name` under `parent`.
    fn intern(&mut self, name: &'static str, parent: Option<usize>) -> usize {
        let found = match parent {
            Some(p) => self.nodes[p]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].name == name),
            None => (0..self.nodes.len())
                .find(|&i| self.nodes[i].parent.is_none() && self.nodes[i].name == name),
        };
        if let Some(idx) = found {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        idx
    }

    /// Small dense thread ordinal for span attribution.
    fn tid(&mut self, id: ThreadId) -> u32 {
        let next = self.tids.len() as u32;
        *self.tids.entry(id).or_insert(next)
    }
}

struct OpenRegion {
    prof: Arc<ProfInner>,
    node: usize,
    span: Option<usize>,
    start_ns: u64,
}

/// RAII guard for an open region; closing (dropping) it adds the elapsed
/// time to the region's tree node and finalizes its retained span.
pub struct Region {
    inner: Option<OpenRegion>,
}

impl Region {
    /// The tree node this region records into, for
    /// [`Profiler::region_under`] from spawned threads. `None` when the
    /// profiler is disabled.
    pub fn id(&self) -> Option<RegionId> {
        self.inner.as_ref().map(|o| RegionId(o.node))
    }

    /// Ends the region now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Region {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        let end_ns = open.prof.clock.now_ns();
        let tag = Arc::as_ptr(&open.prof) as usize;
        REGION_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, node, _)| t == tag && node == open.node)
            {
                stack.remove(pos);
            }
        });
        let mut state = open.prof.state.lock().expect("profiler state poisoned");
        let node = &mut state.nodes[open.node];
        node.calls += 1;
        node.total_ns += end_ns.saturating_sub(open.start_ns);
        if let Some(span) = open.span {
            state.spans[span].end_ns = end_ns;
        }
    }
}

/// One node of a snapshot's region tree.
#[derive(Debug, Clone)]
pub struct ProfNode {
    /// Region name (the leaf of its path).
    pub name: String,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
    /// Indices of child nodes.
    pub children: Vec<usize>,
    /// Completed entries into this region.
    pub calls: u64,
    /// Wall time inside this region, children included.
    pub total_ns: u64,
    /// Wall time inside this region, children excluded.
    pub self_ns: u64,
}

/// One retained raw span of a snapshot.
#[derive(Debug, Clone)]
pub struct ProfSpan {
    /// Index into [`ProfSnapshot::nodes`].
    pub node: usize,
    /// Index of the enclosing span on the same thread, if retained.
    pub parent: Option<usize>,
    /// Region open time (profiler clock).
    pub start_ns: u64,
    /// Region close time.
    pub end_ns: u64,
    /// Dense per-profiler thread ordinal.
    pub tid: u32,
}

/// A point-in-time copy of a profiler's contents.
#[derive(Debug, Clone, Default)]
pub struct ProfSnapshot {
    /// The aggregated region tree.
    pub nodes: Vec<ProfNode>,
    /// Retained raw spans, open order (capped at [`PROF_SPAN_CAP`]).
    pub spans: Vec<ProfSpan>,
    /// Spans not retained because the cap was reached (still aggregated).
    pub spans_dropped: u64,
}

impl ProfSnapshot {
    /// The `a;b;c` path of a node, root first.
    pub fn path(&self, node: usize) -> Vec<&str> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(i) = cur {
            path.push(self.nodes[i].name.as_str());
            cur = self.nodes[i].parent;
        }
        path.reverse();
        path
    }

    /// Writes folded stacks: one `path;leaf <self_ns>` line per node with
    /// nonzero self time, in stable (tree-index) order.
    pub fn write_folded<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.self_ns == 0 {
                continue;
            }
            writeln!(writer, "{} {}", self.path(i).join(";"), node.self_ns)?;
        }
        Ok(())
    }

    /// Renders the tree as an indented table: calls, total ms, self ms,
    /// and self share of all recorded root time.
    pub fn format_tree(&self) -> String {
        let root_total: u64 = self
            .nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.total_ns)
            .sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>9} {:>12} {:>12} {:>7}\n",
            "region", "calls", "total ms", "self ms", "self%"
        ));
        let roots: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent.is_none())
            .collect();
        for root in roots {
            self.format_node(&mut out, root, 0, root_total);
        }
        if self.spans_dropped > 0 {
            out.push_str(&format!(
                "({} spans past the {}-span cap aggregated only)\n",
                self.spans_dropped, PROF_SPAN_CAP
            ));
        }
        out
    }

    fn format_node(&self, out: &mut String, idx: usize, depth: usize, root_total: u64) {
        let n = &self.nodes[idx];
        let label = format!("{}{}", "  ".repeat(depth), n.name);
        let share = if root_total > 0 {
            100.0 * n.self_ns as f64 / root_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<40} {:>9} {:>12.3} {:>12.3} {:>6.1}%\n",
            label,
            n.calls,
            n.total_ns as f64 / 1e6,
            n.self_ns as f64 / 1e6,
            share
        ));
        for &child in &n.children {
            self.format_node(out, child, depth + 1, root_total);
        }
    }

    /// Total wall time across root regions.
    pub fn root_total_ns(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.parent.is_none())
            .map(|n| n.total_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_obs::ManualClock;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        {
            let outer = prof.region("outer");
            assert!(outer.id().is_none());
            let _inner = prof.region("inner");
        }
        let snap = prof.snapshot();
        assert!(snap.nodes.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn nesting_aggregates_self_and_total_time() {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        {
            let _a = prof.region("a");
            clock.advance_ns(5);
            {
                let _b = prof.region("b");
                clock.advance_ns(3);
            }
            clock.advance_ns(2);
        }
        {
            let _a = prof.region("a");
            clock.advance_ns(10);
        }
        let snap = prof.snapshot();
        assert_eq!(snap.nodes.len(), 2);
        let a = snap.nodes.iter().find(|n| n.name == "a").unwrap();
        let b = snap.nodes.iter().find(|n| n.name == "b").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 20);
        assert_eq!(a.self_ns, 17);
        assert_eq!(b.total_ns, 3);
        assert_eq!(b.parent, Some(0));
        assert_eq!(snap.path(1), vec!["a", "b"]);
    }

    #[test]
    fn folded_output_names_full_paths() {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        {
            let _a = prof.region("plan");
            clock.advance_ns(4);
            let _b = prof.region("anneal");
            clock.advance_ns(6);
        }
        let mut out = Vec::new();
        prof.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["plan 4", "plan;anneal 6"]);
    }

    #[test]
    fn region_under_attaches_cross_thread_work() {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        let parent = prof.region("parallel");
        let parent_id = parent.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _chain = prof.region_under(parent_id, "chain");
                clock.advance_ns(7);
            });
        });
        clock.advance_ns(1);
        drop(parent);
        let snap = prof.snapshot();
        let chain = snap.nodes.iter().position(|n| n.name == "chain").unwrap();
        assert_eq!(snap.path(chain), vec!["parallel", "chain"]);
        assert_eq!(snap.nodes[chain].total_ns, 7);
    }

    #[test]
    fn span_cap_drops_raw_spans_but_keeps_aggregates() {
        let clock = Arc::new(ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        for _ in 0..(PROF_SPAN_CAP + 5) {
            let _r = prof.region("tick");
            clock.advance_ns(1);
        }
        let snap = prof.snapshot();
        assert_eq!(snap.spans.len(), PROF_SPAN_CAP);
        assert_eq!(snap.spans_dropped, 5);
        assert_eq!(snap.nodes[0].calls, (PROF_SPAN_CAP + 5) as u64);
    }
}
