//! The hardened controller loop: [`run_chaos`] drives the full planning
//! path — anneal, circuit build, rate assignment, consistent update
//! scheduling — against a plant that fails and recovers underneath it.
//!
//! Differences from the fault-free `owan_sim::run_controller`:
//!
//! * The engine plans against the **believed** plant: faults (and
//!   repairs) become visible only after a detection delay.
//! * The scheduled update is **executed** through
//!   [`owan_update::execute_plan`] with injected per-op faults; timed-out
//!   and failed ops retry with capped exponential backoff, and past the
//!   retry budget their dependent subtree aborts. The slot then runs on
//!   the **achieved** state (what the surviving ops actually built), and
//!   that achieved state — not the target plan — seeds the next slot's
//!   delta, so the controller replans around the wreckage.
//! * A [`FaultKind::ControllerCrash`] discards the engine; a fresh one is
//!   built at the next slot boundary from the stored plant and transfer
//!   set (§3.4). Data-plane state (installed circuits and paths) is read
//!   back from the network, so recovery is stateless.
//! * Circuits that traverse a fiber cut the controller has not yet
//!   detected are blackholed: their paths deliver zero from the cut
//!   instant until the end of the slot.
//! * When the engine emits an infeasible plan, the slot degrades
//!   gracefully to the previous topology filtered to surviving links
//!   instead of erroring out.

use crate::fault::{FaultEvent, FaultKind, FaultState};
use crate::inject::OpFaultModel;
use crate::telemetry::ChaosTelemetry;
use owan_core::{build_topology, CircuitBuildConfig};
use owan_core::{
    Allocation, SlotInput, SlotPlan, Topology, TrafficEngineer, Transfer, TransferRequest,
};
use owan_obs::Recorder;
use owan_optical::{FiberId, FiberPlant, SiteId};
use owan_scope::{ScopeRecorder, SlotObservation};
use owan_sim::{build_scope_rows, plan_is_feasible, CompletionRecord, Failure};
use owan_update::{
    execute_plan, plan_consistent, throughput_timeline, NetworkDelta, OpKind, RetryPolicy,
    UpdateParams, UpdatePlan,
};
use owan_why::{TransferSample, WhyRecorder, WhySlotObservation};
use std::collections::{HashMap, HashSet};

const EPS: f64 = 1e-9;

/// Configuration for the hardened controller loop.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Slot length δ, seconds.
    pub slot_len_s: f64,
    /// Safety cap on simulated slots.
    pub max_slots: usize,
    /// Router path-programming time for the update scheduler.
    pub path_time_s: f64,
    /// Seconds between a fault striking and the controller seeing it.
    /// Applies to repairs too: a spliced fiber is not trusted instantly.
    pub detection_delay_s: f64,
    /// Retry budget and backoff for failed update ops.
    pub retry: RetryPolicy,
    /// Per-request adversarial flags aligned with the request list:
    /// `true` marks injected attack traffic, which is excluded from the
    /// background delivered accounting. Empty means all background.
    pub attack_flags: Vec<bool>,
    /// Network-layer links (normalized `u < v` site pairs) whose
    /// utilization the runner tracks per slot on the achieved plan.
    pub victim_links: Vec<(SiteId, SiteId)>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            slot_len_s: 300.0,
            max_slots: 2000,
            path_time_s: 0.1,
            detection_delay_s: 30.0,
            retry: RetryPolicy::default(),
            attack_flags: Vec::new(),
            victim_links: Vec::new(),
        }
    }
}

/// Aggregate fault/recovery counters for one run (the same numbers land
/// on the [`Recorder`] under the `chaos.` prefix).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosStats {
    /// Fault events whose detection delay elapsed during the run.
    pub faults_detected: u64,
    /// Op attempts re-run after an injected timeout or failure.
    pub op_retries: u64,
    /// Op attempts that timed out.
    pub op_timeouts: u64,
    /// Op attempts that failed fast.
    pub op_failures: u64,
    /// Ops aborted after the retry budget, plus their dependent subtree.
    pub op_aborts: u64,
    /// Controller crash restarts.
    pub crashes: u64,
    /// Slots that degraded to the filtered previous topology.
    pub fallback_slots: u64,
    /// Paths blackholed by undetected mid-slot cuts.
    pub blackhole_paths: u64,
    /// Volume lost to blackholed paths, gigabits.
    pub blackhole_gbits: f64,
}

/// Outcome of a chaos run. Mirrors `ControllerResult` plus fault
/// accounting.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Per-transfer outcomes, ordered by id.
    pub completions: Vec<CompletionRecord>,
    /// Delivered gigabits per slot `(slot start, gbits)`.
    pub delivered_series: Vec<(f64, f64)>,
    /// Total delivered volume, gigabits.
    pub delivered_gbits: f64,
    /// Delivered gigabits per slot for *background* transfers only —
    /// those not flagged in [`ChaosConfig::attack_flags`]. Identical to
    /// `delivered_series` when no attack flags are set.
    pub background_series: Vec<(f64, f64)>,
    /// Total background delivered volume, gigabits.
    pub background_gbits: f64,
    /// Per-slot peak utilization across [`ChaosConfig::victim_links`] on
    /// the achieved plan (`load / capacity`; 0 when no victims tracked).
    pub victim_util_series: Vec<(f64, f64)>,
    /// Absolute completion time of the last transfer, or simulation end.
    pub makespan_s: f64,
    /// Total scheduled update operations.
    pub update_ops: usize,
    /// Volume lost to update transitions, gigabits.
    pub transition_loss_gbits: f64,
    /// Fault/recovery counters.
    pub stats: ChaosStats,
    /// Slots the controller planned in. Idle waiting slots (no active
    /// transfer, or survivors stranded pending a repair) appear in
    /// `delivered_series` but are not counted here.
    pub slots: usize,
}

impl ChaosResult {
    /// True when every transfer finished.
    pub fn all_complete(&self) -> bool {
        self.completions.iter().all(|r| r.completion_s.is_some())
    }
}

/// Everything an external checker needs to audit one slot: the world as
/// the controller believed it, the transfers it planned for, the plan it
/// targeted, and the update schedule it executed. The oracle hooks in
/// here; returning an error aborts the run with that message.
pub struct SlotAudit<'a> {
    /// Slot index.
    pub slot: usize,
    /// Slot start, seconds.
    pub now_s: f64,
    /// The plant as the controller believed it (detection-delayed).
    pub believed_plant: &'a FiberPlant,
    /// Active transfers the slot planned for.
    pub transfers: &'a [Transfer],
    /// The target plan for the slot (engine output, or the fallback).
    pub plan: &'a SlotPlan,
    /// The delta from the achieved data-plane state into this plan
    /// (absent on the first slot).
    pub delta: Option<&'a NetworkDelta>,
    /// The scheduled update into this plan (absent on the first slot).
    pub update: Option<&'a UpdatePlan>,
    /// The update-scheduler parameters the run is using.
    pub params: UpdateParams,
    /// Slot length, seconds.
    pub slot_len_s: f64,
    /// True when the slot degraded to the filtered previous topology.
    pub used_fallback: bool,
}

/// Per-slot audit hook type.
pub type AuditHook<'a> = dyn FnMut(&SlotAudit) -> Result<(), String> + 'a;

/// Runs the hardened controller loop over `events`, injecting op faults
/// from `op_faults`. `make_engine` builds a fresh engine from the
/// believed plant — called once at start and again after every crash
/// (stateless restart). `audit`, when given, is invoked every planned
/// slot; an `Err` aborts the run.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    make_engine: &mut dyn FnMut(&FiberPlant) -> Box<dyn TrafficEngineer>,
    config: &ChaosConfig,
    events: &[FaultEvent],
    op_faults: &OpFaultModel,
    recorder: &Recorder,
    audit: Option<&mut AuditHook>,
) -> Result<ChaosResult, String> {
    run_chaos_traced(
        plant,
        requests,
        make_engine,
        config,
        events,
        op_faults,
        recorder,
        &ScopeRecorder::disabled(),
        audit,
    )
}

/// [`run_chaos`] with a flight recorder attached. Besides the sim-side
/// scope data (transfer lifecycle, flight frames, spans), the chaos loop
/// contributes what only it knows: the believed-vs-actual failure sets
/// per slot, per-slot fault events, and the anomaly triggers —
/// `plan.infeasible` (fallback slot), `update.retry_exhausted` (op
/// subtree aborted), `blackhole.undetected_cut` (paths dark under an
/// undetected cut). The *first* anomaly freezes the flight ring into a
/// deterministic dump.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_traced(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    make_engine: &mut dyn FnMut(&FiberPlant) -> Box<dyn TrafficEngineer>,
    config: &ChaosConfig,
    events: &[FaultEvent],
    op_faults: &OpFaultModel,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    audit: Option<&mut AuditHook>,
) -> Result<ChaosResult, String> {
    run_chaos_explained(
        plant,
        requests,
        make_engine,
        config,
        events,
        op_faults,
        recorder,
        scope,
        &WhyRecorder::disabled(),
        audit,
    )
}

/// [`run_chaos_traced`] with the tier-4 attribution/SLO collector on
/// top. The chaos loop feeds `why` the values only it knows: the
/// pre-blackhole (`full`) and post-blackhole (`live`) rate of every
/// achieved allocation, the transition scale, the slot's fault labels,
/// and whether an attack wave was active — exactly the inputs the
/// attribution engine needs to reproduce the runner's booked
/// blackhole-Gb figure bit-for-bit. A tripped SLO monitor freezes the
/// flight recorder through the existing [`ScopeRecorder::anomaly`]
/// path, so `verify --replay` reconstructs the dump unchanged.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_explained(
    plant: &FiberPlant,
    requests: &[TransferRequest],
    make_engine: &mut dyn FnMut(&FiberPlant) -> Box<dyn TrafficEngineer>,
    config: &ChaosConfig,
    events: &[FaultEvent],
    op_faults: &OpFaultModel,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    why: &WhyRecorder,
    mut audit: Option<&mut AuditHook>,
) -> Result<ChaosResult, String> {
    let theta = plant.params().wavelength_capacity_gbps;
    let scope_on = scope.is_enabled();
    if scope_on {
        scope.begin_run(requests);
    }
    let why_on = why.is_enabled();
    if why_on {
        why.begin_run(requests);
    }
    // Slot-event labels and per-transfer delivery feed both tier-2
    // frames and the tier-4 joiner.
    let trace_on = scope_on || why_on;
    let telem = ChaosTelemetry::new(recorder);
    let params = UpdateParams {
        theta_gbps: theta,
        circuit_time_s: plant.params().circuit_reconfig_time_s,
        path_time_s: config.path_time_s,
    };
    let circuit_cfg = CircuitBuildConfig::default();

    // Split the timeline: plant faults detect with delay; crashes take
    // effect at the slot boundary after they strike.
    let mut plant_events: Vec<FaultEvent> = events
        .iter()
        .filter(|e| e.kind.touches_plant())
        .copied()
        .collect();
    plant_events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    let mut crash_times: Vec<f64> = events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::ControllerCrash))
        .map(|e| e.time_s)
        .collect();
    crash_times.sort_by(|a, b| a.total_cmp(b));

    let mut transfers: Vec<Transfer> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| Transfer::from_request(id, r))
        .collect();
    let mut records: Vec<CompletionRecord> = requests
        .iter()
        .enumerate()
        .map(|(id, r)| CompletionRecord {
            id,
            volume_gbits: r.volume_gbits,
            arrival_s: r.arrival_s,
            deadline_s: r.deadline_s,
            completion_s: None,
            gbits_by_deadline: 0.0,
        })
        .collect();

    let mut state = FaultState::default();
    // Ground truth for the scope's believed-vs-actual frames: the same
    // plant events folded in with zero detection delay.
    let mut actual_state = FaultState::default();
    let mut actual_applied = 0usize;
    let mut detected = 0usize;
    let mut next_crash = 0usize;
    let mut believed: Option<(FiberPlant, Vec<Option<FiberId>>)> = None;
    let mut engine: Option<Box<dyn TrafficEngineer>> = None;

    // The data-plane state the network is actually in: survives crashes
    // (it lives in the switches, not the controller).
    let mut achieved_prev: Option<SlotPlan> = None;

    let mut stats = ChaosStats::default();
    let mut delivered_series: Vec<(f64, f64)> = Vec::new();
    let mut background_series: Vec<(f64, f64)> = Vec::new();
    let mut victim_util_series: Vec<(f64, f64)> = Vec::new();
    let is_attack = |id: usize| -> bool { config.attack_flags.get(id).copied().unwrap_or(false) };
    let mut makespan_s: f64 = 0.0;
    let mut update_ops = 0usize;
    let mut transition_loss_gbits = 0.0;
    let mut slots = 0usize;

    for slot in 0..config.max_slots {
        let now = slot as f64 * config.slot_len_s;
        let mut slot_events: Vec<String> = Vec::new();

        // 1. Detection: fold in events whose delay has elapsed.
        let mut changed = believed.is_none();
        while detected < plant_events.len()
            && plant_events[detected].time_s + config.detection_delay_s <= now + EPS
        {
            changed |= state.apply(&plant_events[detected].kind);
            telem.faults_detected.incr();
            stats.faults_detected += 1;
            detected += 1;
        }
        if changed {
            believed = Some(state.degraded_view(plant));
        }
        let (believed_plant, fiber_map) = believed.as_ref().expect("believed plant set");

        // 2. Crash restarts: any crash at or before this boundary kills
        // the running engine; a fresh instance takes over.
        while next_crash < crash_times.len() && crash_times[next_crash] <= now + EPS {
            if engine.is_some() {
                engine = None;
                telem.crashes.incr();
                stats.crashes += 1;
                if trace_on {
                    slot_events.push(fault_label(&FaultKind::ControllerCrash));
                }
            }
            next_crash += 1;
        }
        let eng = engine.get_or_insert_with(|| make_engine(believed_plant));
        eng.set_recorder(recorder.clone());

        // 3. Admission.
        let active: Vec<Transfer> = transfers
            .iter()
            .filter(|t| t.arrival_s <= now + EPS && !t.is_complete())
            .cloned()
            .collect();
        let pending = transfers
            .iter()
            .any(|t| t.arrival_s > now + EPS && !t.is_complete());
        if active.is_empty() && !pending {
            break;
        }
        let all_events_done = detected == plant_events.len() && next_crash == crash_times.len();
        let progress_possible = active.iter().any(|t| {
            believed_plant.router_ports(t.src) > 0 && believed_plant.router_ports(t.dst) > 0
        });
        if active.is_empty() || (!progress_possible && all_events_done) {
            // Nothing this slot can move: either all work is in the
            // future, or the survivors are permanently stranded (every
            // fault already landed, endpoints still dark).
            if !pending && all_events_done {
                break;
            }
            delivered_series.push((now, 0.0));
            background_series.push((now, 0.0));
            victim_util_series.push((now, 0.0));
            continue;
        }
        slots += 1;
        let slot_start_ns = recorder.now_ns();

        // 4. Plan on the believed plant; degrade gracefully if the
        // engine's answer is infeasible.
        let input = SlotInput {
            transfers: &active,
            slot_len_s: config.slot_len_s,
            now_s: now,
        };
        let plan_start_ns = recorder.now_ns();
        let mut plan = eng.plan_slot(believed_plant, &input);
        let plan_ns = recorder.now_ns().saturating_sub(plan_start_ns);
        let mut used_fallback = false;
        let plan_ok =
            plan_is_feasible(&plan, theta).is_ok() && plan.topology.ports_feasible(believed_plant);
        if !plan_ok {
            plan = fallback_plan(
                believed_plant,
                achieved_prev.as_ref(),
                &active,
                &transfers,
                theta,
                config.slot_len_s,
                &circuit_cfg,
            );
            used_fallback = true;
            telem.fallback_slots.incr();
            stats.fallback_slots += 1;
        }

        // 5. Schedule + execute the update from the achieved data-plane
        // state; the achieved (post-fault) state is what the slot runs on.
        let update_start_ns = recorder.now_ns();
        let mut slot_ops = 0usize;
        let mut slot_aborts = 0u64;
        let (achieved, transition, scale, loss) = match &achieved_prev {
            Some(prev) => {
                let delta = NetworkDelta::from_plans(
                    &prev.topology,
                    &prev.allocations,
                    &plan.topology,
                    &plan.allocations,
                    plant.params().wavelengths_per_fiber,
                );
                let update = plan_consistent(&delta, &params);
                update_ops += update.ops.len();
                slot_ops = update.ops.len();
                let mut inject = |op: usize, attempt: u32| op_faults.fault(slot, op, attempt);
                let report = execute_plan(&delta, &update, &config.retry, &mut inject);
                stats.op_retries += report.retries;
                stats.op_timeouts += report.timeouts;
                stats.op_failures += report.failures;
                stats.op_aborts += report.aborted;
                slot_aborts = report.aborted;
                telem.op_retries.add(report.retries);
                telem.op_timeouts.add(report.timeouts);
                telem.op_failures.add(report.failures);
                telem.op_aborts.add(report.aborted);
                if trace_on && report.retries > 0 {
                    slot_events.push(format!("op.retries {}", report.retries));
                }
                if trace_on && report.aborted > 0 {
                    slot_events.push(format!("op.aborts {}", report.aborted));
                }
                let achieved = achieved_state(prev, &delta, &report, theta);
                let executed = report.as_executed_plan();
                let (scale, loss) = transition_factor(
                    &delta,
                    &executed,
                    &params,
                    config.slot_len_s,
                    achieved.throughput_gbps,
                );
                (achieved, Some((delta, update)), scale, loss)
            }
            // First plan: greenfield build, no transition to pay.
            None => (plan.clone(), None, 1.0, 0.0),
        };
        let update_ns = recorder.now_ns().saturating_sub(update_start_ns);
        transition_loss_gbits += loss;

        if let Some(hook) = audit.as_deref_mut() {
            let a = SlotAudit {
                slot,
                now_s: now,
                believed_plant,
                transfers: &active,
                plan: &plan,
                delta: transition.as_ref().map(|(d, _)| d),
                update: transition.as_ref().map(|(_, u)| u),
                slot_len_s: config.slot_len_s,
                params,
                used_fallback,
            };
            hook(&a).map_err(|e| format!("audit failed at slot {slot}: {e}"))?;
        }

        // 6. Blackholes: cuts that struck but are still undetected kill
        // every path over a circuit that traverses them, from the cut
        // instant to the end of the slot.
        let slot_end = now + config.slot_len_s;
        let path_live_frac = blackhole_fractions(
            believed_plant,
            fiber_map,
            &achieved,
            &plant_events[detected..],
            now,
            slot_end,
            &circuit_cfg,
        );
        let dark_paths = path_live_frac.values().filter(|f| **f < 1.0 - EPS).count() as u64;
        telem.blackhole_paths.add(dark_paths);
        stats.blackhole_paths += dark_paths;
        if trace_on && dark_paths > 0 {
            slot_events.push(format!("blackhole.paths {dark_paths}"));
        }

        // 7. Deliver on the achieved state, discounted by the transition
        // and any blackholes.
        let mut slot_delivered = 0.0;
        let mut slot_background = 0.0;
        let mut got_rate = vec![false; transfers.len()];
        let mut per_delivered = trace_on.then(|| vec![0.0f64; transfers.len()]);
        for (ai, alloc) in achieved.allocations.iter().enumerate() {
            let rate_alloc: f64 = alloc
                .paths
                .iter()
                .enumerate()
                .map(|(pi, (_, r))| r * path_live_frac.get(&(ai, pi)).copied().unwrap_or(1.0))
                .sum();
            let full_alloc = alloc.total_rate();
            let lost = (full_alloc - rate_alloc).max(0.0) * scale * config.slot_len_s;
            if lost > EPS {
                stats.blackhole_gbits += lost;
            }
            let rate = rate_alloc * scale;
            if rate <= EPS {
                continue;
            }
            got_rate[alloc.transfer] = true;
            let t = &mut transfers[alloc.transfer];
            let remaining_before = t.remaining_gbits;
            let rec = &mut records[alloc.transfer];
            if let Some(d) = t.deadline_s {
                if d > now {
                    let usable = (d - now).min(config.slot_len_s);
                    let by_deadline = (rate * usable).min(t.remaining_gbits);
                    rec.gbits_by_deadline =
                        (rec.gbits_by_deadline + by_deadline).min(t.volume_gbits);
                }
            }
            // Completion keys off the effective allocated rate, as in the
            // fault-free controller: scaled delivery only shifts the
            // finish instant inside the slot.
            if rate_alloc * config.slot_len_s + EPS >= t.remaining_gbits {
                let finish = now + t.remaining_gbits / rate;
                slot_delivered += t.remaining_gbits;
                t.remaining_gbits = 0.0;
                rec.completion_s = Some(finish);
                makespan_s = makespan_s.max(finish);
            } else {
                let vol = rate * config.slot_len_s;
                t.remaining_gbits -= vol;
                slot_delivered += vol;
            }
            if !is_attack(alloc.transfer) {
                slot_background += remaining_before - t.remaining_gbits;
            }
            if let Some(delivered) = per_delivered.as_mut() {
                delivered[alloc.transfer] += remaining_before - t.remaining_gbits;
            }
        }
        delivered_series.push((now, slot_delivered));
        background_series.push((now, slot_background));
        victim_util_series.push((
            now,
            victim_utilization(&achieved, &config.victim_links, theta),
        ));

        // Starvation bookkeeping feeds the §3.2 guard in the engine.
        let mut queue_depth = 0usize;
        for t in transfers.iter_mut() {
            if t.arrival_s <= now + EPS && !t.is_complete() {
                if got_rate[t.id] {
                    t.starved_slots = 0;
                } else {
                    t.starved_slots += 1;
                    queue_depth += 1;
                }
            }
        }

        if let Some(delivered) = &per_delivered {
            // Fold in every plant event that struck during this slot —
            // detected or not — so the frame's actual_down is ground
            // truth while believed_down lags by the detection delay.
            // The same labels become the tier-4 joiner's fault instants.
            while actual_applied < plant_events.len()
                && plant_events[actual_applied].time_s < now + config.slot_len_s - EPS
            {
                actual_state.apply(&plant_events[actual_applied].kind);
                slot_events.push(fault_label(&plant_events[actual_applied].kind));
                actual_applied += 1;
            }
            if scope_on {
                let believed_down: Vec<String> =
                    state.active_failures().iter().map(failure_label).collect();
                let actual_down: Vec<String> = actual_state
                    .active_failures()
                    .iter()
                    .map(failure_label)
                    .collect();
                let at_risk = active
                    .iter()
                    .filter(|a| a.deadline_s.is_some() && !transfers[a.id].is_complete())
                    .filter(|a| {
                        let deadline = a.deadline_s.expect("filtered to deadline transfers");
                        let rate = achieved
                            .allocations
                            .iter()
                            .find(|al| al.transfer == a.id)
                            .map_or(0.0, Allocation::total_rate);
                        let horizon = (deadline - now).max(0.0);
                        rate * horizon + EPS < transfers[a.id].remaining_gbits
                    })
                    .count();
                let rows = build_scope_rows(&active, &achieved, &transfers, &records, delivered);
                scope.record_slot(&SlotObservation {
                    slot,
                    now_s: now,
                    slot_len_s: config.slot_len_s,
                    start_ns: slot_start_ns,
                    end_ns: recorder.now_ns().max(slot_start_ns),
                    plan_start_ns,
                    plan_ns,
                    anneal_ns: 0,
                    circuits_ns: 0,
                    rates_ns: 0,
                    update_ns,
                    update_ops: slot_ops,
                    throughput_gbps: achieved.throughput_gbps,
                    active_transfers: active.len(),
                    queue_depth,
                    at_risk,
                    plan: &achieved,
                    rows: &rows,
                    believed_down: &believed_down,
                    actual_down: &actual_down,
                    events: &slot_events,
                });
                scope.record_extra_span(
                    "chaos",
                    "update.execute",
                    update_start_ns,
                    update_start_ns.saturating_add(update_ns),
                    Vec::new(),
                );
            }
            if used_fallback {
                scope.anomaly("plan.infeasible", slot);
            }
            if slot_aborts > 0 {
                scope.anomaly("update.retry_exhausted", slot);
            }
            if dark_paths > 0 {
                scope.anomaly("blackhole.undetected_cut", slot);
            }
            if why_on {
                // Tier-4 feed: recompute each achieved allocation's
                // full and live rate with the exact expressions the
                // delivery loop used, in the same order, so the why
                // report's Gb ledger reproduces `stats.blackhole_gbits`
                // bit-for-bit.
                let mut samples: Vec<TransferSample> = Vec::with_capacity(active.len());
                let mut sampled = vec![false; transfers.len()];
                for (ai, alloc) in achieved.allocations.iter().enumerate() {
                    let rate_alloc: f64 = alloc
                        .paths
                        .iter()
                        .enumerate()
                        .map(|(pi, (_, r))| {
                            r * path_live_frac.get(&(ai, pi)).copied().unwrap_or(1.0)
                        })
                        .sum();
                    let full_alloc = alloc.total_rate();
                    sampled[alloc.transfer] = true;
                    samples.push(TransferSample {
                        id: alloc.transfer,
                        full_rate_gbps: full_alloc,
                        live_rate_gbps: rate_alloc,
                        delivered_gbits: delivered[alloc.transfer],
                        remaining_gbits: transfers[alloc.transfer].remaining_gbits,
                        completion_s: records[alloc.transfer].completion_s,
                        queued: full_alloc <= EPS,
                    });
                }
                for t in &active {
                    if !sampled[t.id] {
                        samples.push(TransferSample {
                            id: t.id,
                            full_rate_gbps: 0.0,
                            live_rate_gbps: 0.0,
                            delivered_gbits: 0.0,
                            remaining_gbits: transfers[t.id].remaining_gbits,
                            completion_s: records[t.id].completion_s,
                            queued: true,
                        });
                    }
                }
                let attack_active = active.iter().any(|t| is_attack(t.id));
                if let Some(reason) = why.observe_slot(&WhySlotObservation {
                    slot,
                    now_s: now,
                    slot_len_s: config.slot_len_s,
                    start_ns: slot_start_ns,
                    end_ns: recorder.now_ns().max(slot_start_ns),
                    plan_ns,
                    transition_scale: scale,
                    throughput_gbps: achieved.throughput_gbps,
                    attack_active,
                    samples: &samples,
                    events: &slot_events,
                }) {
                    scope.anomaly(reason, slot);
                }
            }
        }

        achieved_prev = Some(achieved);
    }

    if !records.iter().all(|r| r.completion_s.is_some()) {
        makespan_s = makespan_s.max(delivered_series.len() as f64 * config.slot_len_s);
    }
    let delivered_gbits = delivered_series.iter().map(|(_, g)| g).sum();
    let background_gbits = background_series.iter().map(|(_, g)| g).sum();

    Ok(ChaosResult {
        completions: records,
        delivered_series,
        delivered_gbits,
        background_series,
        background_gbits,
        victim_util_series,
        makespan_s,
        update_ops,
        transition_loss_gbits,
        stats,
        slots,
    })
}

/// Peak utilization across the tracked victim links on one achieved
/// plan: summed path load over a link divided by its capacity in the
/// achieved topology. A loaded link with zero achieved capacity counts
/// as fully utilized (traffic is riding a link that no longer exists).
fn victim_utilization(plan: &SlotPlan, victims: &[(SiteId, SiteId)], theta: f64) -> f64 {
    if victims.is_empty() {
        return 0.0;
    }
    let mut load: HashMap<(SiteId, SiteId), f64> = HashMap::new();
    for alloc in &plan.allocations {
        for (nodes, r) in &alloc.paths {
            for w in nodes.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                *load.entry(key).or_insert(0.0) += *r;
            }
        }
    }
    let mut peak: f64 = 0.0;
    for &(u, v) in victims {
        let key = (u.min(v), u.max(v));
        let l = load.get(&key).copied().unwrap_or(0.0);
        let cap = plan.topology.multiplicity(key.0, key.1) as f64 * theta;
        if cap > EPS {
            peak = peak.max(l / cap);
        } else if l > EPS {
            peak = peak.max(1.0);
        }
    }
    peak
}

/// Stable label for an active failure in flight-dump frames.
fn failure_label(f: &Failure) -> String {
    match f {
        Failure::FiberCut(id) => format!("fiber_cut {id}"),
        Failure::SiteDown(s) => format!("site_down {s}"),
        Failure::AmpDegraded { fiber, usable } => {
            format!("amp_degraded {fiber} usable={usable}")
        }
    }
}

/// Stable label for a timeline event in flight-dump frames.
fn fault_label(k: &FaultKind) -> String {
    match k {
        FaultKind::FiberCut(id) => format!("fault fiber_cut {id}"),
        FaultKind::FiberRepaired(id) => format!("repair fiber {id}"),
        FaultKind::SiteDown(s) => format!("fault site_down {s}"),
        FaultKind::SiteUp(s) => format!("repair site {s}"),
        FaultKind::AmpDegraded { fiber, usable } => {
            format!("fault amp_degraded {fiber} usable={usable}")
        }
        FaultKind::AmpRepaired(id) => format!("repair amp {id}"),
        FaultKind::ControllerCrash => "fault controller_crash".to_string(),
    }
}

/// Graceful degradation (§3.4): the previous topology filtered to links
/// whose endpoints and fiber routes survive, re-realized on the believed
/// plant, carrying the previous allocations clamped to what still fits.
fn fallback_plan(
    believed: &FiberPlant,
    prev: Option<&SlotPlan>,
    active: &[Transfer],
    transfers: &[Transfer],
    theta: f64,
    slot_len_s: f64,
    circuit_cfg: &CircuitBuildConfig,
) -> SlotPlan {
    let n = believed.site_count();
    let empty = SlotPlan {
        topology: Topology::empty(n),
        allocations: Vec::new(),
        throughput_gbps: 0.0,
    };
    let Some(prev) = prev else { return empty };

    let fd = believed.fiber_distance_matrix();
    let mut desired = Topology::empty(n);
    for (u, v, m) in prev.topology.links() {
        if believed.router_ports(u) > 0 && believed.router_ports(v) > 0 && fd[u][v].is_finite() {
            desired.add_links(u, v, m);
        }
    }
    let built = build_topology(believed, &desired, &fd, circuit_cfg);
    let topo = built.achieved;

    let active_ids: HashSet<usize> = active.iter().map(|t| t.id).collect();
    let mut allocations: Vec<Allocation> = Vec::new();
    for alloc in &prev.allocations {
        if !active_ids.contains(&alloc.transfer) {
            continue;
        }
        let paths: Vec<(Vec<SiteId>, f64)> = alloc
            .paths
            .iter()
            .filter(|(nodes, r)| {
                *r > EPS && nodes.windows(2).all(|w| topo.multiplicity(w[0], w[1]) > 0)
            })
            .cloned()
            .collect();
        if paths.is_empty() {
            continue;
        }
        let demand = transfers[alloc.transfer].remaining_gbits / slot_len_s;
        let total: f64 = paths.iter().map(|(_, r)| r).sum();
        let clamp = if total > demand && total > EPS {
            demand / total
        } else {
            1.0
        };
        allocations.push(Allocation {
            transfer: alloc.transfer,
            paths: paths
                .into_iter()
                .map(|(nodes, r)| (nodes, r * clamp))
                .collect(),
        });
    }
    scale_to_capacity(&mut allocations, &topo, theta);
    let throughput_gbps = allocations.iter().map(Allocation::total_rate).sum();
    SlotPlan {
        topology: topo,
        allocations,
        throughput_gbps,
    }
}

/// Uniformly scales `allocations` down so no link carries more than its
/// capacity in `topo`. A no-op when everything already fits.
fn scale_to_capacity(allocations: &mut [Allocation], topo: &Topology, theta: f64) {
    let mut load: HashMap<(SiteId, SiteId), f64> = HashMap::new();
    for alloc in allocations.iter() {
        for (nodes, r) in &alloc.paths {
            for w in nodes.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                *load.entry(key).or_insert(0.0) += r;
            }
        }
    }
    let mut overload: f64 = 1.0;
    for (&(u, v), &l) in &load {
        let cap = topo.multiplicity(u, v) as f64 * theta;
        if cap <= EPS {
            if l > EPS {
                overload = f64::INFINITY;
            }
        } else {
            overload = overload.max(l / cap);
        }
    }
    if overload > 1.0 + 1e-6 {
        let f = if overload.is_finite() {
            1.0 / overload
        } else {
            0.0
        };
        for alloc in allocations.iter_mut() {
            for (_, r) in alloc.paths.iter_mut() {
                *r *= f;
            }
        }
    }
}

/// The state the network actually reached after executing the update:
/// completed teardowns/setups applied to the previous topology, removed
/// paths that survived an aborted removal still installed, added paths
/// present only when their install op completed.
fn achieved_state(
    prev: &SlotPlan,
    delta: &NetworkDelta,
    report: &owan_update::ExecReport,
    theta: f64,
) -> SlotPlan {
    let completed: HashSet<OpKind> = report
        .ops
        .iter()
        .filter(|o| o.completed())
        .map(|o| o.kind)
        .collect();

    let mut topo = prev.topology.clone();
    for (i, c) in delta.removed_circuits.iter().enumerate() {
        if completed.contains(&OpKind::TeardownCircuit(i)) {
            topo.remove_links(c.u, c.v, 1);
        }
    }
    for (i, c) in delta.added_circuits.iter().enumerate() {
        if completed.contains(&OpKind::SetupCircuit(i)) {
            topo.add_links(c.u, c.v, 1);
        }
    }

    // Paths, grouped back into per-transfer allocations in delta order.
    let mut by_transfer: HashMap<usize, Vec<(Vec<SiteId>, f64)>> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    let push = |t: usize,
                nodes: &[SiteId],
                rate: f64,
                by: &mut HashMap<usize, Vec<(Vec<SiteId>, f64)>>,
                order: &mut Vec<usize>| {
        if rate <= EPS {
            return;
        }
        if !by.contains_key(&t) {
            order.push(t);
        }
        by.entry(t).or_default().push((nodes.to_vec(), rate));
    };
    for p in &delta.unchanged_paths {
        push(
            p.transfer,
            &p.nodes,
            p.rate_gbps,
            &mut by_transfer,
            &mut order,
        );
    }
    for (i, p) in delta.removed_paths.iter().enumerate() {
        if !completed.contains(&OpKind::RemovePath(i)) {
            push(
                p.transfer,
                &p.nodes,
                p.rate_gbps,
                &mut by_transfer,
                &mut order,
            );
        }
    }
    for (i, p) in delta.added_paths.iter().enumerate() {
        if completed.contains(&OpKind::AddPath(i)) {
            push(
                p.transfer,
                &p.nodes,
                p.rate_gbps,
                &mut by_transfer,
                &mut order,
            );
        }
    }
    let mut allocations: Vec<Allocation> = order
        .into_iter()
        .map(|t| Allocation {
            transfer: t,
            paths: by_transfer.remove(&t).unwrap_or_default(),
        })
        .collect();

    // Defensive clamp: an aborted removal can leave load on a link whose
    // teardown completed regardless (the scheduler only sees explicit
    // dependencies); never deliver above physical capacity.
    scale_to_capacity(&mut allocations, &topo, theta);
    let throughput_gbps = allocations.iter().map(Allocation::total_rate).sum();
    SlotPlan {
        topology: topo,
        allocations,
        throughput_gbps,
    }
}

/// How much of a slot each transition actually carried: the timeline of
/// the *executed* plan (actual post-retry op times, aborted ops absent)
/// integrated over the transition window, then steady at the achieved
/// rate. Returns `(scale, loss_gbits)` like the fault-free controller.
fn transition_factor(
    delta: &NetworkDelta,
    executed: &UpdatePlan,
    params: &UpdateParams,
    slot_len_s: f64,
    achieved_total_gbps: f64,
) -> (f64, f64) {
    if executed.ops.is_empty() || achieved_total_gbps <= EPS {
        return (1.0, 0.0);
    }
    let window = executed.makespan_s.min(slot_len_s);
    if window <= EPS {
        return (1.0, 0.0);
    }
    let dt = (window / 64.0).max(0.05);
    let tl = throughput_timeline(delta, executed, params, dt, window);
    let mut carried_gbits = 0.0;
    for w in tl.windows(2) {
        carried_gbits +=
            0.5 * (w[0].throughput_gbps + w[1].throughput_gbps) * (w[1].time_s - w[0].time_s);
    }
    let ideal_gbits = achieved_total_gbps * window;
    let steady_gbits = achieved_total_gbps * (slot_len_s - window);
    let slot_ideal = achieved_total_gbps * slot_len_s;
    let delivered = carried_gbits + steady_gbits;
    let scale = (delivered / slot_ideal).clamp(0.0, 1.0);
    (scale, (ideal_gbits - carried_gbits).max(0.0))
}

/// For every path in `achieved`, the fraction of the slot it actually
/// carries traffic, given the cuts that struck but are still undetected.
/// Keys are `(allocation index, path index)`; absent keys mean 1.0.
/// Conservative: a link is dark when *any* of its circuits traverses a
/// dark fiber.
fn blackhole_fractions(
    believed: &FiberPlant,
    fiber_map: &[Option<FiberId>],
    achieved: &SlotPlan,
    undetected: &[FaultEvent],
    now: f64,
    slot_end: f64,
    circuit_cfg: &CircuitBuildConfig,
) -> HashMap<(usize, usize), f64> {
    let mut out = HashMap::new();
    // Dark fibers in *believed* ids, with the instant they go dark.
    let mut dark_fibers: HashMap<FiberId, f64> = HashMap::new();
    let mut dark_sites: HashMap<SiteId, f64> = HashMap::new();
    for e in undetected {
        if e.time_s >= slot_end - EPS {
            continue;
        }
        match e.kind {
            FaultKind::FiberCut(orig) => {
                if let Some(&Some(bid)) = fiber_map.get(orig) {
                    let t = dark_fibers.entry(bid).or_insert(f64::INFINITY);
                    *t = t.min(e.time_s);
                }
            }
            FaultKind::SiteDown(s) => {
                let t = dark_sites.entry(s).or_insert(f64::INFINITY);
                *t = t.min(e.time_s);
                for (bid, f) in believed.fibers().iter().enumerate() {
                    if f.a == s || f.b == s {
                        let t = dark_fibers.entry(bid).or_insert(f64::INFINITY);
                        *t = t.min(e.time_s);
                    }
                }
            }
            _ => {}
        }
    }
    if dark_fibers.is_empty() && dark_sites.is_empty() {
        return out;
    }

    // Re-realize the achieved topology on the believed plant to recover
    // the link → fiber mapping the data plane is using.
    let fd = believed.fiber_distance_matrix();
    let built = build_topology(believed, &achieved.topology, &fd, circuit_cfg);
    let mut dark_links: HashMap<(SiteId, SiteId), f64> = HashMap::new();
    for ((u, v), ids) in &built.circuits {
        let mut dark_at = f64::INFINITY;
        for &cid in ids {
            if let Some(c) = built.optical.circuit(cid) {
                for seg in &c.segments {
                    for &f in &seg.fibers {
                        if let Some(&t) = dark_fibers.get(&f) {
                            dark_at = dark_at.min(t);
                        }
                    }
                }
            }
        }
        if dark_at.is_finite() {
            dark_links.insert((*u.min(v), *u.max(v)), dark_at);
        }
    }

    for (ai, alloc) in achieved.allocations.iter().enumerate() {
        for (pi, (nodes, rate)) in alloc.paths.iter().enumerate() {
            if *rate <= EPS {
                continue;
            }
            let mut dark_at = f64::INFINITY;
            for n in nodes {
                if let Some(&t) = dark_sites.get(n) {
                    dark_at = dark_at.min(t);
                }
            }
            for w in nodes.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                if let Some(&t) = dark_links.get(&key) {
                    dark_at = dark_at.min(t);
                }
            }
            if dark_at.is_finite() {
                let frac = ((dark_at.max(now) - now) / (slot_end - now)).clamp(0.0, 1.0);
                out.insert((ai, pi), frac);
            }
        }
    }
    out
}
