//! Chaos counters on the shared [`Recorder`]: how often faults were
//! detected, ops retried or aborted, the controller crashed, the planner
//! fell back, and traffic was blackholed. All land in the obs JSONL
//! export under the `chaos.` prefix.

use owan_obs::{Counter, Recorder};

/// Pre-resolved counter handles for the chaos runner. Cheap to clone;
/// disabled recorders produce no-op handles.
#[derive(Debug, Clone)]
pub struct ChaosTelemetry {
    /// Plant/controller fault events whose detection delay elapsed.
    pub faults_detected: Counter,
    /// Update-op attempts re-run after a timeout or failure.
    pub op_retries: Counter,
    /// Update-op attempts that timed out.
    pub op_timeouts: Counter,
    /// Update-op attempts that failed fast.
    pub op_failures: Counter,
    /// Ops aborted (retry budget exhausted, or a prerequisite aborted).
    pub op_aborts: Counter,
    /// Controller crash restarts.
    pub crashes: Counter,
    /// Slots where the engine plan was rejected and the previous
    /// topology (filtered to surviving links) was used instead.
    pub fallback_slots: Counter,
    /// Paths blackholed by a not-yet-detected cut mid-slot.
    pub blackhole_paths: Counter,
}

impl ChaosTelemetry {
    /// Handles registered on `recorder` (no-ops when it is disabled).
    pub fn new(recorder: &Recorder) -> Self {
        ChaosTelemetry {
            faults_detected: recorder.counter("chaos.faults_detected"),
            op_retries: recorder.counter("chaos.op_retries"),
            op_timeouts: recorder.counter("chaos.op_timeouts"),
            op_failures: recorder.counter("chaos.op_failures"),
            op_aborts: recorder.counter("chaos.op_aborts"),
            crashes: recorder.counter("chaos.crashes"),
            fallback_slots: recorder.counter("chaos.fallback_slots"),
            blackhole_paths: recorder.counter("chaos.blackhole_paths"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_chaos_prefix() {
        let rec = Recorder::enabled();
        let t = ChaosTelemetry::new(&rec);
        t.op_retries.add(3);
        t.crashes.incr();
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("chaos.op_retries"), Some(&3));
        assert_eq!(snap.counters.get("chaos.crashes"), Some(&1));
    }

    #[test]
    fn disabled_recorder_is_noop() {
        let t = ChaosTelemetry::new(&Recorder::disabled());
        t.op_aborts.add(10);
        assert_eq!(t.op_aborts.get(), 0);
    }
}
