//! The fault model: timed events that hit the plant or the controller,
//! and the fold that turns a history of events into the set of failures
//! currently active.
//!
//! Events extend the one-way [`Failure`] set of `owan-sim` with repairs
//! (`FiberRepaired`, `SiteUp`, `AmpRepaired`) and a control-plane fault
//! (`ControllerCrash`) that never touches the plant at all. The
//! controller does not see events directly: it sees the *believed* plant,
//! derived from events whose detection delay has elapsed.

use owan_optical::{FiberId, FiberPlant, SiteId};
use owan_sim::{degrade_plant_mapped, Failure};
use std::collections::{BTreeMap, BTreeSet};

/// One kind of fault (or repair) in a chaos timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The fiber is cut: it disappears from the plant.
    FiberCut(FiberId),
    /// A previously cut fiber is spliced back; the plant segment returns
    /// exactly as it was (same length, same wavelength budget).
    FiberRepaired(FiberId),
    /// A site goes dark: router ports drop to zero, incident fibers die.
    SiteDown(SiteId),
    /// A dark site comes back up with its original ports and fibers.
    SiteUp(SiteId),
    /// An amplifier fault shrinks the fiber's usable wavelengths to
    /// `usable`. Repeated degradations of one fiber compose by minimum.
    AmpDegraded {
        /// Affected fiber.
        fiber: FiberId,
        /// Usable wavelengths remaining.
        usable: u32,
    },
    /// The amplifier is swapped; the fiber's full budget returns.
    AmpRepaired(FiberId),
    /// The controller process dies. It restarts statelessly at the next
    /// slot boundary from the stored plant and transfer set (§3.4: "the
    /// new instance will start to compute and reconfigure the network at
    /// the next time slot").
    ControllerCrash,
}

impl FaultKind {
    /// True for events that change the physical plant (everything except
    /// a controller crash).
    pub fn touches_plant(&self) -> bool {
        !matches!(self, FaultKind::ControllerCrash)
    }
}

/// A fault at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, seconds since simulation start.
    pub time_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Shorthand constructor.
    pub fn at(time_s: f64, kind: FaultKind) -> Self {
        FaultEvent { time_s, kind }
    }
}

/// The set of failures currently active: the left fold of applied
/// events. Internally keyed on original (undegraded) plant ids, so
/// applying and un-applying events is exact regardless of how fiber ids
/// shift in the degraded view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultState {
    cut_fibers: BTreeSet<FiberId>,
    down_sites: BTreeSet<SiteId>,
    amp_caps: BTreeMap<FiberId, u32>,
}

impl FaultState {
    /// Folds one event into the state. Returns true when the
    /// plant-visible state changed (a crash never does; a repeat cut of
    /// an already-cut fiber doesn't either).
    pub fn apply(&mut self, kind: &FaultKind) -> bool {
        match *kind {
            FaultKind::FiberCut(f) => self.cut_fibers.insert(f),
            FaultKind::FiberRepaired(f) => self.cut_fibers.remove(&f),
            FaultKind::SiteDown(s) => self.down_sites.insert(s),
            FaultKind::SiteUp(s) => self.down_sites.remove(&s),
            FaultKind::AmpDegraded { fiber, usable } => {
                let prev = self.amp_caps.get(&fiber).copied();
                let next = prev.map_or(usable, |p| p.min(usable));
                self.amp_caps.insert(fiber, next);
                prev != Some(next)
            }
            FaultKind::AmpRepaired(f) => self.amp_caps.remove(&f).is_some(),
            FaultKind::ControllerCrash => false,
        }
    }

    /// True when no failure is active — degrading by this state is the
    /// identity (repairs restored the original plant exactly).
    pub fn is_clear(&self) -> bool {
        self.cut_fibers.is_empty() && self.down_sites.is_empty() && self.amp_caps.is_empty()
    }

    /// The active failures as the `owan-sim` failure set, in a
    /// deterministic order (cuts, then site downs, then amp caps, each
    /// ascending by id).
    pub fn active_failures(&self) -> Vec<Failure> {
        let mut out = Vec::new();
        out.extend(self.cut_fibers.iter().map(|&f| Failure::FiberCut(f)));
        out.extend(self.down_sites.iter().map(|&s| Failure::SiteDown(s)));
        out.extend(
            self.amp_caps
                .iter()
                .map(|(&fiber, &usable)| Failure::AmpDegraded { fiber, usable }),
        );
        out
    }

    /// The plant as this state leaves it, plus the original→degraded
    /// fiber id map (cut fibers map to `None`).
    pub fn degraded_view(&self, base: &FiberPlant) -> (FiberPlant, Vec<Option<FiberId>>) {
        degrade_plant_mapped(base, &self.active_failures())
    }
}

/// Field-wise plant equality ([`FiberPlant`] intentionally does not
/// implement `PartialEq`): same params, same sites (name, ports,
/// regenerators), same fibers (endpoints, length, wavelength cap).
pub fn plants_equal(a: &FiberPlant, b: &FiberPlant) -> bool {
    if a.site_count() != b.site_count() || a.fiber_count() != b.fiber_count() {
        return false;
    }
    let (pa, pb) = (a.params(), b.params());
    if pa.wavelengths_per_fiber != pb.wavelengths_per_fiber
        || (pa.wavelength_capacity_gbps - pb.wavelength_capacity_gbps).abs() > 1e-12
    {
        return false;
    }
    for s in 0..a.site_count() {
        let (sa, sb) = (a.site(s), b.site(s));
        if sa.name != sb.name
            || sa.router_ports != sb.router_ports
            || sa.regenerators != sb.regenerators
        {
            return false;
        }
    }
    for f in 0..a.fiber_count() {
        let (fa, fb) = (a.fiber(f), b.fiber(f));
        if fa.a != fb.a
            || fa.b != fb.b
            || (fa.length_km - fb.length_km).abs() > 1e-9
            || fa.lambda_cap != fb.lambda_cap
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    fn plant() -> FiberPlant {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..4 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..4 {
            p.add_fiber(i, (i + 1) % 4, 200.0);
        }
        p
    }

    #[test]
    fn cut_then_repair_restores_original_plant() {
        let base = plant();
        let mut st = FaultState::default();
        st.apply(&FaultKind::FiberCut(2));
        let (degraded, map) = st.degraded_view(&base);
        assert_eq!(degraded.fiber_count(), 3);
        assert_eq!(map[2], None);
        st.apply(&FaultKind::FiberRepaired(2));
        assert!(st.is_clear());
        let (restored, map) = st.degraded_view(&base);
        assert!(plants_equal(&restored, &base));
        assert!(map.iter().enumerate().all(|(i, m)| *m == Some(i)));
    }

    #[test]
    fn site_and_amp_repairs_round_trip() {
        let base = plant();
        let mut st = FaultState::default();
        st.apply(&FaultKind::SiteDown(1));
        st.apply(&FaultKind::AmpDegraded {
            fiber: 3,
            usable: 2,
        });
        let (degraded, _) = st.degraded_view(&base);
        assert_eq!(degraded.site(1).router_ports, 0);
        st.apply(&FaultKind::SiteUp(1));
        st.apply(&FaultKind::AmpRepaired(3));
        assert!(st.is_clear());
        assert!(plants_equal(&st.degraded_view(&base).0, &base));
    }

    #[test]
    fn amp_degradations_compose_by_minimum() {
        let mut st = FaultState::default();
        st.apply(&FaultKind::AmpDegraded {
            fiber: 0,
            usable: 4,
        });
        // Weaker degradation does not restore capacity.
        let changed = st.apply(&FaultKind::AmpDegraded {
            fiber: 0,
            usable: 6,
        });
        assert!(!changed);
        assert_eq!(
            st.active_failures(),
            vec![Failure::AmpDegraded {
                fiber: 0,
                usable: 4
            }]
        );
    }

    #[test]
    fn crash_never_touches_plant_state() {
        let mut st = FaultState::default();
        assert!(!st.apply(&FaultKind::ControllerCrash));
        assert!(st.is_clear());
        assert!(!FaultKind::ControllerCrash.touches_plant());
    }
}
