//! Attack scheduling and recovery measurement.
//!
//! An [`AttackTimeline`] composes adversarial demand waves (generated in
//! `owan_workload::attack`) with a background workload into one request
//! list for the hardened runner: attack arrivals snap to slot boundaries
//! so waves act as slot-indexed demand deltas, and the merged list is
//! sorted under a total order, making composition insensitive to both
//! wave order and attack-vs-fault assembly order. [`run_attack`] then
//! drives the scenario twice — a quiet fault-free baseline on the
//! background alone, and the attacked run with faults and op faults
//! injected — and distills [`RecoveryMetrics`]: how many slots until the
//! controller restores the configured fraction of fault-free background
//! delivery, how much was lost for good, and how hot the victim links ran.

use crate::fault::FaultEvent;
use crate::inject::OpFaultModel;
use crate::runner::{run_chaos_explained, run_chaos_traced, AuditHook, ChaosConfig, ChaosResult};
use crate::telemetry::AttackTelemetry;
use owan_core::{TrafficEngineer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::{FiberPlant, SiteId};
use owan_scope::ScopeRecorder;
use owan_why::WhyRecorder;
use owan_workload::attack::AttackWave;

const EPS: f64 = 1e-9;

/// A schedule of attack waves, composable with a background workload and
/// a fault timeline into one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTimeline {
    waves: Vec<AttackWave>,
}

/// The merged scenario an [`AttackTimeline`] produces: the request list
/// for the runner plus per-request adversarial flags, aligned by index.
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedScenario {
    /// Background and attack requests merged under a total order.
    pub requests: Vec<TransferRequest>,
    /// `attack_flags[i]` is true when `requests[i]` is adversarial.
    pub attack_flags: Vec<bool>,
}

impl AttackTimeline {
    /// Builds a timeline from waves in any order; the stored schedule is
    /// canonical (sorted by onset, then label).
    pub fn new(mut waves: Vec<AttackWave>) -> Self {
        waves.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then(a.kind.label().cmp(b.kind.label()))
                .then(a.injected_gbits.total_cmp(&b.injected_gbits))
        });
        AttackTimeline { waves }
    }

    /// The scheduled waves, in canonical order.
    pub fn waves(&self) -> &[AttackWave] {
        &self.waves
    }

    /// Earliest wave onset, seconds (`None` for an empty timeline).
    pub fn onset_s(&self) -> Option<f64> {
        self.waves
            .iter()
            .map(|w| w.start_s)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Union of every wave's victim links, deduplicated and sorted.
    pub fn victim_links(&self) -> Vec<(SiteId, SiteId)> {
        let mut links: Vec<(SiteId, SiteId)> = self
            .waves
            .iter()
            .flat_map(|w| w.victim_links.iter().copied())
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Total adversarial volume across all waves, gigabits.
    pub fn injected_gbits(&self) -> f64 {
        self.waves.iter().map(|w| w.injected_gbits).sum()
    }

    /// Slots (of length `slot_len_s`, within `max_slots`) during which at
    /// least one wave is actively injecting.
    pub fn active_slots(&self, slot_len_s: f64, max_slots: usize) -> u64 {
        (0..max_slots)
            .filter(|&s| {
                let t0 = s as f64 * slot_len_s;
                let t1 = t0 + slot_len_s;
                self.waves
                    .iter()
                    .any(|w| w.start_s < t1 - EPS && w.end_s > t0 + EPS)
            })
            .count() as u64
    }

    /// Merges the attack waves into `background` as slot-indexed demand
    /// deltas: every attack arrival snaps down to its slot boundary, and
    /// the combined list sorts under a total order (arrival, src, dst,
    /// volume, background-first). Composition therefore commutes — any
    /// wave order, and any attack-vs-fault assembly order, yields the
    /// same scenario.
    pub fn compose(&self, background: &[TransferRequest], slot_len_s: f64) -> ComposedScenario {
        assert!(slot_len_s > 0.0);
        let mut tagged: Vec<(TransferRequest, bool)> =
            background.iter().map(|r| (r.clone(), false)).collect();
        for w in &self.waves {
            for r in &w.requests {
                let mut r = r.clone();
                r.arrival_s = (r.arrival_s / slot_len_s).floor() * slot_len_s;
                tagged.push((r, true));
            }
        }
        tagged.sort_by(|(a, fa), (b, fb)| {
            a.arrival_s
                .total_cmp(&b.arrival_s)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
                .then(a.volume_gbits.total_cmp(&b.volume_gbits))
                .then(fa.cmp(fb))
        });
        let (requests, attack_flags) = tagged.into_iter().unzip();
        ComposedScenario {
            requests,
            attack_flags,
        }
    }
}

/// Recovery measurement distilled from a baseline/attacked run pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryMetrics {
    /// Slot index of the earliest attack onset.
    pub onset_slot: usize,
    /// Slots from onset until cumulative background delivery is restored
    /// to the target fraction of the fault-free baseline *and stays
    /// there* to the end of the run. `None` when it never recovers.
    pub time_to_restore_slots: Option<usize>,
    /// Post-onset slots in the restored state.
    pub restored_slots: u64,
    /// Background volume the attack destroyed for good: baseline minus
    /// attacked background delivery, gigabits (floored at zero).
    pub residual_loss_gbits: f64,
    /// Peak utilization observed across the victim links.
    pub peak_victim_util: f64,
    /// Total adversarial volume injected, gigabits.
    pub injected_gbits: f64,
    /// The restore target as a fraction of baseline delivery.
    pub restore_fraction: f64,
}

/// Outcome of [`run_attack`]: both runs plus the recovery metrics.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Fault-free, attack-free run of the background workload.
    pub baseline: ChaosResult,
    /// The attacked (and optionally faulted) run of the merged scenario.
    pub attacked: ChaosResult,
    /// Recovery measurement comparing the two.
    pub metrics: RecoveryMetrics,
}

/// Drives one adversarial scenario through the hardened runner and
/// measures recovery.
///
/// Two runs share the engine factory: a quiet baseline (background
/// requests only, no faults, disabled telemetry) and the attacked run
/// (attack timeline composed in, `events`/`op_faults` injected, victim
/// links tracked, every slot offered to `audit`). `restore_fraction`
/// sets the recovery bar (the headline metric uses 0.9). Attack
/// counters land on `recorder` under `chaos.attack.*`.
#[allow(clippy::too_many_arguments)]
pub fn run_attack(
    plant: &FiberPlant,
    background: &[TransferRequest],
    timeline: &AttackTimeline,
    make_engine: &mut dyn FnMut(&FiberPlant) -> Box<dyn TrafficEngineer>,
    config: &ChaosConfig,
    restore_fraction: f64,
    events: &[FaultEvent],
    op_faults: &OpFaultModel,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    audit: Option<&mut AuditHook>,
) -> Result<AttackOutcome, String> {
    run_attack_explained(
        plant,
        background,
        timeline,
        make_engine,
        config,
        restore_fraction,
        events,
        op_faults,
        recorder,
        scope,
        &WhyRecorder::disabled(),
        audit,
    )
}

/// [`run_attack`] with a why recorder attached to the *attacked* run
/// (the quiet baseline keeps a disabled one: its transfers face no
/// adversary, so there is nothing to attribute). With a disabled
/// recorder this is exactly [`run_attack`].
#[allow(clippy::too_many_arguments)]
pub fn run_attack_explained(
    plant: &FiberPlant,
    background: &[TransferRequest],
    timeline: &AttackTimeline,
    make_engine: &mut dyn FnMut(&FiberPlant) -> Box<dyn TrafficEngineer>,
    config: &ChaosConfig,
    restore_fraction: f64,
    events: &[FaultEvent],
    op_faults: &OpFaultModel,
    recorder: &Recorder,
    scope: &ScopeRecorder,
    why: &WhyRecorder,
    audit: Option<&mut AuditHook>,
) -> Result<AttackOutcome, String> {
    assert!(restore_fraction > 0.0 && restore_fraction <= 1.0);
    let baseline_cfg = ChaosConfig {
        attack_flags: Vec::new(),
        victim_links: Vec::new(),
        ..config.clone()
    };
    let baseline = run_chaos_traced(
        plant,
        background,
        make_engine,
        &baseline_cfg,
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
        None,
    )?;

    let composed = timeline.compose(background, config.slot_len_s);
    let attacked_cfg = ChaosConfig {
        attack_flags: composed.attack_flags.clone(),
        victim_links: timeline.victim_links(),
        ..config.clone()
    };
    let attacked = run_chaos_explained(
        plant,
        &composed.requests,
        make_engine,
        &attacked_cfg,
        events,
        op_faults,
        recorder,
        scope,
        why,
        audit,
    )?;

    let metrics = recovery_metrics(
        &baseline,
        &attacked,
        timeline,
        config.slot_len_s,
        restore_fraction,
    );

    let telem = AttackTelemetry::new(recorder);
    telem.waves.add(timeline.waves().len() as u64);
    telem
        .active_slots
        .add(timeline.active_slots(config.slot_len_s, attacked.delivered_series.len()));
    telem
        .injected_gbits
        .add(timeline.injected_gbits().round() as u64);
    telem
        .victim_links
        .add(attacked_cfg.victim_links.len() as u64);
    telem.restored_slots.add(metrics.restored_slots);

    Ok(AttackOutcome {
        baseline,
        attacked,
        metrics,
    })
}

/// Compares the attacked run's background delivery against the
/// fault-free baseline, cumulative slot by slot.
pub fn recovery_metrics(
    baseline: &ChaosResult,
    attacked: &ChaosResult,
    timeline: &AttackTimeline,
    slot_len_s: f64,
    restore_fraction: f64,
) -> RecoveryMetrics {
    let onset_s = timeline.onset_s().unwrap_or(0.0);
    let onset_slot = (onset_s / slot_len_s).floor() as usize;

    // Cumulative series over the attacked run's horizon; the baseline
    // holds at its total once it finishes early.
    let horizon = attacked.background_series.len();
    let mut cum_base = Vec::with_capacity(horizon);
    let mut acc = 0.0;
    for s in 0..horizon {
        acc += baseline.delivered_series.get(s).map_or(0.0, |&(_, g)| g);
        cum_base.push(acc);
    }
    let mut cum_attacked = Vec::with_capacity(horizon);
    let mut acc = 0.0;
    for &(_, g) in &attacked.background_series {
        acc += g;
        cum_attacked.push(acc);
    }

    // Restored = cumulative background at or above the target fraction of
    // the baseline's cumulative delivery. Sustained restore scans from
    // the end: the earliest post-onset slot after which every slot holds.
    let restored = |s: usize| -> bool { cum_attacked[s] + EPS >= restore_fraction * cum_base[s] };
    let mut sustained_from: Option<usize> = None;
    for s in (onset_slot.min(horizon)..horizon).rev() {
        if restored(s) {
            sustained_from = Some(s);
        } else {
            break;
        }
    }
    let time_to_restore_slots = sustained_from.map(|s| s - onset_slot.min(s));
    let restored_slots = (onset_slot.min(horizon)..horizon)
        .filter(|&s| restored(s))
        .count() as u64;

    let residual_loss_gbits = (baseline.delivered_gbits - attacked.background_gbits).max(0.0);
    let peak_victim_util = attacked
        .victim_util_series
        .iter()
        .map(|&(_, u)| u)
        .fold(0.0, f64::max);

    RecoveryMetrics {
        onset_slot,
        time_to_restore_slots,
        restored_slots,
        residual_loss_gbits,
        peak_victim_util,
        injected_gbits: timeline.injected_gbits(),
        restore_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_workload::attack::{AttackKind, AttackWave};

    fn wave(kind: AttackKind, start_s: f64, reqs: Vec<TransferRequest>) -> AttackWave {
        let injected = reqs.iter().map(|r| r.volume_gbits).sum();
        AttackWave {
            kind,
            start_s,
            end_s: start_s + 600.0,
            requests: reqs,
            victim_fibers: vec![0],
            victim_links: vec![(0, 1)],
            injected_gbits: injected,
        }
    }

    fn req(src: usize, dst: usize, vol: f64, arrival: f64) -> TransferRequest {
        TransferRequest {
            src,
            dst,
            volume_gbits: vol,
            arrival_s: arrival,
            deadline_s: None,
        }
    }

    #[test]
    fn compose_snaps_attack_arrivals_to_slot_boundaries() {
        let tl = AttackTimeline::new(vec![wave(
            AttackKind::Coremelt,
            450.0,
            vec![req(0, 1, 100.0, 450.0), req(2, 3, 50.0, 899.0)],
        )]);
        let composed = tl.compose(&[req(1, 2, 10.0, 123.0)], 300.0);
        for (r, &flag) in composed.requests.iter().zip(&composed.attack_flags) {
            if flag {
                assert_eq!(r.arrival_s % 300.0, 0.0, "attack arrival off-slot");
            } else {
                assert_eq!(r.arrival_s, 123.0, "background arrival must not move");
            }
        }
        assert_eq!(composed.requests.len(), 3);
    }

    #[test]
    fn compose_is_wave_order_insensitive() {
        let a = wave(AttackKind::Coremelt, 600.0, vec![req(0, 1, 100.0, 600.0)]);
        let b = wave(AttackKind::FlashCrowd, 300.0, vec![req(2, 3, 70.0, 310.0)]);
        let bg = vec![req(1, 2, 10.0, 0.0), req(3, 4, 20.0, 500.0)];
        let ab = AttackTimeline::new(vec![a.clone(), b.clone()]).compose(&bg, 300.0);
        let ba = AttackTimeline::new(vec![b, a]).compose(&bg, 300.0);
        assert_eq!(ab, ba);
    }

    #[test]
    fn recovery_metrics_detect_restore_and_loss() {
        let tl = AttackTimeline::new(vec![wave(
            AttackKind::Coremelt,
            300.0,
            vec![req(0, 1, 1000.0, 300.0)],
        )]);
        let series = |vals: &[f64]| -> Vec<(f64, f64)> {
            vals.iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 * 300.0, v))
                .collect()
        };
        let base = ChaosResult {
            completions: Vec::new(),
            delivered_series: series(&[10.0, 10.0, 10.0, 10.0]),
            delivered_gbits: 40.0,
            background_series: series(&[10.0, 10.0, 10.0, 10.0]),
            background_gbits: 40.0,
            victim_util_series: series(&[0.0; 4]),
            makespan_s: 1200.0,
            update_ops: 0,
            transition_loss_gbits: 0.0,
            stats: Default::default(),
            slots: 4,
        };
        // Attacked: slot 1 collapses, slots 2.. catch back up past 90%.
        let attacked = ChaosResult {
            background_series: series(&[10.0, 2.0, 16.0, 10.0]),
            background_gbits: 38.0,
            victim_util_series: series(&[0.2, 1.0, 0.7, 0.4]),
            delivered_series: series(&[10.0, 2.0, 16.0, 10.0]),
            delivered_gbits: 38.0,
            ..base.clone()
        };
        let m = recovery_metrics(&base, &attacked, &tl, 300.0, 0.9);
        assert_eq!(m.onset_slot, 1);
        // Slot 1: cum 12 < 0.9·20 → not restored. Slot 2: cum 28 ≥ 0.9·30
        // → restored; slot 3: cum 38 ≥ 0.9·40 → sustained.
        assert_eq!(m.time_to_restore_slots, Some(1));
        assert_eq!(m.restored_slots, 2);
        assert!((m.residual_loss_gbits - 2.0).abs() < 1e-9);
        assert!((m.peak_victim_util - 1.0).abs() < 1e-9);
    }
}
