//! Seeded, deterministic fault injection.
//!
//! Two injectors live here: [`OpFaultModel`] decides per update-operation
//! attempt whether the op times out or fails outright, using a counter
//! hash rather than a stateful RNG so the decision for `(slot, op,
//! attempt)` never depends on how many other ops were probed; and
//! [`seeded_scenario`] builds a full chaos timeline (cut + degradation +
//! crash + repair) from a seed, which the oracle fuzzer and the CLI both
//! replay.

use crate::fault::{FaultEvent, FaultKind};
use owan_optical::FiberPlant;
use owan_update::OpFault;

/// SplitMix64 finalizer — the same mixing used throughout the workspace
/// for deterministic per-index seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Probabilistic update-op fault model, seeded and stateless: the fault
/// for a given `(slot, op index, attempt)` is a pure function of the
/// seed, so two runs of the same scenario inject identical faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpFaultModel {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Probability an attempt times out (costs the full timeout before
    /// the retry).
    pub timeout_prob: f64,
    /// Probability an attempt fails fast (costs only the op duration).
    pub fail_prob: f64,
}

impl OpFaultModel {
    /// A model that never injects anything.
    pub fn none() -> Self {
        OpFaultModel {
            seed: 0,
            timeout_prob: 0.0,
            fail_prob: 0.0,
        }
    }

    /// True when this model can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.timeout_prob <= 0.0 && self.fail_prob <= 0.0
    }

    /// The fault injected into attempt `attempt` (1-based) of op
    /// `op_index` in slot `slot`.
    pub fn fault(&self, slot: usize, op_index: usize, attempt: u32) -> OpFault {
        if self.is_none() {
            return OpFault::None;
        }
        let h = mix64(
            self.seed
                ^ mix64(slot as u64)
                ^ mix64((op_index as u64).rotate_left(17))
                ^ mix64((attempt as u64).rotate_left(41)),
        );
        let u = unit(h);
        if u < self.timeout_prob {
            OpFault::Timeout
        } else if u < self.timeout_prob + self.fail_prob {
            OpFault::Fail
        } else {
            OpFault::None
        }
    }
}

/// A complete chaos scenario: a timed fault/repair schedule plus an
/// update-op fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Timed plant and controller faults (need not be sorted).
    pub events: Vec<FaultEvent>,
    /// Per-attempt update-op faults.
    pub op_faults: OpFaultModel,
}

impl ChaosSpec {
    /// A scenario with no faults at all (useful as a baseline run).
    pub fn quiet() -> Self {
        ChaosSpec {
            events: Vec::new(),
            op_faults: OpFaultModel::none(),
        }
    }
}

/// Builds a deterministic mixed scenario from `seed`: one fiber cut
/// (repaired later), one amplifier degradation (also repaired), one
/// controller crash, and — on plants with redundant ports — one site
/// blink. Event times are spread over `[0.15, 0.75] · horizon_s`, so a
/// run that would finish without faults keeps planning through the whole
/// schedule.
pub fn seeded_scenario(plant: &FiberPlant, seed: u64, horizon_s: f64) -> Vec<FaultEvent> {
    assert!(horizon_s > 0.0);
    let nf = plant.fiber_count();
    let mut events = Vec::new();
    if nf == 0 {
        return events;
    }
    let pick = |salt: u64, n: usize| (mix64(seed ^ mix64(salt)) % n as u64) as usize;

    let cut = pick(1, nf);
    events.push(FaultEvent::at(0.15 * horizon_s, FaultKind::FiberCut(cut)));
    events.push(FaultEvent::at(
        0.60 * horizon_s,
        FaultKind::FiberRepaired(cut),
    ));

    let degraded = (cut + 1 + pick(2, nf.saturating_sub(1).max(1))) % nf;
    let phi = plant.params().wavelengths_per_fiber;
    let usable = (phi / 2).max(1);
    events.push(FaultEvent::at(
        0.25 * horizon_s,
        FaultKind::AmpDegraded {
            fiber: degraded,
            usable,
        },
    ));
    events.push(FaultEvent::at(
        0.70 * horizon_s,
        FaultKind::AmpRepaired(degraded),
    ));

    events.push(FaultEvent::at(0.40 * horizon_s, FaultKind::ControllerCrash));

    // Only blink a site when every other site keeps at least one router
    // port — otherwise the scenario can strand transfers by construction.
    let routers = plant.router_sites();
    if routers.len() > 3 {
        let s = routers[pick(3, routers.len())];
        events.push(FaultEvent::at(0.35 * horizon_s, FaultKind::SiteDown(s)));
        events.push(FaultEvent::at(0.55 * horizon_s, FaultKind::SiteUp(s)));
    }

    events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_optical::OpticalParams;

    #[test]
    fn op_fault_model_is_deterministic() {
        let m = OpFaultModel {
            seed: 42,
            timeout_prob: 0.3,
            fail_prob: 0.2,
        };
        for slot in 0..4 {
            for op in 0..16 {
                for attempt in 1..4 {
                    assert_eq!(m.fault(slot, op, attempt), m.fault(slot, op, attempt));
                }
            }
        }
    }

    #[test]
    fn op_fault_rates_track_probabilities() {
        let m = OpFaultModel {
            seed: 7,
            timeout_prob: 0.25,
            fail_prob: 0.25,
        };
        let mut timeouts = 0;
        let mut fails = 0;
        let n = 4000;
        for i in 0..n {
            match m.fault(i, 0, 1) {
                OpFault::Timeout => timeouts += 1,
                OpFault::Fail => fails += 1,
                OpFault::None => {}
            }
        }
        let ft = timeouts as f64 / n as f64;
        let ff = fails as f64 / n as f64;
        assert!((ft - 0.25).abs() < 0.05, "timeout rate {ft}");
        assert!((ff - 0.25).abs() < 0.05, "fail rate {ff}");
    }

    #[test]
    fn none_model_never_faults() {
        let m = OpFaultModel::none();
        assert!(m.is_none());
        for i in 0..100 {
            assert_eq!(m.fault(i, i, 1), OpFault::None);
        }
    }

    #[test]
    fn seeded_scenario_is_deterministic_and_sorted() {
        let mut p = FiberPlant::new(OpticalParams::default());
        for i in 0..5 {
            p.add_site(&format!("S{i}"), 2, 1);
        }
        for i in 0..5 {
            p.add_fiber(i, (i + 1) % 5, 150.0);
        }
        let a = seeded_scenario(&p, 99, 3000.0);
        let b = seeded_scenario(&p, 99, 3000.0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(a
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ControllerCrash)));
        assert!(a.iter().any(|e| matches!(e.kind, FaultKind::FiberCut(_))));
        assert!(a
            .iter()
            .any(|e| matches!(e.kind, FaultKind::FiberRepaired(_))));
    }
}
