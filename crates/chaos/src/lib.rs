//! Fault injection and recovery for the full controller path (owan-chaos).
//!
//! The paper's controller "handles failures of optical devices, routers,
//! and controllers" (§3.4): it replans around cuts, pays detection and
//! reconfiguration delays, and restarts statelessly after a crash. This
//! crate makes those claims testable. It supplies:
//!
//! * a **fault model** ([`FaultKind`], [`FaultEvent`], [`FaultState`])
//!   covering fiber cuts *and repairs*, site loss and recovery, partial
//!   amplifier degradation (shrinking a fiber's usable wavelengths), and
//!   controller crashes;
//! * **seeded injection** ([`OpFaultModel`], [`seeded_scenario`]):
//!   deterministic per-attempt faults on update operations and full
//!   scenario timelines reproducible from a seed;
//! * a **hardened controller loop** ([`run_chaos`]) that plans on the
//!   detection-delayed *believed* plant, executes updates with retry /
//!   backoff / dependent-subtree abort, runs each slot on the *achieved*
//!   state, blackholes circuits over undetected cuts, degrades to the
//!   filtered previous topology when planning fails, and rebuilds the
//!   engine from stored state after a crash;
//! * an **adversarial traffic layer** ([`AttackTimeline`], [`run_attack`]):
//!   coremelt, flash-crowd, and drift demand waves (generated in
//!   `owan_workload::attack`) composed with the fault timeline as
//!   slot-indexed demand deltas, with recovery measured against a
//!   fault-free baseline ([`RecoveryMetrics`]);
//! * **counters** ([`ChaosTelemetry`], [`AttackTelemetry`]) for all of
//!   the above on the shared obs recorder.

pub mod attack;
pub mod fault;
pub mod inject;
pub mod runner;
pub mod telemetry;

pub use attack::{
    recovery_metrics, run_attack, run_attack_explained, AttackOutcome, AttackTimeline,
    ComposedScenario, RecoveryMetrics,
};
pub use fault::{plants_equal, FaultEvent, FaultKind, FaultState};
pub use inject::{seeded_scenario, ChaosSpec, OpFaultModel};
pub use runner::{
    run_chaos, run_chaos_explained, run_chaos_traced, AuditHook, ChaosConfig, ChaosResult,
    ChaosStats, SlotAudit,
};
pub use telemetry::{AttackTelemetry, ChaosTelemetry};
