//! Property tests for plant degradation and repair: `degrade_plant` is a
//! set-fold (duplicate- and order-insensitive), strictly monotone in
//! capacity, stable under re-application through the fiber-id map, and
//! exactly inverted by repairs.

use owan_chaos::{plants_equal, FaultKind, FaultState};
use owan_optical::{FiberPlant, OpticalParams};
use owan_sim::{degrade_plant, degrade_plant_mapped, Failure};
use proptest::prelude::*;

const PHI: u32 = 8;

/// Deterministic test plant: ring of `n` sites plus a chord, mixed port
/// counts so site failures bite differently.
fn plant(n: usize) -> FiberPlant {
    let mut p = FiberPlant::new(OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: PHI,
        ..Default::default()
    });
    for i in 0..n {
        p.add_site(&format!("S{i}"), 1 + (i as u32 % 3), 1);
    }
    for i in 0..n {
        p.add_fiber(i, (i + 1) % n, 150.0 + 10.0 * i as f64);
    }
    p.add_fiber(0, n / 2, 400.0);
    p
}

fn arb_failures(nf: usize, ns: usize) -> impl Strategy<Value = Vec<Failure>> {
    proptest::collection::vec((0u8..3, 0..nf, 0..ns, 1u32..PHI), 0..6).prop_map(move |specs| {
        specs
            .into_iter()
            .map(|(kind, f, s, usable)| match kind {
                0 => Failure::FiberCut(f),
                1 => Failure::SiteDown(s),
                _ => Failure::AmpDegraded { fiber: f, usable },
            })
            .collect()
    })
}

/// Total usable wavelengths across the plant — the capacity measure the
/// monotonicity property tracks.
fn total_wavelengths(p: &FiberPlant) -> u64 {
    (0..p.fiber_count())
        .map(|f| p.usable_wavelengths(f) as u64)
        .sum()
}

fn total_ports(p: &FiberPlant) -> u64 {
    (0..p.site_count()).map(|s| p.router_ports(s) as u64).sum()
}

/// Translates original-id failures into the degraded plant's ids via the
/// map from `degrade_plant_mapped`. Failures on cut fibers vanish.
fn translate(failures: &[Failure], map: &[Option<usize>]) -> Vec<Failure> {
    failures
        .iter()
        .filter_map(|f| match *f {
            Failure::FiberCut(id) => map[id].map(Failure::FiberCut),
            Failure::SiteDown(s) => Some(Failure::SiteDown(s)),
            Failure::AmpDegraded { fiber, usable } => {
                map[fiber].map(|fiber| Failure::AmpDegraded { fiber, usable })
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degrade_is_duplicate_insensitive(failures in arb_failures(7, 6)) {
        let base = plant(6);
        let once = degrade_plant(&base, &failures);
        let mut doubled = failures.clone();
        doubled.extend(failures.iter().copied());
        let twice = degrade_plant(&base, &doubled);
        prop_assert!(plants_equal(&once, &twice));
    }

    #[test]
    fn degrade_is_order_insensitive(failures in arb_failures(7, 6)) {
        let base = plant(6);
        let forward = degrade_plant(&base, &failures);
        let mut reversed = failures.clone();
        reversed.reverse();
        let backward = degrade_plant(&base, &reversed);
        prop_assert!(plants_equal(&forward, &backward));
    }

    #[test]
    fn degrade_is_monotone(failures in arb_failures(7, 6), extra in arb_failures(7, 6)) {
        let base = plant(6);
        let some = degrade_plant(&base, &failures);
        let mut all = failures.clone();
        all.extend(extra.iter().copied());
        let more = degrade_plant(&base, &all);
        prop_assert!(more.fiber_count() <= some.fiber_count());
        prop_assert!(total_wavelengths(&more) <= total_wavelengths(&some));
        prop_assert!(total_ports(&more) <= total_ports(&some));
    }

    #[test]
    fn reapplication_through_id_map_is_noop(failures in arb_failures(7, 6)) {
        let base = plant(6);
        let (degraded, map) = degrade_plant_mapped(&base, &failures);
        let again = degrade_plant(&degraded, &translate(&failures, &map));
        prop_assert!(plants_equal(&again, &degraded));
    }

    #[test]
    fn repairs_restore_original_plant_exactly(
        cuts in proptest::collection::vec(0usize..7, 0..5),
        downs in proptest::collection::vec(0usize..6, 0..4),
        amps in proptest::collection::vec((0usize..7, 1u32..PHI), 0..4),
    ) {
        let base = plant(6);
        let mut state = FaultState::default();
        for &f in &cuts {
            state.apply(&FaultKind::FiberCut(f));
        }
        for &s in &downs {
            state.apply(&FaultKind::SiteDown(s));
        }
        for &(f, usable) in &amps {
            state.apply(&FaultKind::AmpDegraded { fiber: f, usable });
        }
        // Repair everything, in a different order than it broke.
        for &(f, _) in amps.iter().rev() {
            state.apply(&FaultKind::AmpRepaired(f));
        }
        for &f in cuts.iter().rev() {
            state.apply(&FaultKind::FiberRepaired(f));
        }
        for &s in downs.iter().rev() {
            state.apply(&FaultKind::SiteUp(s));
        }
        prop_assert!(state.is_clear());
        let (restored, map) = state.degraded_view(&base);
        prop_assert!(plants_equal(&restored, &base));
        prop_assert!(map.iter().enumerate().all(|(i, m)| *m == Some(i)));
    }

    #[test]
    fn partial_repair_leaves_remaining_faults(
        cuts in proptest::collection::vec(0usize..7, 2..5),
    ) {
        let base = plant(6);
        let mut state = FaultState::default();
        for &f in &cuts {
            state.apply(&FaultKind::FiberCut(f));
        }
        // Repair only the first cut; the rest must still be active.
        state.apply(&FaultKind::FiberRepaired(cuts[0]));
        let distinct_rest: std::collections::BTreeSet<usize> =
            cuts[1..].iter().copied().filter(|f| *f != cuts[0]).collect();
        let (degraded, _) = state.degraded_view(&base);
        prop_assert_eq!(degraded.fiber_count(), base.fiber_count() - distinct_rest.len());
    }
}
