//! Property tests for the adversarial traffic layer: same-seed schedule
//! determinism, wave-order and attack⊕fault composition insensitivity,
//! and conservation of the composed request set.

use owan_chaos::{run_chaos, AttackTimeline, ChaosConfig, FaultEvent, FaultKind, OpFaultModel};
use owan_core::{default_topology, OwanConfig, OwanEngine, TrafficEngineer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::FiberPlant;
use owan_workload::attack::{
    coremelt, drift, flash_crowd, CoremeltConfig, DriftConfig, FlashCrowdConfig,
};
use proptest::prelude::*;

fn net() -> owan_topo::Network {
    owan_topo::internet2_testbed()
}

fn background() -> Vec<TransferRequest> {
    vec![
        TransferRequest {
            src: 0,
            dst: 3,
            volume_gbits: 2_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        },
        TransferRequest {
            src: 2,
            dst: 5,
            volume_gbits: 1_500.0,
            arrival_s: 300.0,
            deadline_s: None,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same plant → bit-identical attack schedules for all
    /// three generators.
    #[test]
    fn same_seed_means_identical_schedules(seed in 0u64..1_000) {
        let net = net();
        let cm = CoremeltConfig::new(seed, 300.0, 900.0);
        prop_assert_eq!(coremelt(&net.plant, &cm), coremelt(&net.plant, &cm));
        let fc = FlashCrowdConfig::new(seed, 600.0);
        prop_assert_eq!(flash_crowd(&net.plant, &fc), flash_crowd(&net.plant, &fc));
        let dr = DriftConfig::new(seed, 3_600.0, 0.5);
        prop_assert_eq!(drift(&net, &dr), drift(&net, &dr));
    }

    /// Composition is insensitive to the order waves are handed to the
    /// timeline, and conserves every request exactly once.
    #[test]
    fn compose_is_order_insensitive_and_conservative(
        seed_a in 0u64..500,
        seed_b in 500u64..1_000,
        onset_a in 0usize..6,
        onset_b in 0usize..6,
    ) {
        let net = net();
        let wave_a = coremelt(
            &net.plant,
            &CoremeltConfig::new(seed_a, onset_a as f64 * 300.0, 900.0),
        );
        let wave_b = flash_crowd(
            &net.plant,
            &FlashCrowdConfig::new(seed_b, onset_b as f64 * 300.0),
        );
        let bg = background();
        let ab = AttackTimeline::new(vec![wave_a.clone(), wave_b.clone()]).compose(&bg, 300.0);
        let ba = AttackTimeline::new(vec![wave_b.clone(), wave_a.clone()]).compose(&bg, 300.0);
        prop_assert_eq!(&ab, &ba);
        let injected = wave_a.requests.len() + wave_b.requests.len();
        prop_assert_eq!(ab.requests.len(), bg.len() + injected);
        prop_assert_eq!(
            ab.attack_flags.iter().filter(|&&f| f).count(),
            injected
        );
        // Attack arrivals all sit on slot boundaries.
        for (r, &flag) in ab.requests.iter().zip(&ab.attack_flags) {
            if flag {
                prop_assert!((r.arrival_s / 300.0).fract() == 0.0);
            }
        }
    }

    /// Attack ⊕ fault composition order doesn't matter: the fault list
    /// may be assembled before or after (and around) the attack compose,
    /// in any event order — the run is identical.
    #[test]
    fn attack_and_fault_composition_commutes(
        seed in 0u64..64,
        cut_slot in 1usize..5,
    ) {
        let net = net();
        let wave = coremelt(&net.plant, &CoremeltConfig::new(seed, 300.0, 600.0));
        let bg = background();
        let composed = AttackTimeline::new(vec![wave]).compose(&bg, 300.0);
        let cut_s = cut_slot as f64 * 300.0;
        let events_fwd = vec![
            FaultEvent::at(cut_s, FaultKind::FiberCut(1)),
            FaultEvent::at(cut_s + 900.0, FaultKind::FiberRepaired(1)),
        ];
        let events_rev: Vec<FaultEvent> = events_fwd.iter().rev().copied().collect();
        let config = ChaosConfig {
            slot_len_s: 300.0,
            max_slots: 10,
            attack_flags: composed.attack_flags.clone(),
            ..Default::default()
        };
        let run = |events: &[FaultEvent]| {
            let mut factory = |p: &FiberPlant| {
                let cfg = OwanConfig {
                    anneal: owan_core::AnnealConfig {
                        max_iterations: 20,
                        seed: 3,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                Box::new(OwanEngine::new(default_topology(p), cfg))
                    as Box<dyn TrafficEngineer>
            };
            run_chaos(
                &net.plant,
                &composed.requests,
                &mut factory,
                &config,
                events,
                &OpFaultModel::none(),
                &Recorder::disabled(),
                None,
            )
            .expect("chaos run")
        };
        let fwd = run(&events_fwd);
        let rev = run(&events_rev);
        prop_assert_eq!(fwd.delivered_series, rev.delivered_series);
        prop_assert_eq!(fwd.background_series, rev.background_series);
        prop_assert_eq!(fwd.stats, rev.stats);
    }
}
