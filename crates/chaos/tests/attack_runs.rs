//! End-to-end adversarial runs: coremelt and flash-crowd waves composed
//! with fault timelines, driven through the hardened controller, with
//! recovery measured against the fault-free baseline.

use owan_chaos::{run_attack, AttackTimeline, ChaosConfig, FaultEvent, FaultKind, OpFaultModel};
use owan_core::{default_topology, OwanConfig, OwanEngine, TrafficEngineer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::FiberPlant;
use owan_scope::ScopeRecorder;
use owan_workload::attack::{coremelt, flash_crowd, CoremeltConfig, FlashCrowdConfig};
use owan_workload::{generate, WorkloadConfig};

fn testbed() -> owan_topo::Network {
    owan_topo::internet2_testbed()
}

fn background(net: &owan_topo::Network) -> Vec<TransferRequest> {
    let mut cfg = WorkloadConfig::testbed(0.4, 42);
    cfg.duration_s = 1_800.0;
    generate(net, &cfg).into_iter().take(10).collect()
}

fn make_factory() -> impl FnMut(&FiberPlant) -> Box<dyn TrafficEngineer> {
    |p: &FiberPlant| {
        let cfg = OwanConfig {
            anneal: owan_core::AnnealConfig {
                max_iterations: 40,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        Box::new(OwanEngine::new(default_topology(p), cfg)) as Box<dyn TrafficEngineer>
    }
}

fn config(max_slots: usize) -> ChaosConfig {
    ChaosConfig {
        slot_len_s: 300.0,
        max_slots,
        detection_delay_s: 30.0,
        ..Default::default()
    }
}

#[test]
fn coremelt_run_tracks_background_and_victims() {
    let net = testbed();
    let bg = background(&net);
    let mut cm = CoremeltConfig::new(5, 600.0, 1_200.0);
    cm.intensity = 0.8;
    let timeline = AttackTimeline::new(vec![coremelt(&net.plant, &cm)]);
    let recorder = Recorder::enabled();
    let mut factory = make_factory();
    let outcome = run_attack(
        &net.plant,
        &bg,
        &timeline,
        &mut factory,
        &config(24),
        0.9,
        &[],
        &OpFaultModel::none(),
        &recorder,
        &ScopeRecorder::disabled(),
        None,
    )
    .expect("attack run");

    // Background accounting: the attacked run's background series must
    // never exceed its full delivered series, and the baseline carries
    // no attack traffic at all.
    for (bgs, all) in outcome
        .attacked
        .background_series
        .iter()
        .zip(&outcome.attacked.delivered_series)
    {
        assert!(bgs.1 <= all.1 + 1e-9);
    }
    assert_eq!(
        outcome.baseline.background_gbits,
        outcome.baseline.delivered_gbits
    );
    assert!(outcome.metrics.injected_gbits > 0.0);
    assert!(outcome.metrics.peak_victim_util > 0.0, "victims saw load");
    assert_eq!(outcome.metrics.onset_slot, 2);

    let snap = recorder.snapshot();
    assert_eq!(snap.counters.get("chaos.attack.waves"), Some(&1));
    assert!(snap.counters.get("chaos.attack.injected_gbits").copied() > Some(0));
    assert!(snap.counters.get("chaos.attack.victim_links").copied() > Some(0));
    assert!(snap.counters.contains_key("chaos.attack.active_slots"));
}

#[test]
fn flash_crowd_composes_with_a_fiber_cut() {
    let net = testbed();
    let bg = background(&net);
    let mut fc = FlashCrowdConfig::new(9, 600.0);
    fc.sources = 3;
    let timeline = AttackTimeline::new(vec![flash_crowd(&net.plant, &fc)]);
    let events = vec![
        FaultEvent::at(900.0, FaultKind::FiberCut(0)),
        FaultEvent::at(1_800.0, FaultKind::FiberRepaired(0)),
    ];
    let mut factory = make_factory();
    let outcome = run_attack(
        &net.plant,
        &bg,
        &timeline,
        &mut factory,
        &config(24),
        0.9,
        &events,
        &OpFaultModel::none(),
        &Recorder::disabled(),
        &ScopeRecorder::disabled(),
        None,
    )
    .expect("attack+fault run");
    assert!(outcome.attacked.stats.faults_detected >= 2);
    assert!(outcome.attacked.background_gbits > 0.0);
    // Every background transfer is small enough to finish inside the
    // horizon even under the surge; residual loss stays bounded.
    assert!(
        outcome.metrics.residual_loss_gbits <= outcome.baseline.delivered_gbits,
        "loss cannot exceed the baseline"
    );
}

#[test]
fn attack_runs_are_deterministic_per_seed() {
    let net = testbed();
    let bg = background(&net);
    let timeline = AttackTimeline::new(vec![
        coremelt(&net.plant, &CoremeltConfig::new(5, 600.0, 1_200.0)),
        flash_crowd(&net.plant, &FlashCrowdConfig::new(5, 900.0)),
    ]);
    let run = || {
        let mut factory = make_factory();
        run_attack(
            &net.plant,
            &bg,
            &timeline,
            &mut factory,
            &config(20),
            0.9,
            &[],
            &OpFaultModel::none(),
            &Recorder::disabled(),
            &ScopeRecorder::disabled(),
            None,
        )
        .expect("attack run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.attacked.delivered_series, b.attacked.delivered_series);
    assert_eq!(a.attacked.background_series, b.attacked.background_series);
    assert_eq!(a.attacked.victim_util_series, b.attacked.victim_util_series);
    assert_eq!(a.metrics, b.metrics);
}
