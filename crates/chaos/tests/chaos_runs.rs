//! End-to-end chaos runs: the hardened controller against cuts, repairs,
//! degradation, op faults, and crashes.

use owan_chaos::{
    run_chaos, seeded_scenario, ChaosConfig, ChaosResult, FaultEvent, FaultKind, OpFaultModel,
};
use owan_core::{default_topology, OwanConfig, OwanEngine, TrafficEngineer, TransferRequest};
use owan_obs::Recorder;
use owan_optical::{FiberPlant, OpticalParams};
use owan_update::RetryPolicy;

fn plant() -> FiberPlant {
    let params = OpticalParams {
        wavelength_capacity_gbps: 10.0,
        wavelengths_per_fiber: 8,
        circuit_reconfig_time_s: 4.0,
        ..Default::default()
    };
    let mut p = FiberPlant::new(params);
    for i in 0..5 {
        p.add_site(&format!("S{i}"), 3, 1);
    }
    for i in 0..5 {
        p.add_fiber(i, (i + 1) % 5, 250.0);
    }
    // A chord so a single cut never partitions the plant.
    p.add_fiber(0, 2, 400.0);
    p
}

fn requests() -> Vec<TransferRequest> {
    vec![
        TransferRequest {
            src: 0,
            dst: 2,
            volume_gbits: 60_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        },
        TransferRequest {
            src: 1,
            dst: 3,
            volume_gbits: 40_000.0,
            arrival_s: 0.0,
            deadline_s: None,
        },
        TransferRequest {
            src: 4,
            dst: 2,
            volume_gbits: 30_000.0,
            arrival_s: 600.0,
            deadline_s: None,
        },
    ]
}

fn make_factory() -> impl FnMut(&FiberPlant) -> Box<dyn TrafficEngineer> {
    |p: &FiberPlant| {
        Box::new(OwanEngine::new(default_topology(p), OwanConfig::default()))
            as Box<dyn TrafficEngineer>
    }
}

fn config() -> ChaosConfig {
    ChaosConfig {
        slot_len_s: 300.0,
        max_slots: 200,
        detection_delay_s: 30.0,
        ..Default::default()
    }
}

fn run(events: &[FaultEvent], faults: &OpFaultModel) -> ChaosResult {
    let mut factory = make_factory();
    run_chaos(
        &plant(),
        &requests(),
        &mut factory,
        &config(),
        events,
        faults,
        &Recorder::disabled(),
        None,
    )
    .expect("chaos run")
}

#[test]
fn quiet_run_completes_everything() {
    let res = run(&[], &OpFaultModel::none());
    assert!(res.all_complete(), "completions: {:?}", res.completions);
    assert_eq!(res.stats.crashes, 0);
    assert_eq!(res.stats.op_aborts, 0);
    assert_eq!(res.stats.blackhole_paths, 0);
}

#[test]
fn cut_plus_repair_still_completes() {
    let events = vec![
        FaultEvent::at(100.0, FaultKind::FiberCut(1)),
        FaultEvent::at(400.0, FaultKind::FiberRepaired(1)),
    ];
    let res = run(&events, &OpFaultModel::none());
    assert!(res.all_complete(), "completions: {:?}", res.completions);
    assert!(res.stats.faults_detected >= 2);
}

#[test]
fn mixed_seeded_scenario_completes_with_surviving_endpoints() {
    // The acceptance scenario: cut + amp degradation + op faults +
    // controller crash + repairs, all from one seed.
    let p = plant();
    let mut events = seeded_scenario(&p, 0xC4A05, 1_500.0);
    // Keep endpoints alive: drop any site-down of a transfer endpoint.
    let endpoints = [0usize, 1, 2, 3, 4];
    events.retain(|e| match e.kind {
        FaultKind::SiteDown(s) | FaultKind::SiteUp(s) => !endpoints.contains(&s),
        _ => true,
    });
    let faults = OpFaultModel {
        seed: 0xC4A05,
        timeout_prob: 0.08,
        fail_prob: 0.05,
    };
    let res = run(&events, &faults);
    assert!(res.all_complete(), "completions: {:?}", res.completions);
    assert!(res.stats.crashes >= 1, "stats: {:?}", res.stats);
    assert!(res.stats.faults_detected >= 2, "stats: {:?}", res.stats);
}

#[test]
fn chaos_run_is_deterministic() {
    let p = plant();
    let events = seeded_scenario(&p, 7, 1_500.0);
    let faults = OpFaultModel {
        seed: 7,
        timeout_prob: 0.1,
        fail_prob: 0.1,
    };
    let a = run(&events, &faults);
    let b = run(&events, &faults);
    assert_eq!(a.delivered_series, b.delivered_series);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.makespan_s, b.makespan_s);
    let ca: Vec<_> = a.completions.iter().map(|c| c.completion_s).collect();
    let cb: Vec<_> = b.completions.iter().map(|c| c.completion_s).collect();
    assert_eq!(ca, cb);
}

#[test]
fn op_faults_delay_but_do_not_strand() {
    let faults = OpFaultModel {
        seed: 3,
        timeout_prob: 0.25,
        fail_prob: 0.15,
    };
    let clean = run(&[], &OpFaultModel::none());
    let faulty = run(&[], &faults);
    assert!(
        faulty.all_complete(),
        "completions: {:?}",
        faulty.completions
    );
    assert!(
        faulty.stats.op_retries > 0 || faulty.stats.op_timeouts > 0,
        "stats: {:?}",
        faulty.stats
    );
    assert!(faulty.makespan_s + 1e-6 >= clean.makespan_s);
}

#[test]
fn undetected_cut_blackholes_traffic() {
    // Cut strikes mid-slot; detection takes two full slots, so at least
    // one slot runs dark paths.
    let cfg = ChaosConfig {
        slot_len_s: 300.0,
        max_slots: 200,
        detection_delay_s: 600.0,
        ..Default::default()
    };
    // Cut both ways out of site 0's likely paths (ring edge 0–1 and the
    // 0–2 chord); 4–0 survives so everything still completes once the
    // cuts are detected and the controller replans.
    let events = vec![
        FaultEvent::at(350.0, FaultKind::FiberCut(0)),
        FaultEvent::at(350.0, FaultKind::FiberCut(5)),
    ];
    let mut factory = make_factory();
    let res = run_chaos(
        &plant(),
        &requests(),
        &mut factory,
        &cfg,
        &events,
        &OpFaultModel::none(),
        &Recorder::disabled(),
        None,
    )
    .expect("chaos run");
    assert!(
        res.stats.blackhole_paths > 0,
        "expected blackholed paths, stats: {:?}",
        res.stats
    );
    assert!(res.stats.blackhole_gbits > 0.0);
    assert!(res.all_complete(), "completions: {:?}", res.completions);
}

#[test]
fn crash_restart_recovers_and_counts() {
    let events = vec![FaultEvent::at(700.0, FaultKind::ControllerCrash)];
    let res = run(&events, &OpFaultModel::none());
    assert_eq!(res.stats.crashes, 1);
    assert!(res.all_complete(), "completions: {:?}", res.completions);
}

#[test]
fn dead_endpoint_waits_for_site_up() {
    let events = vec![
        FaultEvent::at(200.0, FaultKind::SiteDown(3)),
        FaultEvent::at(1_400.0, FaultKind::SiteUp(3)),
    ];
    let res = run(&events, &OpFaultModel::none());
    // Transfer 1 targets site 3: it must still finish, after the repair.
    let rec = &res.completions[1];
    assert!(
        rec.completion_s.is_some(),
        "completions: {:?}",
        res.completions
    );
    assert!(res.all_complete());
}

#[test]
fn counters_land_on_recorder() {
    let rec = Recorder::enabled();
    let p = plant();
    let events = seeded_scenario(&p, 11, 1_500.0);
    let faults = OpFaultModel {
        seed: 11,
        timeout_prob: 0.15,
        fail_prob: 0.1,
    };
    let mut factory = make_factory();
    let res = run_chaos(
        &p,
        &requests(),
        &mut factory,
        &config(),
        &events,
        &faults,
        &rec,
        None,
    )
    .expect("chaos run");
    let snap = rec.snapshot();
    assert_eq!(
        snap.counters
            .get("chaos.faults_detected")
            .copied()
            .unwrap_or(0),
        res.stats.faults_detected
    );
    assert_eq!(
        snap.counters.get("chaos.crashes").copied().unwrap_or(0),
        res.stats.crashes
    );
    assert_eq!(
        snap.counters.get("chaos.op_timeouts").copied().unwrap_or(0),
        res.stats.op_timeouts
    );
}

#[test]
fn audit_hook_sees_every_planned_slot_and_can_abort() {
    let mut factory = make_factory();
    let mut seen = 0usize;
    let mut hook = |a: &owan_chaos::SlotAudit| {
        assert!(a.believed_plant.site_count() == 5);
        assert!(a.slot_len_s > 0.0);
        seen += 1;
        Ok(())
    };
    let res = run_chaos(
        &plant(),
        &requests(),
        &mut factory,
        &config(),
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        Some(&mut hook),
    )
    .expect("chaos run");
    assert_eq!(seen, res.slots);

    let mut factory = make_factory();
    let mut failing = |_: &owan_chaos::SlotAudit| Err("boom".to_string());
    let err = run_chaos(
        &plant(),
        &requests(),
        &mut factory,
        &config(),
        &[],
        &OpFaultModel::none(),
        &Recorder::disabled(),
        Some(&mut failing),
    )
    .unwrap_err();
    assert!(err.contains("boom"), "{err}");
}

#[test]
fn retry_policy_backoff_is_used() {
    // Drive the retry path hard enough that timeouts stretch makespan.
    let faults = OpFaultModel {
        seed: 5,
        timeout_prob: 0.6,
        fail_prob: 0.0,
    };
    let cfg = ChaosConfig {
        retry: RetryPolicy {
            max_retries: 4,
            ..Default::default()
        },
        max_slots: 300,
        ..config()
    };
    let mut factory = make_factory();
    let res = run_chaos(
        &plant(),
        &requests(),
        &mut factory,
        &cfg,
        &[],
        &faults,
        &Recorder::disabled(),
        None,
    )
    .expect("chaos run");
    assert!(res.stats.op_timeouts > 0);
    assert!(res.all_complete(), "completions: {:?}", res.completions);
}
