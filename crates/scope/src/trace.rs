//! Causal slot timeline: parent/child spans and Chrome trace-event
//! export.
//!
//! Spans are recorded *post hoc* as closed `[start_ns, end_ns]` intervals
//! with an explicit parent — the sim already measures every stage's
//! duration (see `SlotTelemetry`), so the scope layer lays those
//! measurements out as a properly nested tree instead of re-timing them.
//! Export follows the Chrome trace-event JSON format (the array-of-events
//! `traceEvents` form): nested `ph:"B"`/`ph:"E"` duration events emitted
//! in depth-first order plus `ph:"i"` instants for the recorder's event
//! ring, so a run opens directly in Perfetto or `chrome://tracing`.

use owan_obs::json::{write_f64, write_str};
use owan_obs::{Snapshot, Value};
use std::fmt::Write as _;
use std::io::{self, Write};

/// A closed span in the slot timeline.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Span id, unique within the run.
    pub id: u64,
    /// Parent span id (`None` for slot roots).
    pub parent: Option<u64>,
    /// Subsystem category (`sim`, `anneal`, `circuits`, `rates`,
    /// `update`, `chaos`).
    pub cat: String,
    /// Display name.
    pub name: String,
    /// Start, recorder-clock nanoseconds.
    pub start_ns: u64,
    /// End, recorder-clock nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Arguments shown in the trace viewer.
    pub args: Vec<(String, Value)>,
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => write_str(out, s),
    }
}

fn write_args(out: &mut String, args: &[(String, Value)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

fn write_event_prefix(out: &mut String, name: &str, cat: &str, ph: char, ts_ns: u64) {
    out.push_str("{\"name\":");
    write_str(out, name);
    out.push_str(",\"cat\":");
    write_str(out, cat);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
    write_f64(out, ts_ns as f64 / 1_000.0);
    out.push_str(",\"pid\":1,\"tid\":1");
}

/// Writes `spans` (+ the recorder snapshot's event ring as instants) as a
/// Chrome trace-event JSON document.
///
/// Duration events are emitted as `B`/`E` pairs in depth-first order —
/// children strictly inside their parent — so a reader that replays the
/// array front-to-back sees a well-formed span stack even where
/// timestamps tie.
pub fn write_chrome_trace<W: Write>(
    writer: &mut W,
    spans: &[SpanRec],
    snapshot: Option<&Snapshot>,
) -> io::Result<()> {
    // Index children by parent, preserving recording order (which is
    // already start-ordered within a parent). First occurrence wins on a
    // duplicate id: a later same-id span must not steal the earlier
    // span's children (merged streams avoid duplicates entirely via
    // [`stream_base`] namespacing).
    let mut roots: Vec<usize> = Vec::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut index_of_id = std::collections::BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        index_of_id.entry(span.id).or_insert(i);
    }
    for (i, span) in spans.iter().enumerate() {
        match span.parent.and_then(|p| index_of_id.get(&p)) {
            Some(&parent_idx) if parent_idx != i => children[parent_idx].push(i),
            _ => roots.push(i),
        }
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // Iterative DFS; each stack entry is (span index, emitted-children?).
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&i| (i, false)).collect();
    while let Some((idx, expanded)) = stack.pop() {
        let span = &spans[idx];
        if expanded {
            if !first {
                out.push(',');
            }
            first = false;
            write_event_prefix(&mut out, &span.name, &span.cat, 'E', span.end_ns);
            out.push('}');
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        write_event_prefix(&mut out, &span.name, &span.cat, 'B', span.start_ns);
        write_args(&mut out, &span.args);
        out.push('}');
        stack.push((idx, true));
        for &child in children[idx].iter().rev() {
            stack.push((child, false));
        }
        if out.len() >= 1 << 16 {
            writer.write_all(out.as_bytes())?;
            out.clear();
        }
    }

    // The recorder's event ring becomes thread-scoped instants.
    if let Some(snapshot) = snapshot {
        for event in &snapshot.events {
            if !first {
                out.push(',');
            }
            first = false;
            write_event_prefix(&mut out, &event.name, "event", 'i', event.ts_ns);
            out.push_str(",\"s\":\"t\"");
            let args: Vec<(String, Value)> = event.fields.clone();
            write_args(&mut out, &args);
            out.push('}');
            if out.len() >= 1 << 16 {
                writer.write_all(out.as_bytes())?;
                out.clear();
            }
        }
    }

    out.push_str("]}");
    writer.write_all(out.as_bytes())
}

/// Span-id namespace width: every span stream merged into one trace gets
/// its own `1 << 48` id block, so ids from independently recorded
/// streams (each counting from zero) can never collide no matter how
/// many spans either recorded.
pub const STREAM_ID_BITS: u32 = 48;

/// The first id of stream `stream`'s namespace block.
pub const fn stream_base(stream: usize) -> u64 {
    (stream as u64) << STREAM_ID_BITS
}

/// Merges several independently recorded span streams (runs, profiler
/// snapshots) into one list, rebasing each stream's ids — and the parent
/// links that reference them — into its own [`stream_base`] namespace.
/// Without the rebase, two runs that both start counting at id 0 collide
/// and the duplicate ids cross-wire parent/child edges in the export.
pub fn merge_span_streams(streams: &[Vec<SpanRec>]) -> Vec<SpanRec> {
    let mut out: Vec<SpanRec> = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    for (stream, spans) in streams.iter().enumerate() {
        let base = stream_base(stream);
        for span in spans {
            debug_assert!(
                span.id < stream_base(1),
                "span id {} overflows its stream namespace",
                span.id
            );
            let mut span = span.clone();
            span.id += base;
            span.parent = span.parent.map(|p| p + base);
            out.push(span);
        }
    }
    out
}

/// Converts a profiler snapshot's retained raw spans into trace spans,
/// so one Chrome trace carries both the scope's causal timeline and the
/// tier-3 measured regions (category `prof`). `id_offset` namespaces the
/// profiler's span indices away from the scope spans the result will be
/// merged with — pass a [`stream_base`] block start, not a max-id+1
/// guess. Spans whose enclosing span fell outside the retention cap
/// surface as roots rather than being dropped.
pub fn prof_trace_spans(snap: &owan_prof::ProfSnapshot, id_offset: u64) -> Vec<SpanRec> {
    snap.spans
        .iter()
        .enumerate()
        .map(|(i, s)| SpanRec {
            id: id_offset + i as u64,
            parent: s.parent.map(|p| id_offset + p as u64),
            cat: "prof".into(),
            name: snap.nodes[s.node].name.clone(),
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            args: vec![
                ("path".into(), Value::Str(snap.path(s.node).join(";"))),
                ("tid".into(), Value::U64(s.tid as u64)),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::{parse, Json};

    fn span(id: u64, parent: Option<u64>, cat: &str, start: u64, end: u64) -> SpanRec {
        SpanRec {
            id,
            parent,
            cat: cat.into(),
            name: format!("{cat} {id}"),
            start_ns: start,
            end_ns: end,
            args: vec![("id".into(), Value::U64(id))],
        }
    }

    #[test]
    fn trace_is_valid_json_with_balanced_begin_end() {
        let spans = vec![
            span(1, None, "sim", 0, 100),
            span(2, Some(1), "anneal", 10, 60),
            span(3, Some(2), "circuits", 10, 30),
            span(4, Some(2), "rates", 30, 55),
            span(5, Some(1), "update", 60, 80),
            span(6, None, "sim", 100, 200),
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &spans, None).unwrap();
        let doc = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // B/E balance with a proper stack.
        let mut stack: Vec<String> = Vec::new();
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            let name = ev.get("name").unwrap().as_str().unwrap();
            match ph {
                "B" => stack.push(name.to_string()),
                "E" => assert_eq!(stack.pop().as_deref(), Some(name)),
                _ => {}
            }
        }
        assert!(stack.is_empty());
        assert_eq!(events.len(), 12);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let spans = vec![span(1, None, "sim", 2_500, 4_500)];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &spans, None).unwrap();
        let doc = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(4.5));
    }

    #[test]
    fn prof_spans_merge_into_the_trace() {
        let prof = owan_prof::Profiler::enabled();
        {
            let _outer = prof.region("plan_slot");
            let _inner = prof.region("anneal");
        }
        let snap = prof.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let mut spans = vec![span(1, None, "sim", 0, 100)];
        spans.extend(prof_trace_spans(&snap, 1_000));
        assert_eq!(spans.len(), 3);
        assert!(spans
            .iter()
            .skip(1)
            .all(|s| s.cat == "prof" && s.id >= 1_000));
        // The nested prof region keeps its parent link after rebasing.
        assert!(spans
            .iter()
            .any(|s| s.name == "anneal" && s.parent.is_some_and(|p| p >= 1_000)));
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &spans, None).unwrap();
        let doc = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 spans -> 3 B + 3 E events, stack-balanced.
        assert_eq!(events.len(), 6);
        let mut depth = 0i64;
        for ev in events {
            match ev.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn merging_two_runs_keeps_span_ids_unique() {
        // Two runs recorded independently: identical id sequences, which
        // collided (and cross-wired parents) before stream namespacing.
        let run = |cat: &str| {
            vec![
                span(0, None, cat, 0, 100),
                span(1, Some(0), cat, 10, 60),
                span(2, Some(1), cat, 20, 40),
            ]
        };
        let merged = merge_span_streams(&[run("sim"), run("chaos")]);
        assert_eq!(merged.len(), 6);
        let ids: std::collections::BTreeSet<u64> = merged.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), merged.len(), "merged span ids must be unique");
        // Parent links stay inside their own stream's namespace.
        for span in &merged {
            if let Some(p) = span.parent {
                assert_eq!(p >> STREAM_ID_BITS, span.id >> STREAM_ID_BITS);
            }
        }
        assert_eq!(merged[3].id, stream_base(1));
        assert_eq!(merged[4].parent, Some(stream_base(1)));
        // The export stays stack-balanced: each run nests under its own
        // roots instead of the second run's children grafting onto the
        // first run's same-id spans.
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &merged, None).unwrap();
        let doc = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 12, "3 spans per run -> 6 B + 6 E");
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for ev in events {
            match ev.get("ph").unwrap().as_str().unwrap() {
                "B" => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                "E" => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert_eq!(max_depth, 3, "each run keeps its own 3-deep nesting");
    }

    #[test]
    fn snapshot_events_become_instants() {
        let rec = owan_obs::Recorder::enabled();
        rec.event("anneal.sample", &[("iter", Value::U64(7))]);
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[], Some(&rec.snapshot())).unwrap();
        let doc = parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            events[0].get("args").unwrap().get("iter"),
            Some(&Json::Num(7.0))
        );
    }
}
