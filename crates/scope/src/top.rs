//! Rendering for the `owan-cli top` terminal dashboard.
//!
//! Pure snapshot → string so it is testable without a terminal; the CLI
//! adds the refresh loop and ANSI screen clearing around it.

use owan_obs::{format_counter_rows, format_stage_table, Snapshot};
use std::fmt::Write as _;

/// Stages shown in the dashboard's timing table.
const STAGES: [(&str, &str); 6] = [
    ("slot", "stage.slot"),
    ("anneal", "stage.anneal"),
    ("circuits", "stage.circuits"),
    ("rates", "stage.rates"),
    ("update", "stage.update"),
    ("chaos.op", "stage.chaos.op"),
];

fn counter(snapshot: &Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

fn gauge(snapshot: &Snapshot, name: &str) -> f64 {
    snapshot.gauges.get(name).copied().unwrap_or(0.0)
}

/// Renders one dashboard frame from a recorder snapshot.
pub fn render_top(snapshot: &Snapshot, elapsed_s: f64) -> String {
    let mut out = String::new();
    let slots = counter(snapshot, "stage.slot.calls");
    let _ = writeln!(out, "owan top — {elapsed_s:.1}s elapsed, slot {slots}",);
    let _ = writeln!(
        out,
        "throughput {:.2} Gbps | active {} | queued {} | at-risk {}",
        gauge(snapshot, "slot.throughput_gbps"),
        gauge(snapshot, "slot.active_transfers") as u64,
        gauge(snapshot, "slot.queue_depth") as u64,
        gauge(snapshot, "slot.at_risk") as u64,
    );

    let hits = counter(snapshot, "anneal.cache_hit");
    let misses = counter(snapshot, "anneal.cache_miss");
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "anneal: {} iters, cache hit rate {:.1}% ({hits} hit / {misses} miss)",
            counter(snapshot, "anneal.iterations"),
            100.0 * hits as f64 / (hits + misses) as f64,
        );
        // Miss attribution, when the run recorded any: the
        // `anneal.cache_miss.<reason>` counters partition the miss total.
        let reason_rows: Vec<(&str, u64)> = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("anneal.cache_miss."))
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        if reason_rows.iter().any(|&(_, n)| n > 0) {
            out.push_str(&format_counter_rows(&reason_rows));
        }
    }

    // Rate-assignment recomputation split: how many energy evaluations the
    // incremental (delta) path carried vs full shortest-paths-first passes.
    let delta = counter(snapshot, "rates.delta_evals");
    let full = counter(snapshot, "rates.full_evals");
    if delta + full > 0 {
        let _ = writeln!(
            out,
            "rates: {:.1}% delta ({delta} delta / {full} full)",
            100.0 * delta as f64 / (delta + full) as f64,
        );
    }

    // Chaos counters share the standard table renderer so every counter
    // table in the CLI lines up the same way.
    let chaos_keys = [
        ("chaos faults", "chaos.faults_detected"),
        ("chaos retries", "chaos.op_retries"),
        ("chaos aborts", "chaos.op_aborts"),
        ("chaos crashes", "chaos.crashes"),
        ("chaos fallbacks", "chaos.fallback_slots"),
        ("chaos blackholed", "chaos.blackhole_paths"),
    ];
    if chaos_keys.iter().any(|(_, k)| counter(snapshot, k) > 0) {
        let rows: Vec<(&str, u64)> = chaos_keys
            .iter()
            .map(|&(label, key)| (label, counter(snapshot, key)))
            .collect();
        out.push_str(&format_counter_rows(&rows));
    }

    // Adversarial-traffic counters (`owan-cli attack` runs): same table
    // renderer, only shown when an attack actually injected something.
    let attack_keys = [
        ("attack waves", "chaos.attack.waves"),
        ("attack slots", "chaos.attack.active_slots"),
        ("attack injected Gb", "chaos.attack.injected_gbits"),
        ("attack victim links", "chaos.attack.victim_links"),
        ("attack restored slots", "chaos.attack.restored_slots"),
    ];
    if attack_keys.iter().any(|(_, k)| counter(snapshot, k) > 0) {
        let rows: Vec<(&str, u64)> = attack_keys
            .iter()
            .map(|&(label, key)| (label, counter(snapshot, key)))
            .collect();
        out.push_str(&format_counter_rows(&rows));
    }

    let oracle_checked = counter(snapshot, "oracle.invariant_checked");
    if oracle_checked > 0 {
        let _ = writeln!(
            out,
            "oracle: {oracle_checked} invariants checked, {} violated",
            counter(snapshot, "oracle.invariant_violated"),
        );
    }

    out.push('\n');
    // Only list stages that have run, so baselines without annealing get
    // a compact table.
    let active_stages: Vec<(&str, &str)> = STAGES
        .iter()
        .copied()
        .filter(|(_, name)| counter(snapshot, &format!("{name}.calls")) > 0)
        .collect();
    if active_stages.is_empty() {
        out.push_str("(no stage timings yet)\n");
    } else {
        out.push_str(&format_stage_table(snapshot, &active_stages));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_obs::Recorder;

    #[test]
    fn dashboard_shows_gauges_cache_rate_and_stages() {
        let rec = Recorder::enabled();
        rec.gauge("slot.throughput_gbps").set(42.5);
        rec.gauge("slot.active_transfers").set(7.0);
        rec.gauge("slot.at_risk").set(2.0);
        rec.counter("anneal.cache_hit").add(75);
        rec.counter("anneal.cache_miss").add(25);
        rec.counter("anneal.iterations").add(100);
        rec.stage("stage.slot").record_ns(5_000_000);
        let text = render_top(&rec.snapshot(), 3.25);
        assert!(text.contains("3.2s elapsed"));
        assert!(text.contains("throughput 42.50 Gbps"));
        assert!(text.contains("at-risk 2"));
        assert!(text.contains("cache hit rate 75.0%"));
        assert!(text.contains("slot"));
        assert!(!text.contains("chaos"), "no chaos section without counters");
    }

    #[test]
    fn chaos_section_appears_with_counters() {
        let rec = Recorder::enabled();
        rec.counter("chaos.blackhole_paths").add(3);
        let text = render_top(&rec.snapshot(), 0.0);
        let row = text
            .lines()
            .find(|l| l.starts_with("chaos blackholed"))
            .expect("chaos table row");
        assert!(row.trim_end().ends_with('3'), "{row}");
    }

    #[test]
    fn attack_section_appears_with_counters() {
        let rec = Recorder::enabled();
        rec.counter("chaos.attack.waves").add(2);
        rec.counter("chaos.attack.injected_gbits").add(43_200_000);
        let text = render_top(&rec.snapshot(), 0.0);
        let row = text
            .lines()
            .find(|l| l.starts_with("attack waves"))
            .expect("attack table row");
        assert!(row.trim_end().ends_with('2'), "{row}");
        assert!(text.contains("attack injected Gb"));
    }

    #[test]
    fn miss_attribution_table_appears_with_reason_counters() {
        let rec = Recorder::enabled();
        rec.counter("anneal.cache_hit").add(9);
        rec.counter("anneal.cache_miss").add(5);
        rec.counter("anneal.cache_miss.cold").add(4);
        rec.counter("anneal.cache_miss.flush").add(1);
        let text = render_top(&rec.snapshot(), 0.0);
        assert!(text.contains("anneal.cache_miss.cold"));
        assert!(text.contains("anneal.cache_miss.flush"));
    }

    #[test]
    fn rates_split_appears_with_counters() {
        let rec = Recorder::enabled();
        rec.counter("rates.delta_evals").add(30);
        rec.counter("rates.full_evals").add(10);
        let text = render_top(&rec.snapshot(), 0.0);
        assert!(
            text.contains("rates: 75.0% delta (30 delta / 10 full)"),
            "{text}"
        );
        let none = render_top(&Recorder::enabled().snapshot(), 0.0);
        assert!(!none.contains("rates:"), "no rates row without counters");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let text = render_top(&Recorder::disabled().snapshot(), 0.0);
        assert!(text.contains("(no stage timings yet)"));
    }
}
