//! Prometheus text-format exposition for an [`owan_obs::Snapshot`].
//!
//! Counter and gauge names are sanitized (dots and dashes become
//! underscores) and prefixed `owan_`; histograms render as cumulative
//! `_bucket{le=...}` series plus `_sum`/`_count`, per the Prometheus
//! exposition format. Span-timer histograms (names ending `.ms`) also
//! render a companion `_summary` metric with p50/p90/p99 quantile lines
//! estimated by bucket interpolation, so dashboards get tail latency
//! without a PromQL `histogram_quantile` round trip.

use owan_obs::Snapshot;
use std::fmt::Write as _;

/// `anneal.cache_hit` → `owan_anneal_cache_hit`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("owan_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_float(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.0}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders the snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        out.push_str(&metric);
        out.push(' ');
        write_float(&mut out, *value);
        out.push('\n');
    }
    for (name, hist) in &snapshot.histograms {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (i, count) in hist.counts.iter().enumerate() {
            cumulative += count;
            match hist.bounds.get(i) {
                Some(bound) => {
                    out.push_str(&metric);
                    out.push_str("_bucket{le=\"");
                    write_float(&mut out, *bound);
                    let _ = writeln!(out, "\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        out.push_str(&metric);
        out.push_str("_sum ");
        write_float(&mut out, hist.sum);
        out.push('\n');
        let _ = writeln!(out, "{metric}_count {}", hist.total);
        if name.ends_with(".ms") {
            let _ = writeln!(out, "# TYPE {metric}_summary summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                let _ = write!(out, "{metric}_summary{{quantile=\"{label}\"}} ");
                write_float(&mut out, hist.quantile(q));
                out.push('\n');
            }
            out.push_str(&metric);
            out.push_str("_summary_sum ");
            write_float(&mut out, hist.sum);
            out.push('\n');
            let _ = writeln!(out, "{metric}_summary_count {}", hist.total);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_obs::Recorder;

    #[test]
    fn counters_gauges_and_histograms_render() {
        let rec = Recorder::enabled();
        rec.counter("anneal.cache_hit").add(41);
        rec.gauge("slot.throughput_gbps").set(12.5);
        let h = rec.histogram("stage.slot.ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = render_prometheus(&rec.snapshot());
        assert!(text.contains("# TYPE owan_anneal_cache_hit counter"));
        assert!(text.contains("owan_anneal_cache_hit 41"));
        assert!(text.contains("owan_slot_throughput_gbps 12.5"));
        // Cumulative buckets: 1, 2, then +Inf = 3.
        assert!(text.contains("owan_stage_slot_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("owan_stage_slot_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("owan_stage_slot_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("owan_stage_slot_ms_count 3"));
    }

    #[test]
    fn span_timer_histograms_render_quantile_summaries() {
        let rec = Recorder::enabled();
        let h = rec.histogram("stage.anneal.ms", &[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..10 {
            h.observe(50.0);
        }
        let text = render_prometheus(&rec.snapshot());
        assert!(text.contains("# TYPE owan_stage_anneal_ms_summary summary"));
        // p50 interpolates inside the first bucket, p99 inside (10, 100].
        assert!(text.contains("owan_stage_anneal_ms_summary{quantile=\"0.5\"}"));
        assert!(text.contains("owan_stage_anneal_ms_summary{quantile=\"0.9\"}"));
        assert!(text.contains("owan_stage_anneal_ms_summary{quantile=\"0.99\"}"));
        assert!(text.contains("owan_stage_anneal_ms_summary_count 100"));
        let p99_line = text
            .lines()
            .find(|l| l.contains("quantile=\"0.99\""))
            .expect("p99 line renders");
        let p99: f64 = p99_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(p99 > 10.0 && p99 <= 100.0, "p99 {p99} outside its bucket");
    }

    #[test]
    fn non_timer_histograms_render_no_summary() {
        let rec = Recorder::enabled();
        rec.histogram("transfer.size_gbits", &[10.0]).observe(3.0);
        let text = render_prometheus(&rec.snapshot());
        assert!(!text.contains("_summary"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c_d9"), "owan_a_b_c_d9");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Recorder::disabled().snapshot()), "");
    }
}
