//! `owan-scope`: per-transfer flight recorder, causal slot timelines,
//! and live introspection for the Owan reproduction.
//!
//! This crate is the second observability tier on top of `owan-obs`.
//! Where `owan-obs` answers "how much / how fast" with counters and
//! histograms, `owan-scope` answers "what happened to *this* transfer
//! in *that* slot":
//!
//! * [`TransferTracker`] — per-transfer lifecycle state machine with
//!   per-slot rates, per-path delivered volume, queue positions,
//!   preemptions and deadline slack (`owan-cli transfers [--trace ID]`);
//! * [`SpanRec`] + [`write_chrome_trace`] — a causal timeline of every
//!   slot's anneal/circuits/rates/update work, exportable as Chrome
//!   trace-event JSON for Perfetto / `chrome://tracing`;
//! * [`FlightRing`] — a bounded ring of full-fidelity [`SlotFrame`]s
//!   dumped to a self-contained reproducer file on the first anomaly;
//! * [`MetricsServer`] + [`render_top`] — live Prometheus exposition
//!   and a terminal dashboard while a sim runs.
//!
//! Like the obs [`owan_obs::Recorder`], a [`ScopeRecorder`] is an
//! `Option<Arc<...>>`: the disabled default makes every hook an early
//! return on `None`, so instrumented loops pay nothing when scoping is
//! off — no allocation, no locking, no formatting.

mod flight;
pub mod jsonv;
mod prom;
mod serve;
mod top;
mod trace;
mod transfers;

pub use flight::{FlightDump, FlightRing, FrameTransfer, SlotFrame, DUMP_HEADER};
pub use prom::render_prometheus;
pub use serve::MetricsServer;
pub use top::render_top;
pub use trace::{merge_span_streams, prof_trace_spans, stream_base, write_chrome_trace, SpanRec};
pub use transfers::{SlotTrace, TrackedTransfer, TransferSlotRow, TransferState, TransferTracker};

use owan_core::{SlotPlan, TransferRequest};
use owan_obs::{Snapshot, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Configuration for an enabled scope.
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// Flight-recorder depth: how many recent slots survive in the ring.
    pub flight_slots: usize,
    /// Where an anomaly dump is written; `None` keeps it in memory only
    /// (retrievable via [`ScopeRecorder::dump_text`]).
    pub dump_path: Option<PathBuf>,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            flight_slots: 16,
            dump_path: None,
        }
    }
}

/// Everything the slot loop tells the scope once per slot.
///
/// Stage durations come from the obs telemetry's per-slot marks; the
/// scope turns them into nested spans (anneal ⊃ circuits+rates, and
/// update after planning, all inside the slot span).
#[derive(Debug, Clone, Copy)]
pub struct SlotObservation<'a> {
    /// Slot index.
    pub slot: usize,
    /// Slot start, sim seconds.
    pub now_s: f64,
    /// Slot length, sim seconds.
    pub slot_len_s: f64,
    /// Recorder-clock ns at slot-processing start.
    pub start_ns: u64,
    /// Recorder-clock ns at slot-processing end.
    pub end_ns: u64,
    /// Recorder-clock ns when planning started.
    pub plan_start_ns: u64,
    /// Total planning duration this slot, ns.
    pub plan_ns: u64,
    /// Annealing duration inside planning, ns.
    pub anneal_ns: u64,
    /// Circuit-construction duration inside annealing, ns.
    pub circuits_ns: u64,
    /// Rate-allocation duration inside annealing, ns.
    pub rates_ns: u64,
    /// Network-update duration after planning, ns.
    pub update_ns: u64,
    /// Update operations scheduled into the slot.
    pub update_ops: usize,
    /// Total allocated throughput, Gbps.
    pub throughput_gbps: f64,
    /// Active transfers at slot start.
    pub active_transfers: usize,
    /// Zero-rate queue depth.
    pub queue_depth: usize,
    /// Deadline transfers that cannot finish in time at current rates.
    pub at_risk: usize,
    /// The slot's plan (topology + allocations).
    pub plan: &'a SlotPlan,
    /// Per-transfer observations for the tracker.
    pub rows: &'a [TransferSlotRow],
    /// Failures the controller believes in (detected), stable strings.
    pub believed_down: &'a [String],
    /// Failures actually present in the plant.
    pub actual_down: &'a [String],
    /// Deterministic event strings for the flight frame.
    pub events: &'a [String],
}

#[derive(Debug, Default)]
struct ScopeState {
    meta: BTreeMap<String, String>,
    tracker: TransferTracker,
    spans: Vec<SpanRec>,
    ring: FlightRing,
    next_span: u64,
    last_slot: usize,
    last_slot_span: Option<u64>,
    dumped: bool,
    dump_text: Option<String>,
}

#[derive(Debug)]
struct ScopeInner {
    config: ScopeConfig,
    state: Mutex<ScopeState>,
}

/// Handle to the flight recorder / timeline collector (see crate docs).
///
/// Cloning shares the underlying state; the disabled default is inert.
#[derive(Debug, Clone, Default)]
pub struct ScopeRecorder {
    inner: Option<Arc<ScopeInner>>,
}

impl ScopeRecorder {
    /// The inert scope: every method returns immediately.
    pub fn disabled() -> Self {
        ScopeRecorder::default()
    }

    /// A collecting scope.
    pub fn enabled(config: ScopeConfig) -> Self {
        let ring = FlightRing::new(config.flight_slots);
        ScopeRecorder {
            inner: Some(Arc::new(ScopeInner {
                config,
                state: Mutex::new(ScopeState {
                    ring,
                    ..ScopeState::default()
                }),
            })),
        }
    }

    /// Whether this scope collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, ScopeState>> {
        let inner = self.inner.as_ref()?;
        Some(inner.state.lock().expect("scope state poisoned"))
    }

    /// Attaches run-reconstruction metadata (`net`, `seed`, `load`, …)
    /// echoed — sorted — into every flight dump.
    pub fn set_meta(&self, key: &str, value: impl ToString) {
        if let Some(mut state) = self.lock() {
            state.meta.insert(key.to_string(), value.to_string());
        }
    }

    /// Registers the run's request list and clears prior run state.
    pub fn begin_run(&self, requests: &[TransferRequest]) {
        let Some(mut state) = self.lock() else {
            return;
        };
        state.tracker.begin_run(requests);
        state.spans.clear();
        state.next_span = 0;
        state.last_slot = 0;
        state.last_slot_span = None;
        state.dumped = false;
        state.dump_text = None;
        let capacity = self
            .inner
            .as_ref()
            .map_or(16, |inner| inner.config.flight_slots);
        state.ring = FlightRing::new(capacity);
    }

    /// Feeds one slot: updates the transfer tracker, pushes a flight
    /// frame, and synthesizes the slot's span tree.
    pub fn record_slot(&self, obs: &SlotObservation<'_>) {
        let Some(mut state) = self.lock() else {
            return;
        };
        state.last_slot = obs.slot;
        state
            .tracker
            .observe_slot(obs.slot, obs.now_s, obs.slot_len_s, obs.rows);
        let frame = SlotFrame {
            slot: obs.slot,
            now_s: obs.now_s,
            active: obs.active_transfers,
            queue_depth: obs.queue_depth,
            at_risk: obs.at_risk,
            throughput_gbps: obs.throughput_gbps,
            plan_links: obs.plan.topology.links().len(),
            plan_allocs: obs.plan.allocations.len(),
            update_ops: obs.update_ops,
            believed_down: obs.believed_down.to_vec(),
            actual_down: obs.actual_down.to_vec(),
            transfers: obs
                .rows
                .iter()
                .map(|row| FrameTransfer {
                    id: row.id,
                    rate_gbps: row.rate_gbps,
                    delivered_gbits: row.delivered_gbits,
                    remaining_gbits: row.remaining_gbits,
                    queued: row.queue_pos.is_some(),
                })
                .collect(),
            events: obs.events.to_vec(),
        };
        state.ring.push(frame);
        synthesize_spans(&mut state, obs);
    }

    /// Adds an extra span (e.g. a chaos recovery window) as a child of
    /// the most recent slot span. Bounds are clamped into the slot.
    pub fn record_extra_span(
        &self,
        cat: &str,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(String, Value)>,
    ) {
        let Some(mut state) = self.lock() else {
            return;
        };
        let parent = state.last_slot_span;
        let (start_ns, end_ns) = match parent.and_then(|id| {
            state
                .spans
                .iter()
                .find(|s| s.id == id)
                .map(|s| (s.start_ns, s.end_ns))
        }) {
            Some((lo, hi)) => {
                let start = start_ns.clamp(lo, hi);
                (start, end_ns.clamp(start, hi))
            }
            None => (start_ns, end_ns.max(start_ns)),
        };
        push_span(&mut state, parent, cat, name, start_ns, end_ns, args);
    }

    /// Reports an anomaly. The *first* anomaly of a run freezes the
    /// flight ring into a dump: written to the configured path (returned)
    /// or kept in memory (see [`ScopeRecorder::dump_text`]). Later
    /// anomalies are ignored so the dump shows the slots *leading up to*
    /// the first failure.
    pub fn anomaly(&self, reason: &str, slot: usize) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.state.lock().expect("scope state poisoned");
        if state.dumped {
            return None;
        }
        state.dumped = true;
        let text = flight::render_dump(reason, slot, &state.meta, &state.ring);
        state.dump_text = Some(text.clone());
        drop(state);
        let path = inner.config.dump_path.clone()?;
        std::fs::write(&path, text).ok()?;
        Some(path)
    }

    /// Writes a dump of the current ring regardless of anomaly state
    /// (used by CI to validate the dump pipeline). Returns `false` when
    /// disabled.
    pub fn force_dump(&self, path: &Path) -> io::Result<bool> {
        let Some(state) = self.lock() else {
            return Ok(false);
        };
        let text = flight::render_dump("forced", state.last_slot, &state.meta, &state.ring);
        drop(state);
        std::fs::write(path, text)?;
        Ok(true)
    }

    /// The in-memory dump from the first anomaly, if one fired.
    pub fn dump_text(&self) -> Option<String> {
        self.lock()?.dump_text.clone()
    }

    /// Whether an anomaly has already frozen the ring.
    pub fn has_dumped(&self) -> bool {
        self.lock().map(|s| s.dumped).unwrap_or(false)
    }

    /// Exports the collected spans (plus, optionally, the obs event ring
    /// as instants) as Chrome trace-event JSON.
    pub fn export_chrome_trace<W: io::Write>(
        &self,
        snapshot: Option<&Snapshot>,
        mut writer: W,
    ) -> io::Result<()> {
        let spans = match self.lock() {
            Some(state) => state.spans.clone(),
            None => Vec::new(),
        };
        write_chrome_trace(&mut writer, &spans, snapshot)
    }

    /// [`Self::export_chrome_trace`] with a tier-3 profiler snapshot's
    /// retained spans merged in (category `prof`), their ids rebased into
    /// the next [`stream_base`] namespace block — one trace file carries
    /// the causal slot timeline and the measured hot-path regions side by
    /// side, with no id collisions between the two streams.
    pub fn export_chrome_trace_with_prof<W: io::Write>(
        &self,
        snapshot: Option<&Snapshot>,
        prof: &owan_prof::ProfSnapshot,
        mut writer: W,
    ) -> io::Result<()> {
        let mut spans = match self.lock() {
            Some(state) => state.spans.clone(),
            None => Vec::new(),
        };
        spans.extend(prof_trace_spans(prof, trace::stream_base(1)));
        write_chrome_trace(&mut writer, &spans, snapshot)
    }

    /// Number of spans collected so far.
    pub fn span_count(&self) -> usize {
        self.lock().map(|s| s.spans.len()).unwrap_or(0)
    }

    /// A point-in-time copy of the transfer tracker.
    pub fn tracker_snapshot(&self) -> Option<TransferTracker> {
        Some(self.lock()?.tracker.clone())
    }

    /// The `owan-cli transfers` table.
    pub fn render_transfers(&self) -> Option<String> {
        Some(self.lock()?.tracker.render_table())
    }

    /// The per-slot trace of one transfer (`--trace ID`).
    pub fn render_transfer_trace(&self, id: usize) -> Option<String> {
        self.lock()?.tracker.render_trace(id)
    }

    /// Total delivered across every tracked transfer, Gb.
    pub fn total_delivered_gbits(&self) -> f64 {
        self.lock()
            .map(|s| s.tracker.total_delivered_gbits())
            .unwrap_or(0.0)
    }
}

/// `[0, 3, 5]` → `"0-3-5"` — the stable per-path label used in
/// tracker rows and `delivered by path` reports.
pub fn path_label(path: &[usize]) -> String {
    let mut out = String::with_capacity(path.len() * 3);
    for (i, site) in path.iter().enumerate() {
        if i > 0 {
            out.push('-');
        }
        out.push_str(&site.to_string());
    }
    out
}

fn push_span(
    state: &mut ScopeState,
    parent: Option<u64>,
    cat: &str,
    name: &str,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(String, Value)>,
) -> u64 {
    let id = state.next_span;
    state.next_span += 1;
    state.spans.push(SpanRec {
        id,
        parent,
        cat: cat.to_string(),
        name: name.to_string(),
        start_ns,
        end_ns: end_ns.max(start_ns),
        args,
    });
    id
}

/// Builds the slot's span tree from the stage durations.
///
/// Layout (telemetry invariants guarantee the containments; bounds are
/// clamped defensively anyway):
///
/// ```text
/// slot N  [start_ns ............................... end_ns]      cat sim
///   anneal   [plan_start, +anneal_ns]                             cat anneal
///     circuits  [plan_start, +circuits_ns]                        cat circuits
///     rates     [plan_start+circuits_ns, +rates_ns]               cat rates
///   update   [plan_start+plan_ns, +update_ns]                     cat update
/// ```
fn synthesize_spans(state: &mut ScopeState, obs: &SlotObservation<'_>) {
    let clamp = |lo: u64, hi: u64, start: u64, len: u64| {
        let s = start.clamp(lo, hi);
        (s, s.saturating_add(len).clamp(s, hi))
    };
    let (slot_lo, slot_hi) = (obs.start_ns, obs.end_ns.max(obs.start_ns));
    let slot_span = push_span(
        state,
        None,
        "sim",
        &format!("slot {}", obs.slot),
        slot_lo,
        slot_hi,
        vec![
            ("slot".to_string(), Value::from(obs.slot as u64)),
            ("now_s".to_string(), Value::from(obs.now_s)),
            (
                "throughput_gbps".to_string(),
                Value::from(obs.throughput_gbps),
            ),
            (
                "active".to_string(),
                Value::from(obs.active_transfers as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::from(obs.queue_depth as u64),
            ),
            ("at_risk".to_string(), Value::from(obs.at_risk as u64)),
        ],
    );
    state.last_slot_span = Some(slot_span);

    let (anneal_lo, anneal_hi) = clamp(slot_lo, slot_hi, obs.plan_start_ns, obs.anneal_ns);
    let anneal_span = push_span(
        state,
        Some(slot_span),
        "anneal",
        "anneal",
        anneal_lo,
        anneal_hi,
        Vec::new(),
    );
    let (circ_lo, circ_hi) = clamp(anneal_lo, anneal_hi, anneal_lo, obs.circuits_ns);
    push_span(
        state,
        Some(anneal_span),
        "circuits",
        "circuits",
        circ_lo,
        circ_hi,
        vec![(
            "links".to_string(),
            Value::from(obs.plan.topology.links().len() as u64),
        )],
    );
    let (rates_lo, rates_hi) = clamp(anneal_lo, anneal_hi, circ_hi, obs.rates_ns);
    push_span(
        state,
        Some(anneal_span),
        "rates",
        "rates",
        rates_lo,
        rates_hi,
        vec![(
            "allocations".to_string(),
            Value::from(obs.plan.allocations.len() as u64),
        )],
    );
    let (upd_lo, upd_hi) = clamp(
        slot_lo,
        slot_hi,
        obs.plan_start_ns.saturating_add(obs.plan_ns),
        obs.update_ns,
    );
    push_span(
        state,
        Some(slot_span),
        "update",
        "update",
        upd_lo,
        upd_hi,
        vec![("ops".to_string(), Value::from(obs.update_ops as u64))],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_core::{SlotPlan, Topology};

    fn plan() -> SlotPlan {
        SlotPlan {
            topology: Topology::empty(4),
            allocations: Vec::new(),
            throughput_gbps: 0.0,
        }
    }

    fn obs<'a>(plan: &'a SlotPlan, slot: usize) -> SlotObservation<'a> {
        SlotObservation {
            slot,
            now_s: slot as f64 * 300.0,
            slot_len_s: 300.0,
            start_ns: 1_000,
            end_ns: 11_000,
            plan_start_ns: 2_000,
            plan_ns: 6_000,
            anneal_ns: 5_000,
            circuits_ns: 2_000,
            rates_ns: 1_500,
            update_ns: 1_000,
            update_ops: 3,
            throughput_gbps: 10.0,
            active_transfers: 1,
            queue_depth: 0,
            at_risk: 0,
            plan,
            rows: &[],
            believed_down: &[],
            actual_down: &[],
            events: &[],
        }
    }

    #[test]
    fn disabled_scope_is_inert() {
        let scope = ScopeRecorder::disabled();
        assert!(!scope.is_enabled());
        scope.set_meta("net", "isp");
        scope.begin_run(&[]);
        let p = plan();
        scope.record_slot(&obs(&p, 0));
        assert_eq!(scope.span_count(), 0);
        assert!(scope.anomaly("plan.infeasible", 0).is_none());
        assert!(scope.dump_text().is_none());
        assert!(scope.render_transfers().is_none());
        let mut buf = Vec::new();
        scope.export_chrome_trace(None, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn record_slot_builds_nested_spans() {
        let scope = ScopeRecorder::enabled(ScopeConfig::default());
        scope.begin_run(&[]);
        let p = plan();
        scope.record_slot(&obs(&p, 0));
        assert_eq!(scope.span_count(), 5);
        let mut buf = Vec::new();
        scope.export_chrome_trace(None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let doc = jsonv::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 10, "5 spans -> 5 B + 5 E");
        for cat in ["sim", "anneal", "circuits", "rates", "update"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("cat").and_then(jsonv::Json::as_str) == Some(cat)),
                "missing category {cat}"
            );
        }
    }

    #[test]
    fn spans_are_clamped_into_parents() {
        let scope = ScopeRecorder::enabled(ScopeConfig::default());
        scope.begin_run(&[]);
        let p = plan();
        let mut o = obs(&p, 0);
        // Pathological durations that would overflow the slot.
        o.anneal_ns = 1_000_000;
        o.circuits_ns = 2_000_000;
        o.update_ns = 9_999_999;
        scope.record_slot(&o);
        let tracker = scope.lock().unwrap();
        for span in &tracker.spans {
            assert!(span.start_ns >= 1_000 && span.end_ns <= 11_000, "{span:?}");
            assert!(span.start_ns <= span.end_ns);
        }
    }

    #[test]
    fn first_anomaly_wins_and_freezes_the_dump() {
        let scope = ScopeRecorder::enabled(ScopeConfig {
            flight_slots: 4,
            dump_path: None,
        });
        scope.set_meta("net", "isp");
        scope.set_meta("seed", 7u64);
        scope.begin_run(&[]);
        let p = plan();
        for slot in 0..3 {
            scope.record_slot(&obs(&p, slot));
        }
        assert!(
            scope.anomaly("plan.infeasible", 2).is_none(),
            "no path configured"
        );
        assert!(scope.has_dumped());
        let text = scope.dump_text().unwrap();
        let dump = FlightDump::from_text(&text).unwrap();
        assert_eq!(dump.reason, "plan.infeasible");
        assert_eq!(dump.anomaly_slot, 2);
        assert_eq!(dump.frames.len(), 3);
        assert_eq!(dump.meta["seed"], "7");
        // Second anomaly is ignored.
        scope.anomaly("blackhole.undetected_cut", 2);
        assert_eq!(scope.dump_text().unwrap(), text);
    }

    #[test]
    fn extra_spans_attach_to_the_slot() {
        let scope = ScopeRecorder::enabled(ScopeConfig::default());
        scope.begin_run(&[]);
        let p = plan();
        scope.record_slot(&obs(&p, 0));
        scope.record_extra_span("chaos", "op.retry", 500, 99_000, Vec::new());
        let state = scope.lock().unwrap();
        let chaos = state.spans.iter().find(|s| s.cat == "chaos").unwrap();
        assert_eq!(chaos.parent, state.last_slot_span);
        assert!(chaos.start_ns >= 1_000 && chaos.end_ns <= 11_000);
    }

    #[test]
    fn path_labels_are_dash_joined() {
        assert_eq!(path_label(&[0, 3, 5]), "0-3-5");
        assert_eq!(path_label(&[7]), "7");
        assert_eq!(path_label(&[]), "");
    }
}
