//! Bounded ring-buffer flight recorder with anomaly-triggered dumps.
//!
//! The scope keeps the last K slots of full-fidelity state as
//! [`SlotFrame`]s. On the first anomaly (infeasible plan, blackhole
//! loss, update-retry exhaustion, oracle invariant violation) the ring
//! is serialized to a self-contained dump file that embeds the run's
//! reconstruction metadata, so `owan-cli verify --replay` can re-run the
//! exact scenario.
//!
//! Dumps are *deterministic*: frames carry only simulation-time state
//! (slot indices, sim seconds, Gb figures rendered with `{:?}`), the
//! metadata map is sorted, and no wall-clock reading or filesystem path
//! enters the bytes — two same-seed runs produce byte-identical dumps.

use crate::jsonv;
use owan_obs::json::{write_f64, write_str};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// First line of every dump file.
pub const DUMP_HEADER: &str = "owan-scope flight dump v1";

/// One transfer's state inside a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTransfer {
    /// Transfer id.
    pub id: usize,
    /// Allocated rate this slot, Gbps.
    pub rate_gbps: f64,
    /// Delivered this slot, Gb.
    pub delivered_gbits: f64,
    /// Remaining after the slot, Gb.
    pub remaining_gbits: f64,
    /// Whether the transfer sat in the zero-rate queue.
    pub queued: bool,
}

/// One slot of full-fidelity recorder state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlotFrame {
    /// Slot index.
    pub slot: usize,
    /// Slot start, sim seconds.
    pub now_s: f64,
    /// Active transfers at slot start.
    pub active: usize,
    /// Zero-rate queue depth.
    pub queue_depth: usize,
    /// Deadline transfers that cannot finish in time at current rates.
    pub at_risk: usize,
    /// Allocated throughput, Gbps.
    pub throughput_gbps: f64,
    /// Links in the slot's topology.
    pub plan_links: usize,
    /// Allocations in the slot's plan.
    pub plan_allocs: usize,
    /// Update operations scheduled into the slot.
    pub update_ops: usize,
    /// Failures the controller believed in (detected), as stable strings.
    pub believed_down: Vec<String>,
    /// Failures actually present in the plant (detected or not).
    pub actual_down: Vec<String>,
    /// Per-transfer state.
    pub transfers: Vec<FrameTransfer>,
    /// Deterministic event strings for the slot (chaos ops, crashes …).
    pub events: Vec<String>,
}

impl SlotFrame {
    /// Serializes the frame as one JSON line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"slot\":{},\"now_s\":", self.slot);
        write_f64(&mut out, self.now_s);
        let _ = write!(
            out,
            ",\"active\":{},\"queue_depth\":{},\"at_risk\":{},\"throughput_gbps\":",
            self.active, self.queue_depth, self.at_risk
        );
        write_f64(&mut out, self.throughput_gbps);
        let _ = write!(
            out,
            ",\"plan_links\":{},\"plan_allocs\":{},\"update_ops\":{}",
            self.plan_links, self.plan_allocs, self.update_ops
        );
        for (key, list) in [
            ("believed_down", &self.believed_down),
            ("actual_down", &self.actual_down),
            ("events", &self.events),
        ] {
            let _ = write!(out, ",\"{key}\":[");
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(&mut out, item);
            }
            out.push(']');
        }
        out.push_str(",\"transfers\":[");
        for (i, t) in self.transfers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"rate_gbps\":", t.id);
            write_f64(&mut out, t.rate_gbps);
            out.push_str(",\"delivered_gbits\":");
            write_f64(&mut out, t.delivered_gbits);
            out.push_str(",\"remaining_gbits\":");
            write_f64(&mut out, t.remaining_gbits);
            let _ = write!(out, ",\"queued\":{}}}", t.queued);
        }
        out.push_str("]}");
        out
    }
}

/// The bounded frame ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRing {
    frames: VecDeque<SlotFrame>,
    capacity: usize,
}

impl FlightRing {
    /// A ring keeping the last `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FlightRing {
            frames: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
        }
    }

    /// Pushes a frame, evicting the oldest past capacity.
    pub fn push(&mut self, frame: SlotFrame) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// Frames currently held, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &SlotFrame> {
        self.frames.iter()
    }

    /// Number of frames held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Renders a dump: header, sorted `key: value` metadata, `frames: N`,
/// then one frame JSON line each. `reason`/`slot` describe the anomaly
/// that triggered it ("forced"/last slot for CI-forced dumps).
pub fn render_dump(
    reason: &str,
    slot: usize,
    meta: &BTreeMap<String, String>,
    ring: &FlightRing,
) -> String {
    let mut out = String::new();
    out.push_str(DUMP_HEADER);
    out.push('\n');
    let _ = writeln!(out, "reason: {reason}");
    let _ = writeln!(out, "anomaly_slot: {slot}");
    for (key, value) in meta {
        // Reserved keys cannot be overridden by run metadata.
        if key != "reason" && key != "anomaly_slot" && key != "frames" {
            let _ = writeln!(out, "{key}: {value}");
        }
    }
    let _ = writeln!(out, "frames: {}", ring.len());
    for frame in ring.frames() {
        out.push_str(&frame.to_json());
        out.push('\n');
    }
    out
}

/// A parsed dump file.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The anomaly that triggered the dump.
    pub reason: String,
    /// Slot the anomaly fired in.
    pub anomaly_slot: usize,
    /// Run-reconstruction metadata (`net`, `seed`, `load`, …).
    pub meta: BTreeMap<String, String>,
    /// Raw frame JSON lines, oldest first (each validated as JSON).
    pub frames: Vec<String>,
}

impl FlightDump {
    /// Detects the dump header (used by `verify --replay` dispatch).
    pub fn is_dump(text: &str) -> bool {
        text.lines().next().map(str::trim) == Some(DUMP_HEADER)
    }

    /// Parses and validates a dump produced by [`render_dump`].
    pub fn from_text(text: &str) -> Result<FlightDump, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(DUMP_HEADER) {
            return Err(format!("missing `{DUMP_HEADER}` header"));
        }
        let mut meta = BTreeMap::new();
        let mut declared_frames: Option<usize> = None;
        for line in lines.by_ref() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                return Err(format!("metadata line without ':': {line:?}"));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "frames" {
                declared_frames = Some(value.parse().map_err(|e| format!("bad frame count: {e}"))?);
                break;
            }
            meta.insert(key.to_string(), value.to_string());
        }
        let declared = declared_frames.ok_or("missing `frames:` line")?;
        let mut frames = Vec::with_capacity(declared);
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            jsonv::parse(line).map_err(|e| format!("frame {} invalid: {e}", frames.len()))?;
            frames.push(line.to_string());
        }
        if frames.len() != declared {
            return Err(format!(
                "frame count mismatch: declared {declared}, found {}",
                frames.len()
            ));
        }
        let reason = meta.remove("reason").ok_or("missing `reason:` metadata")?;
        let anomaly_slot = meta
            .remove("anomaly_slot")
            .ok_or("missing `anomaly_slot:` metadata")?
            .parse()
            .map_err(|e| format!("bad anomaly_slot: {e}"))?;
        Ok(FlightDump {
            reason,
            anomaly_slot,
            meta,
            frames,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(slot: usize) -> SlotFrame {
        SlotFrame {
            slot,
            now_s: slot as f64 * 300.0,
            active: 3,
            queue_depth: 1,
            at_risk: 0,
            throughput_gbps: 12.5,
            plan_links: 8,
            plan_allocs: 3,
            update_ops: 4,
            believed_down: vec!["fiber 2 (1-4)".into()],
            actual_down: vec!["fiber 2 (1-4)".into(), "fiber 7 (3-5)".into()],
            transfers: vec![FrameTransfer {
                id: 0,
                rate_gbps: 5.0,
                delivered_gbits: 1500.0,
                remaining_gbits: 400.0,
                queued: false,
            }],
            events: vec![format!("op.retry slot={slot}")],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = FlightRing::new(3);
        for slot in 0..5 {
            ring.push(frame(slot));
        }
        let slots: Vec<usize> = ring.frames().map(|f| f.slot).collect();
        assert_eq!(slots, vec![2, 3, 4]);
    }

    #[test]
    fn dump_round_trips() {
        let mut ring = FlightRing::new(4);
        for slot in 0..4 {
            ring.push(frame(slot));
        }
        let mut meta = BTreeMap::new();
        meta.insert("net".to_string(), "isp".to_string());
        meta.insert("seed".to_string(), "42".to_string());
        let text = render_dump("blackhole.undetected_cut", 3, &meta, &ring);
        assert!(FlightDump::is_dump(&text));
        let dump = FlightDump::from_text(&text).unwrap();
        assert_eq!(dump.reason, "blackhole.undetected_cut");
        assert_eq!(dump.anomaly_slot, 3);
        assert_eq!(dump.meta["net"], "isp");
        assert_eq!(dump.frames.len(), 4);
        // Frames are valid JSON with the expected fields.
        let f0 = jsonv::parse(&dump.frames[0]).unwrap();
        assert_eq!(f0.get("slot").unwrap().as_f64(), Some(0.0));
        assert_eq!(f0.get("actual_down").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn dump_bytes_are_deterministic() {
        let build = || {
            let mut ring = FlightRing::new(2);
            ring.push(frame(7));
            ring.push(frame(8));
            let mut meta = BTreeMap::new();
            meta.insert("seed".to_string(), "9".to_string());
            meta.insert("net".to_string(), "isp".to_string());
            render_dump("plan.infeasible", 8, &meta, &ring)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parser_rejects_corrupt_dumps() {
        assert!(FlightDump::from_text("nonsense").is_err());
        let mut ring = FlightRing::new(1);
        ring.push(frame(0));
        let good = render_dump("x", 0, &BTreeMap::new(), &ring);
        let truncated_frame = good.replace("]}", "]");
        assert!(FlightDump::from_text(&truncated_frame).is_err());
        let wrong_count = good.replace("frames: 1", "frames: 2");
        assert!(FlightDump::from_text(&wrong_count).is_err());
    }
}
