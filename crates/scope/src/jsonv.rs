//! A minimal recursive-descent JSON parser.
//!
//! The repo bans external crates, but the scope acceptance tests must
//! *validate* the Chrome traces and flight-recorder frames we emit — an
//! emitter checked only by its own writer proves nothing. This parser
//! implements RFC 8259 closely enough to reject malformed output:
//! strings with escapes, numbers, literals, arrays, objects, and nothing
//! after the top-level value.

/// A parsed JSON value. Object members keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64, like browsers do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First member with `key`, for object values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or("bad surrogate pair")?
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err("lone low surrogate".into());
                        } else {
                            char::from_u32(code).ok_or("bad unicode escape")?
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => return Err("raw control char in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8 lead byte".into()),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated utf-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or("truncated \\u escape")?;
            let v = (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
            code = code * 16 + v;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("unparseable number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,{"b":"x"},null],"c":{"d":false}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(false)));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"a",
            "[1]]",
            "{\"a\":1} x",
            "'a'",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accepts_utf8_passthrough() {
        assert_eq!(parse("\"héllo→\"").unwrap(), Json::Str("héllo→".into()));
    }
}
