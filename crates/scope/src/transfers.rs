//! Per-transfer lifecycle tracking: the state machine behind
//! `owan-cli transfers`.
//!
//! Each transfer moves submitted → admitted → active →
//! completed | expired | deadline-missed. The tracker is fed one
//! [`TransferSlotRow`] per active transfer per slot by the sim/chaos
//! loops and accumulates, per transfer: delivered Gb attributed per
//! path, queue positions, preemption count (had a rate, then lost it
//! while unfinished), remaining deadline slack, and a full per-slot
//! trace for `--trace ID`.

use owan_core::TransferRequest;
use std::collections::BTreeMap;

/// Final (or current) state of a tracked transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferState {
    /// Submitted but its arrival time never passed during the run.
    Submitted,
    /// Admitted (arrival passed) but never allocated any rate.
    Admitted,
    /// Allocated rate in some slot and still unfinished.
    Active,
    /// Finished, and met its deadline if it had one.
    Completed,
    /// Finished or unfinished past its deadline.
    DeadlineMissed,
    /// Unfinished when the run ended (no deadline violated).
    Expired,
}

impl TransferState {
    /// Stable lowercase label (used in tables and dumps).
    pub fn label(&self) -> &'static str {
        match self {
            TransferState::Submitted => "submitted",
            TransferState::Admitted => "admitted",
            TransferState::Active => "active",
            TransferState::Completed => "completed",
            TransferState::DeadlineMissed => "deadline-missed",
            TransferState::Expired => "expired",
        }
    }
}

/// One transfer's observation for one slot, supplied by the slot loop.
#[derive(Debug, Clone)]
pub struct TransferSlotRow {
    /// Transfer id.
    pub id: usize,
    /// Rate allocated this slot, Gbps (0 if queued).
    pub rate_gbps: f64,
    /// Volume delivered this slot, Gb.
    pub delivered_gbits: f64,
    /// Remaining volume after this slot's delivery, Gb.
    pub remaining_gbits: f64,
    /// Position in the zero-rate queue this slot (`None` if served).
    pub queue_pos: Option<usize>,
    /// Completion time if the transfer finished this slot.
    pub completion_s: Option<f64>,
    /// Per-path delivered share this slot: `(path label, Gb)`.
    pub paths: Vec<(String, f64)>,
}

/// Per-slot trace entry kept for `--trace ID`.
#[derive(Debug, Clone)]
pub struct SlotTrace {
    /// Slot index.
    pub slot: usize,
    /// Slot start, seconds.
    pub now_s: f64,
    /// Allocated rate, Gbps.
    pub rate_gbps: f64,
    /// Delivered this slot, Gb.
    pub delivered_gbits: f64,
    /// Remaining after the slot, Gb.
    pub remaining_gbits: f64,
    /// Queue position (`None` if served).
    pub queue_pos: Option<usize>,
    /// Deadline slack at slot end: time to deadline minus time to finish
    /// at the current rate (`None` without a deadline or a rate).
    pub slack_s: Option<f64>,
    /// Paths used this slot with delivered share.
    pub paths: Vec<(String, f64)>,
}

/// Everything tracked about one transfer.
#[derive(Debug, Clone)]
pub struct TrackedTransfer {
    /// Transfer id (index into the request list).
    pub id: usize,
    /// Ingress site.
    pub src: usize,
    /// Egress site.
    pub dst: usize,
    /// Requested volume, Gb.
    pub volume_gbits: f64,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// Deadline, if any.
    pub deadline_s: Option<f64>,
    /// First slot the transfer was admitted (arrival passed).
    pub admitted_slot: Option<usize>,
    /// First slot the transfer was allocated rate.
    pub first_served_slot: Option<usize>,
    /// Completion time, if it finished.
    pub completion_s: Option<f64>,
    /// Total delivered across slots, Gb.
    pub delivered_gbits: f64,
    /// Remaining at the last observation, Gb.
    pub remaining_gbits: f64,
    /// Times the transfer went served → queued while unfinished.
    pub preemptions: u32,
    /// Slots in which the transfer was allocated rate.
    pub slots_served: u32,
    /// Slots spent queued (admitted, zero rate).
    pub slots_queued: u32,
    /// Delivered Gb per path label, across the run.
    pub delivered_by_path: BTreeMap<String, f64>,
    /// Last observed deadline slack.
    pub last_slack_s: Option<f64>,
    /// Full per-slot history.
    pub history: Vec<SlotTrace>,
    had_rate_last_slot: bool,
}

impl TrackedTransfer {
    fn new(id: usize, req: &TransferRequest) -> Self {
        TrackedTransfer {
            id,
            src: req.src,
            dst: req.dst,
            volume_gbits: req.volume_gbits,
            arrival_s: req.arrival_s,
            deadline_s: req.deadline_s,
            admitted_slot: None,
            first_served_slot: None,
            completion_s: None,
            delivered_gbits: 0.0,
            remaining_gbits: req.volume_gbits,
            preemptions: 0,
            slots_served: 0,
            slots_queued: 0,
            delivered_by_path: BTreeMap::new(),
            last_slack_s: None,
            history: Vec::new(),
            had_rate_last_slot: false,
        }
    }

    /// Final state given the run ended at `end_s`.
    pub fn state(&self, end_s: f64) -> TransferState {
        match self.completion_s {
            Some(done) => match self.deadline_s {
                Some(deadline) if done > deadline + 1e-9 => TransferState::DeadlineMissed,
                _ => TransferState::Completed,
            },
            None => {
                if let Some(deadline) = self.deadline_s {
                    if deadline < end_s {
                        return TransferState::DeadlineMissed;
                    }
                }
                match (self.admitted_slot, self.first_served_slot) {
                    (None, _) => TransferState::Submitted,
                    (Some(_), None) => TransferState::Admitted,
                    (Some(_), Some(_)) => {
                        if self.remaining_gbits > 1e-9 {
                            TransferState::Expired
                        } else {
                            TransferState::Active
                        }
                    }
                }
            }
        }
    }
}

/// Tracks every transfer of a run (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TransferTracker {
    transfers: Vec<TrackedTransfer>,
    end_s: f64,
}

impl TransferTracker {
    /// Registers the run's request list; call once before the slot loop.
    pub fn begin_run(&mut self, requests: &[TransferRequest]) {
        self.transfers = requests
            .iter()
            .enumerate()
            .map(|(id, r)| TrackedTransfer::new(id, r))
            .collect();
        self.end_s = 0.0;
    }

    /// Feeds one slot of observations. `rows` covers every *active*
    /// transfer this slot (served or queued); absent transfers are either
    /// not yet admitted or already finished.
    pub fn observe_slot(
        &mut self,
        slot: usize,
        now_s: f64,
        slot_len_s: f64,
        rows: &[TransferSlotRow],
    ) {
        self.end_s = self.end_s.max(now_s + slot_len_s);
        for row in rows {
            let Some(t) = self.transfers.get_mut(row.id) else {
                continue;
            };
            t.admitted_slot.get_or_insert(slot);
            let served = row.rate_gbps > 1e-9;
            if served {
                t.first_served_slot.get_or_insert(slot);
                t.slots_served += 1;
            } else {
                t.slots_queued += 1;
                if t.had_rate_last_slot && row.remaining_gbits > 1e-9 {
                    t.preemptions += 1;
                }
            }
            t.had_rate_last_slot = served;
            t.delivered_gbits += row.delivered_gbits;
            t.remaining_gbits = row.remaining_gbits;
            if row.completion_s.is_some() {
                t.completion_s = row.completion_s;
            }
            for (path, gb) in &row.paths {
                *t.delivered_by_path.entry(path.clone()).or_insert(0.0) += gb;
            }
            let slack_s = match (t.deadline_s, served) {
                (Some(deadline), true) => {
                    let finish = row
                        .completion_s
                        .unwrap_or(now_s + slot_len_s + row.remaining_gbits / row.rate_gbps);
                    Some(deadline - finish)
                }
                (Some(deadline), false) => {
                    // Queued: slack is simply time left to the deadline.
                    Some(deadline - (now_s + slot_len_s))
                }
                (None, _) => None,
            };
            t.last_slack_s = slack_s;
            t.history.push(SlotTrace {
                slot,
                now_s,
                rate_gbps: row.rate_gbps,
                delivered_gbits: row.delivered_gbits,
                remaining_gbits: row.remaining_gbits,
                queue_pos: row.queue_pos,
                slack_s,
                paths: row.paths.clone(),
            });
        }
    }

    /// All tracked transfers, by id.
    pub fn transfers(&self) -> &[TrackedTransfer] {
        &self.transfers
    }

    /// One transfer, if tracked.
    pub fn transfer(&self, id: usize) -> Option<&TrackedTransfer> {
        self.transfers.get(id)
    }

    /// Simulation end time observed so far.
    pub fn end_s(&self) -> f64 {
        self.end_s
    }

    /// Total delivered across every transfer, Gb.
    pub fn total_delivered_gbits(&self) -> f64 {
        self.transfers.iter().map(|t| t.delivered_gbits).sum()
    }

    /// Renders the `owan-cli transfers` table: one row per transfer plus
    /// a totals line that cross-checks per-transfer delivered volume.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<15}  {:>4}  {:>4}  {:>10}  {:>10}  {:>9}  {:>10}  {:>9}  {:>5}  {:>5}  {:>6}\n",
            "id", "state", "src", "dst", "volume_gb", "delivered", "arrival",
            "completed", "slack_s", "slots", "queue", "preempt"
        ));
        for t in &self.transfers {
            let state = t.state(self.end_s);
            let completed = t
                .completion_s
                .map_or("-".to_string(), |c| format!("{c:.1}"));
            let slack = match (state, t.deadline_s, t.completion_s) {
                (_, Some(d), Some(c)) => format!("{:.1}", d - c),
                (_, Some(_), None) => t
                    .last_slack_s
                    .map_or("-".to_string(), |s| format!("{s:.1}")),
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:>4}  {:<15}  {:>4}  {:>4}  {:>10.2}  {:>10.2}  {:>9.1}  {:>10}  {:>9}  {:>5}  {:>5}  {:>6}\n",
                t.id,
                state.label(),
                t.src,
                t.dst,
                t.volume_gbits,
                t.delivered_gbits,
                t.arrival_s,
                completed,
                slack,
                t.slots_served,
                t.slots_queued,
                t.preemptions,
            ));
        }
        let volume: f64 = self.transfers.iter().map(|t| t.volume_gbits).sum();
        let delivered = self.total_delivered_gbits();
        let remaining: f64 = self.transfers.iter().map(|t| t.remaining_gbits).sum();
        out.push_str(&format!(
            "total: {} transfers, {volume:.2} Gb requested, {delivered:.2} Gb delivered, {remaining:.2} Gb remaining\n",
            self.transfers.len(),
        ));
        out
    }

    /// Renders the per-slot trace of one transfer (`--trace ID`).
    pub fn render_trace(&self, id: usize) -> Option<String> {
        let t = self.transfer(id)?;
        let mut out = String::new();
        out.push_str(&format!(
            "transfer {}: {} -> {}, {:.2} Gb, arrival {:.1}s{}\n",
            t.id,
            t.src,
            t.dst,
            t.volume_gbits,
            t.arrival_s,
            t.deadline_s
                .map_or(String::new(), |d| format!(", deadline {d:.1}s")),
        ));
        out.push_str(&format!("state: {}\n", t.state(self.end_s).label()));
        out.push_str(&format!(
            "{:>5}  {:>9}  {:>9}  {:>10}  {:>10}  {:>6}  {:>9}  paths\n",
            "slot", "start_s", "rate_gbps", "delivered", "remaining", "queue", "slack_s"
        ));
        for h in &t.history {
            let queue = h.queue_pos.map_or("-".to_string(), |q| q.to_string());
            let slack = h.slack_s.map_or("-".to_string(), |s| format!("{s:.1}"));
            let paths = if h.paths.is_empty() {
                "-".to_string()
            } else {
                h.paths
                    .iter()
                    .map(|(p, gb)| format!("{p}:{gb:.2}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            out.push_str(&format!(
                "{:>5}  {:>9.1}  {:>9.3}  {:>10.3}  {:>10.3}  {:>6}  {:>9}  {}\n",
                h.slot,
                h.now_s,
                h.rate_gbps,
                h.delivered_gbits,
                h.remaining_gbits,
                queue,
                slack,
                paths,
            ));
        }
        if !t.delivered_by_path.is_empty() {
            out.push_str("delivered by path:\n");
            for (path, gb) in &t.delivered_by_path {
                out.push_str(&format!("  {path}: {gb:.3} Gb\n"));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(volume: f64, arrival: f64, deadline: Option<f64>) -> TransferRequest {
        TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: volume,
            arrival_s: arrival,
            deadline_s: deadline,
        }
    }

    fn row(id: usize, rate: f64, delivered: f64, remaining: f64) -> TransferSlotRow {
        TransferSlotRow {
            id,
            rate_gbps: rate,
            delivered_gbits: delivered,
            remaining_gbits: remaining,
            queue_pos: if rate > 0.0 { None } else { Some(0) },
            completion_s: None,
            paths: vec![("0-1".into(), delivered)],
        }
    }

    #[test]
    fn lifecycle_reaches_completed() {
        let mut tr = TransferTracker::default();
        tr.begin_run(&[req(100.0, 0.0, None)]);
        tr.observe_slot(0, 0.0, 100.0, &[row(0, 0.5, 50.0, 50.0)]);
        let mut done = row(0, 0.5, 50.0, 0.0);
        done.completion_s = Some(200.0);
        tr.observe_slot(1, 100.0, 100.0, &[done]);
        let t = tr.transfer(0).unwrap();
        assert_eq!(t.state(tr.end_s()), TransferState::Completed);
        assert!((t.delivered_gbits - 100.0).abs() < 1e-9);
        assert_eq!(t.slots_served, 2);
        assert_eq!(t.preemptions, 0);
        assert!((t.delivered_by_path["0-1"] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn preemption_counts_served_then_queued() {
        let mut tr = TransferTracker::default();
        tr.begin_run(&[req(100.0, 0.0, None)]);
        tr.observe_slot(0, 0.0, 100.0, &[row(0, 0.5, 50.0, 50.0)]);
        tr.observe_slot(1, 100.0, 100.0, &[row(0, 0.0, 0.0, 50.0)]);
        tr.observe_slot(2, 200.0, 100.0, &[row(0, 0.5, 50.0, 0.1)]);
        tr.observe_slot(3, 300.0, 100.0, &[row(0, 0.0, 0.0, 0.1)]);
        let t = tr.transfer(0).unwrap();
        assert_eq!(t.preemptions, 2);
        assert_eq!(t.slots_queued, 2);
    }

    #[test]
    fn never_admitted_is_submitted_and_unserved_is_admitted() {
        let mut tr = TransferTracker::default();
        tr.begin_run(&[req(10.0, 1e9, None), req(10.0, 0.0, None)]);
        tr.observe_slot(0, 0.0, 100.0, &[row(1, 0.0, 0.0, 10.0)]);
        assert_eq!(
            tr.transfer(0).unwrap().state(tr.end_s()),
            TransferState::Submitted
        );
        assert_eq!(
            tr.transfer(1).unwrap().state(tr.end_s()),
            TransferState::Admitted
        );
    }

    #[test]
    fn deadline_missed_when_run_passes_deadline() {
        let mut tr = TransferTracker::default();
        tr.begin_run(&[req(100.0, 0.0, Some(150.0))]);
        tr.observe_slot(0, 0.0, 100.0, &[row(0, 0.1, 10.0, 90.0)]);
        tr.observe_slot(1, 100.0, 100.0, &[row(0, 0.1, 10.0, 80.0)]);
        assert_eq!(
            tr.transfer(0).unwrap().state(tr.end_s()),
            TransferState::DeadlineMissed
        );
    }

    #[test]
    fn table_and_trace_render() {
        let mut tr = TransferTracker::default();
        tr.begin_run(&[req(100.0, 0.0, Some(500.0))]);
        let mut done = row(0, 1.0, 100.0, 0.0);
        done.completion_s = Some(100.0);
        tr.observe_slot(0, 0.0, 100.0, &[done]);
        let table = tr.render_table();
        assert!(table.contains("completed"));
        assert!(table.contains("total: 1 transfers"));
        let trace = tr.render_trace(0).unwrap();
        assert!(trace.contains("transfer 0"));
        assert!(trace.contains("0-1:100.00"));
        assert!(tr.render_trace(9).is_none());
    }
}
