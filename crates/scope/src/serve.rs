//! Std-only live metrics endpoint.
//!
//! [`MetricsServer::spawn`] binds a `TcpListener` and serves:
//!
//! * `GET /metrics` — the recorder snapshot in Prometheus text format;
//! * `GET /healthz` — `ok`;
//! * anything else — 404.
//!
//! One request per connection, HTTP/1.0-style (`Connection: close`), no
//! keep-alive — exactly enough for a scrape loop or `curl` while a long
//! sim runs on the main thread. Shutdown sets a flag and self-connects
//! to unblock `accept`.

use crate::prom::render_prometheus;
use owan_obs::Recorder;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics endpoint (see module docs).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// serves `recorder` snapshots until [`MetricsServer::shutdown`] or
    /// drop.
    pub fn spawn(addr: &str, recorder: Recorder) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("owan-metrics".into())
            .spawn(move || serve_loop(listener, recorder, flag))?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

fn serve_loop(listener: TcpListener, recorder: Recorder, shutdown: Arc<AtomicBool>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = handle_connection(stream, &recorder);
    }
}

fn handle_connection(mut stream: TcpStream, recorder: &Recorder) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the header terminator (or EOF/4 KiB); body is ignored.
    let mut raw = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        raw.extend_from_slice(&buf[..n]);
        if raw.windows(4).any(|w| w == b"\r\n\r\n") || raw.len() >= 4096 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&raw);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&recorder.snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let rec = Recorder::enabled();
        rec.counter("chaos.crashes").add(2);
        let server = MetricsServer::spawn("127.0.0.1:0", rec.clone()).unwrap();
        let addr = server.addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("owan_chaos_crashes 2"));

        // Live: counters move between scrapes.
        rec.counter("chaos.crashes").add(3);
        assert!(get(addr, "/metrics").contains("owan_chaos_crashes 5"));

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = MetricsServer::spawn("127.0.0.1:0", Recorder::disabled()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the port stops answering.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || get_safe(addr).is_none()
        );
    }

    fn get_safe(addr: SocketAddr) -> Option<String> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .ok()?;
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").ok()?;
        let mut out = String::new();
        stream.read_to_string(&mut out).ok()?;
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}
