//! Text rendering for `owan-cli explain` and `owan-cli slo`.
//!
//! Both renderers follow the CLI's `key,value` line convention so CI
//! jobs can grep them. `render_explain` ends with a machine-checkable
//! `partition,ok` (or `partition,BROKEN`) footer asserting that the
//! bucket table sums to the transfer's in-system wall time.

use crate::{TransferAttribution, WhyReport};

/// Relative tolerance for the partition footer.
const PARTITION_TOL: f64 = 1e-6;

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "none".to_string(), |x| format!("{x:.3}"))
}

/// Renders the attribution table for one transfer, with the fault
/// instants and hottest prof regions that overlap its lifetime.
/// Returns `None` when the report has no such transfer id.
pub fn render_explain(report: &WhyReport, id: usize) -> Option<String> {
    let attr = report.transfer(id)?;
    let mut out = String::new();
    render_attribution(&mut out, attr);

    // Fault instants inside the transfer's in-system window.
    let end_s = attr.completion_s.unwrap_or(report.run_end_s);
    let mut fault_lines = 0;
    for slot in &report.timeline.slots {
        let slot_end = slot.now_s + slot.slot_len_s;
        if slot_end <= attr.arrival_s || slot.now_s >= end_s {
            continue;
        }
        for fault in &slot.faults {
            out.push_str(&format!("fault,{},{}\n", fault.slot, fault.label));
            fault_lines += 1;
        }
    }
    if fault_lines == 0 {
        out.push_str("fault,none\n");
    }
    for region in &report.timeline.prof_regions {
        out.push_str(&format!(
            "prof_region,{},{:.1},{:.4}\n",
            region.path,
            region.self_ns as f64 / 1e6,
            region.share
        ));
    }

    let sum = attr.buckets.sum_s();
    let ok = (sum - attr.wall_s).abs() <= PARTITION_TOL * attr.wall_s.max(1.0);
    out.push_str(&format!("partition,{}\n", if ok { "ok" } else { "BROKEN" }));
    Some(out)
}

fn render_attribution(out: &mut String, attr: &TransferAttribution) {
    out.push_str(&format!("transfer,{}\n", attr.id));
    out.push_str(&format!("arrival_s,{:.3}\n", attr.arrival_s));
    out.push_str(&format!("completion_s,{}\n", fmt_opt(attr.completion_s)));
    out.push_str(&format!("deadline_s,{}\n", fmt_opt(attr.deadline_s)));
    out.push_str(&format!("slack_s,{}\n", fmt_opt(attr.slack_s)));
    out.push_str(&format!("wall_s,{:.3}\n", attr.wall_s));
    out.push_str(&format!("volume_gbits,{:.3}\n", attr.volume_gbits));
    out.push_str(&format!("delivered_gbits,{:.3}\n", attr.delivered_gbits));
    let wall = attr.wall_s.max(f64::MIN_POSITIVE);
    for (name, seconds) in attr.buckets.named() {
        out.push_str(&format!(
            "bucket,{name},{seconds:.3},{:.4}\n",
            seconds / wall
        ));
    }
}

/// Renders the SLO monitor state as `key,value` lines.
pub fn render_slo(report: &WhyReport) -> String {
    let slo = &report.slo;
    let mut out = String::new();
    out.push_str(&format!("slots,{}\n", report.slots));
    out.push_str(&format!("deadline_met,{}\n", slo.deadline_met));
    out.push_str(&format!("deadline_missed,{}\n", slo.deadline_missed));
    out.push_str(&format!("burn_rate,{:.4}\n", slo.burn_rate));
    out.push_str(&format!("burn_window_slots,{}\n", slo.burn_window_slots));
    out.push_str(&format!("burn_threshold,{}\n", fmt_opt(slo.burn_threshold)));
    out.push_str(&format!("plan_p99_ms,{:.4}\n", slo.plan_p99_ms));
    out.push_str(&format!(
        "plan_p99_threshold_ms,{}\n",
        fmt_opt(slo.plan_p99_threshold_ms)
    ));
    out.push_str(&format!("deficit_gbits,{:.3}\n", slo.deficit_gbits));
    out.push_str(&format!(
        "deficit_threshold_gbits,{}\n",
        fmt_opt(slo.deficit_threshold_gbits)
    ));
    out.push_str(&format!(
        "blackhole_gbits,{:.3}\n",
        report.total_blackhole_gbits
    ));
    match &slo.tripped {
        Some((reason, slot)) => out.push_str(&format!("tripped,{reason},{slot}\n")),
        None => out.push_str("tripped,none\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buckets, SloReport, Timeline, TransferAttribution, WhyReport};

    fn report_with(transfers: Vec<TransferAttribution>) -> WhyReport {
        WhyReport {
            transfers,
            total_blackhole_gbits: 0.0,
            run_end_s: 600.0,
            slots: 2,
            slo: SloReport {
                deadline_met: 1,
                deadline_missed: 0,
                burn_rate: 0.0,
                burn_window_slots: 8,
                burn_threshold: Some(0.5),
                plan_p99_ms: 0.25,
                plan_p99_threshold_ms: None,
                deficit_gbits: 0.0,
                deficit_threshold_gbits: None,
                tripped: None,
            },
            timeline: Timeline::default(),
        }
    }

    fn attr(id: usize, wall: f64, serving: f64) -> TransferAttribution {
        TransferAttribution {
            id,
            arrival_s: 0.0,
            completion_s: Some(wall),
            deadline_s: Some(wall + 10.0),
            slack_s: Some(10.0),
            wall_s: wall,
            delivered_gbits: 100.0,
            volume_gbits: 100.0,
            buckets: Buckets {
                serving_s: serving,
                stalled_s: wall - serving,
                ..Buckets::default()
            },
            rows: Vec::new(),
        }
    }

    #[test]
    fn explain_reports_partition_ok() {
        let report = report_with(vec![attr(3, 500.0, 400.0)]);
        let text = render_explain(&report, 3).unwrap();
        assert!(text.contains("transfer,3\n"), "{text}");
        assert!(text.contains("bucket,serving,400.000,0.8000"), "{text}");
        assert!(text.contains("fault,none\n"));
        assert!(text.ends_with("partition,ok\n"), "{text}");
        assert!(render_explain(&report, 99).is_none());
    }

    #[test]
    fn explain_flags_broken_partition() {
        let mut bad = attr(0, 500.0, 400.0);
        bad.buckets.stalled_s = 0.0; // buckets now sum to 400 ≠ 500
        let report = report_with(vec![bad]);
        let text = render_explain(&report, 0).unwrap();
        assert!(text.ends_with("partition,BROKEN\n"), "{text}");
    }

    #[test]
    fn slo_report_renders_every_monitor() {
        let report = report_with(Vec::new());
        let text = render_slo(&report);
        for key in [
            "slots,2",
            "deadline_met,1",
            "deadline_missed,0",
            "burn_rate,0.0000",
            "burn_threshold,0.500",
            "plan_p99_ms,0.2500",
            "plan_p99_threshold_ms,none",
            "deficit_gbits,0.000",
            "blackhole_gbits,0.000",
            "tripped,none",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }
}
