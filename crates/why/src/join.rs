//! The cross-stream joiner: one per-slot, per-transfer timeline built
//! from what the three collection tiers already emitted.
//!
//! Inputs and their join keys:
//!
//! * **slot records** (the why recorder's own feed, derived from the
//!   values the slot loop hands `owan-scope`) — primary key: slot index
//!   plus the recorder-clock `[start_ns, end_ns]` window;
//! * **obs events** (`Snapshot::events`, the JSONL ring) — joined by
//!   `ts_ns` falling inside a slot's clock window;
//! * **chaos/attack fault instants** — the deterministic labels the
//!   flight frames carry (`fault fiber_cut 3`, `attack wave`, ...),
//!   already per-slot;
//! * **prof region tree** (`ProfSnapshot`) — run-scoped, joined as
//!   self-time shares (regions are not per-slot; per-slot prof spans
//!   remain in the Chrome trace, which this crate does not re-parse).
//!
//! The result feeds the attribution engine (which only needs the slot
//! records) and the `explain` report (which prints fault instants and
//! the hottest regions next to the bucket table).

use crate::{SlotRecord, TransferInfo, TransferSample};
use owan_obs::Snapshot;
use owan_prof::ProfSnapshot;

/// How many prof regions the timeline retains, hottest-self-time first.
pub const PROF_REGIONS_KEPT: usize = 12;

/// A deterministic fault/attack label pinned to a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInstant {
    /// Slot the fault landed in.
    pub slot: usize,
    /// The flight-frame label, e.g. `fault fiber_cut 3`.
    pub label: String,
}

/// One transfer's appearance in one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinedTransferSlot {
    /// Transfer id.
    pub id: usize,
    /// The slot-loop sample.
    pub sample: TransferSample,
}

/// One slot with every stream's contribution attached.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedSlot {
    /// Slot index.
    pub slot: usize,
    /// Slot start, sim seconds.
    pub now_s: f64,
    /// Slot length, sim seconds.
    pub slot_len_s: f64,
    /// Planning wall time, ns.
    pub plan_ns: u64,
    /// Post-reconfiguration delivery fraction.
    pub transition_scale: f64,
    /// Total allocated throughput, Gbps.
    pub throughput_gbps: f64,
    /// Attack wave active.
    pub attack_active: bool,
    /// Fault/event labels this slot.
    pub faults: Vec<FaultInstant>,
    /// Names of obs events whose timestamp fell in this slot's
    /// processing window.
    pub obs_events: Vec<String>,
    /// Per-transfer samples, allocation order.
    pub transfers: Vec<JoinedTransferSlot>,
}

/// A prof region's share of run wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfRegionShare {
    /// `a;b;c` region path, root first.
    pub path: String,
    /// Completed entries.
    pub calls: u64,
    /// Wall time, children included, ns.
    pub total_ns: u64,
    /// Wall time, children excluded, ns.
    pub self_ns: u64,
    /// `self_ns` as a fraction of the root total (0 when no roots).
    pub share: f64,
}

/// The joined timeline of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Every observed slot, in order.
    pub slots: Vec<JoinedSlot>,
    /// Hottest prof regions by self time (at most
    /// [`PROF_REGIONS_KEPT`]), empty without an attached profiler.
    pub prof_regions: Vec<ProfRegionShare>,
    /// Obs events matched to a slot window.
    pub obs_events_joined: usize,
    /// Obs events outside every slot window (startup, teardown).
    pub obs_events_unmatched: usize,
}

impl Timeline {
    /// Builds the joined timeline. `obs` and `prof` are optional — runs
    /// without those tiers still get the slot/fault view.
    pub fn build(
        _transfers: &[TransferInfo],
        slots: &[SlotRecord],
        obs: Option<&Snapshot>,
        prof: Option<&ProfSnapshot>,
    ) -> Timeline {
        let mut joined: Vec<JoinedSlot> = slots
            .iter()
            .map(|s| JoinedSlot {
                slot: s.slot,
                now_s: s.now_s,
                slot_len_s: s.slot_len_s,
                plan_ns: s.plan_ns,
                transition_scale: s.transition_scale,
                throughput_gbps: s.throughput_gbps,
                attack_active: s.attack_active,
                faults: s
                    .events
                    .iter()
                    .map(|label| FaultInstant {
                        slot: s.slot,
                        label: label.clone(),
                    })
                    .collect(),
                obs_events: Vec::new(),
                transfers: s
                    .samples
                    .iter()
                    .map(|sample| JoinedTransferSlot {
                        id: sample.id,
                        sample: *sample,
                    })
                    .collect(),
            })
            .collect();

        let mut events_joined = 0;
        let mut events_unmatched = 0;
        if let Some(snapshot) = obs {
            for event in &snapshot.events {
                // Slot windows are disjoint and ordered; find the one
                // whose clock window contains the event.
                let hit = slots
                    .binary_search_by(|s| {
                        if event.ts_ns < s.start_ns {
                            std::cmp::Ordering::Greater
                        } else if event.ts_ns > s.end_ns {
                            std::cmp::Ordering::Less
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    .ok();
                match hit {
                    Some(i) => {
                        joined[i].obs_events.push(event.name.clone());
                        events_joined += 1;
                    }
                    None => events_unmatched += 1,
                }
            }
        }

        let mut prof_regions = Vec::new();
        if let Some(snapshot) = prof {
            let root_total = snapshot.root_total_ns();
            let mut by_self: Vec<usize> = (0..snapshot.nodes.len()).collect();
            by_self.sort_by(|&a, &b| {
                snapshot.nodes[b]
                    .self_ns
                    .cmp(&snapshot.nodes[a].self_ns)
                    .then(a.cmp(&b))
            });
            for &i in by_self.iter().take(PROF_REGIONS_KEPT) {
                let node = &snapshot.nodes[i];
                if node.self_ns == 0 {
                    break;
                }
                prof_regions.push(ProfRegionShare {
                    path: snapshot.path(i).join(";"),
                    calls: node.calls,
                    total_ns: node.total_ns,
                    self_ns: node.self_ns,
                    share: if root_total > 0 {
                        node.self_ns as f64 / root_total as f64
                    } else {
                        0.0
                    },
                });
            }
        }

        Timeline {
            slots: joined,
            prof_regions,
            obs_events_joined: events_joined,
            obs_events_unmatched: events_unmatched,
        }
    }

    /// Fault instants across every slot, in slot order.
    pub fn faults(&self) -> impl Iterator<Item = &FaultInstant> {
        self.slots.iter().flat_map(|s| s.faults.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owan_obs::Recorder;
    use owan_prof::Profiler;

    fn record(slot: usize, events: Vec<String>) -> SlotRecord {
        SlotRecord {
            slot,
            now_s: slot as f64 * 300.0,
            slot_len_s: 300.0,
            start_ns: slot as u64 * 1_000_000,
            end_ns: slot as u64 * 1_000_000 + 900_000,
            plan_ns: 50_000,
            transition_scale: 1.0,
            throughput_gbps: 2.0,
            attack_active: false,
            samples: vec![TransferSample {
                id: 0,
                full_rate_gbps: 2.0,
                live_rate_gbps: 2.0,
                delivered_gbits: 600.0,
                remaining_gbits: 1.0,
                completion_s: None,
                queued: false,
            }],
            events,
        }
    }

    #[test]
    fn joins_obs_events_into_slot_windows() {
        let clock = std::sync::Arc::new(owan_obs::ManualClock::new());
        let rec = Recorder::with_clock(clock.clone());
        clock.advance_ns(500_000); // inside slot 0's window [0, 0.9 ms]
        rec.event("inside.slot0", &[]);
        clock.advance_ns(450_000); // 0.95 ms: in the gap between windows
        rec.event("between.slots", &[]);
        let slots = vec![
            record(0, vec!["fault fiber_cut 3".into()]),
            record(1, Vec::new()),
        ];
        let timeline = Timeline::build(&[], &slots, Some(&rec.snapshot()), None);
        assert_eq!(timeline.obs_events_joined, 1);
        assert_eq!(timeline.obs_events_unmatched, 1);
        assert_eq!(
            timeline.slots[0].obs_events,
            vec!["inside.slot0".to_string()]
        );
        let faults: Vec<_> = timeline.faults().collect();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].label, "fault fiber_cut 3");
        assert_eq!(faults[0].slot, 0);
    }

    #[test]
    fn prof_regions_ranked_by_self_time() {
        let clock = std::sync::Arc::new(owan_obs::ManualClock::new());
        let prof = Profiler::with_clock(clock.clone());
        {
            let _outer = prof.region("slot");
            {
                let _inner = prof.region("anneal");
                clock.advance_ns(3_000_000);
            }
            clock.advance_ns(1_000_000);
        }
        let timeline = Timeline::build(&[], &[], None, Some(&prof.snapshot()));
        assert!(!timeline.prof_regions.is_empty());
        assert_eq!(timeline.prof_regions[0].path, "slot;anneal");
        assert!(timeline.prof_regions[0].share > 0.5);
    }
}
