//! `owan-why`: causal attribution, SLO burn-rate monitors, and
//! cross-stream trace analytics — the fourth observability tier.
//!
//! The three collection tiers answer *what* happened (`owan-obs`
//! counters), *in what order* (`owan-scope` slot timelines and flight
//! dumps), and *where the time went* (`owan-prof` region trees). This
//! crate answers *why*: why did transfer 17 miss its deadline, which
//! subsystem ate its slack, and is the run currently burning through its
//! deadline SLO. It adds **no new probes** — every input is a value the
//! slot loops already compute for the lower tiers:
//!
//! * a cross-stream **joiner** ([`Timeline`]) that indexes the scope
//!   tracker's per-transfer lifecycle, the obs recorder's event ring,
//!   the prof region tree, and chaos/attack fault instants into one
//!   per-slot, per-transfer timeline keyed by transfer id and slot;
//! * a per-transfer **attribution engine** ([`attribute`]) that
//!   decomposes each transfer's in-system wall time into named buckets —
//!   queue wait, reconfiguration downtime, rate starvation vs its
//!   max-min fair share, blackhole/fault loss, attack-induced
//!   preemption — proven to partition wall time by a proptest (the same
//!   discipline as the cache-miss taxonomy);
//! * online **SLO monitors** ([`slo`]): deadline-miss burn rate over a
//!   sliding window, p99 slot-planning latency, and delivered-Gb
//!   deficit vs promise, which trip the existing flight-recorder freeze
//!   so dumps are self-explaining;
//! * report rendering for `owan-cli explain <transfer-id>` and
//!   `owan-cli slo`.
//!
//! Like the lower tiers, a [`WhyRecorder`] is an `Option<Arc<...>>`:
//! the disabled default makes every hook an early return, so the slot
//! loops pay nothing when attribution is off.

mod attribution;
mod join;
mod report;
pub mod slo;

pub use attribution::{
    attribute, split_slot, Buckets, SlotBucketRow, SlotSplit, TransferAttribution,
};
pub use join::{FaultInstant, JoinedSlot, JoinedTransferSlot, ProfRegionShare, Timeline};
pub use report::{render_explain, render_slo};
pub use slo::{SloConfig, SloReport};

use owan_core::TransferRequest;
use owan_obs::{telemetry_bundle, Recorder, Snapshot};
use owan_prof::ProfSnapshot;
use std::sync::{Arc, Mutex};

/// Numerical tolerance shared with the slot loops.
pub const EPS: f64 = 1e-9;

/// Configuration for an enabled why recorder.
#[derive(Debug, Clone, Default)]
pub struct WhyConfig {
    /// SLO monitor thresholds and windows.
    pub slo: SloConfig,
}

telemetry_bundle! {
    /// Tier-4's own counters on the shared obs recorder, so the SLO
    /// monitors are themselves observable (and documented in the
    /// DESIGN.md counter table like every other family).
    pub struct WhyTelemetry {
        /// Deadline transfers that completed in time.
        pub deadline_met: counter = "slo.deadline_met",
        /// Deadline transfers whose deadline passed unfinished.
        pub deadline_missed: counter = "slo.deadline_missed",
        /// SLO monitors that crossed their threshold (freezes fired).
        pub trips: counter = "slo.trips",
        /// Latest deadline-miss burn rate over the sliding window.
        pub burn_gauge: gauge = "slo.burn_rate",
    }
}

/// What one transfer did during one slot — values the slot loop already
/// computed for delivery and the scope rows, passed through verbatim.
///
/// `full_rate_gbps` is the rate the plan allocated; `live_rate_gbps` is
/// what survived blackholes (equal in fault-free runs). The chaos
/// runner's booked lost-Gb figure is reproduced **bit-exactly** from
/// these two plus the transition scale, which is what the
/// attribution-under-chaos test pins down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSample {
    /// Transfer id (index into the request list).
    pub id: usize,
    /// Rate the slot's (achieved) plan allocated, Gbps.
    pub full_rate_gbps: f64,
    /// Allocated rate surviving undetected cuts, Gbps.
    pub live_rate_gbps: f64,
    /// Volume delivered this slot, Gb.
    pub delivered_gbits: f64,
    /// Remaining volume after the slot, Gb.
    pub remaining_gbits: f64,
    /// Completion instant if the transfer has finished (this slot or
    /// earlier), absolute seconds.
    pub completion_s: Option<f64>,
    /// True when the transfer was active but received no allocation.
    pub queued: bool,
}

/// Everything the slot loop tells the why recorder once per slot.
#[derive(Debug, Clone, Copy)]
pub struct WhySlotObservation<'a> {
    /// Slot index.
    pub slot: usize,
    /// Slot start, sim seconds.
    pub now_s: f64,
    /// Slot length, sim seconds.
    pub slot_len_s: f64,
    /// Recorder-clock ns at slot-processing start (joins obs events).
    pub start_ns: u64,
    /// Recorder-clock ns at slot-processing end.
    pub end_ns: u64,
    /// Wall time of the engine's `plan_slot` call, ns (p99 SLO input).
    pub plan_ns: u64,
    /// Fraction of the slot delivering after the reconfiguration window
    /// (`1.0` when transitions are free, as in the idealized simulator).
    pub transition_scale: f64,
    /// Total allocated throughput, Gbps (fair-share reference).
    pub throughput_gbps: f64,
    /// True when an attack wave injected traffic this slot.
    pub attack_active: bool,
    /// Per-transfer samples, **in plan-allocation order** (queued
    /// transfers appended after) — the order the chaos runner books
    /// losses in, which keeps the Gb ledger bit-exact.
    pub samples: &'a [TransferSample],
    /// Deterministic fault/event labels for this slot (the same strings
    /// the flight frames carry).
    pub events: &'a [String],
}

/// Static facts about one transfer, taken from the request list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferInfo {
    /// Transfer id.
    pub id: usize,
    /// Total volume, Gb.
    pub volume_gbits: f64,
    /// Arrival time, absolute seconds.
    pub arrival_s: f64,
    /// Deadline, if any, absolute seconds.
    pub deadline_s: Option<f64>,
}

/// One retained slot of the run — the unit the attribution engine and
/// the joiner consume. Public so property tests can synthesize feeds
/// without driving a whole simulation.
#[derive(Debug, Clone)]
pub struct SlotRecord {
    /// Slot index.
    pub slot: usize,
    /// Slot start, sim seconds.
    pub now_s: f64,
    /// Slot length, sim seconds.
    pub slot_len_s: f64,
    /// Recorder-clock ns bounds of the slot's processing.
    pub start_ns: u64,
    /// Recorder-clock ns at slot-processing end.
    pub end_ns: u64,
    /// Planning wall time, ns.
    pub plan_ns: u64,
    /// Post-reconfiguration delivery fraction in `[0, 1]`.
    pub transition_scale: f64,
    /// Total allocated throughput, Gbps.
    pub throughput_gbps: f64,
    /// Attack wave active this slot.
    pub attack_active: bool,
    /// Per-transfer samples in allocation order.
    pub samples: Vec<TransferSample>,
    /// Fault/event labels.
    pub events: Vec<String>,
}

#[derive(Debug, Default)]
struct WhyState {
    transfers: Vec<TransferInfo>,
    slots: Vec<SlotRecord>,
    slo: slo::SloState,
    tripped: Option<(&'static str, usize)>,
    obs: Option<Snapshot>,
    prof: Option<ProfSnapshot>,
}

#[derive(Debug)]
struct WhyInner {
    config: WhyConfig,
    telem: WhyTelemetry,
    state: Mutex<WhyState>,
}

/// Handle to the tier-4 collector (see crate docs). Cloning shares the
/// underlying state; the disabled default is inert.
#[derive(Debug, Clone, Default)]
pub struct WhyRecorder {
    inner: Option<Arc<WhyInner>>,
}

impl WhyRecorder {
    /// The inert recorder: every method returns immediately.
    pub fn disabled() -> Self {
        WhyRecorder::default()
    }

    /// A collecting recorder. `recorder` hosts tier-4's own counters
    /// (`slo.*`); pass a disabled one to skip them.
    pub fn enabled(config: WhyConfig, recorder: &Recorder) -> Self {
        WhyRecorder {
            inner: Some(Arc::new(WhyInner {
                telem: WhyTelemetry::new(recorder),
                config,
                state: Mutex::new(WhyState::default()),
            })),
        }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, WhyState>> {
        let inner = self.inner.as_ref()?;
        Some(inner.state.lock().expect("why state poisoned"))
    }

    /// Registers the run's request list and clears prior run state.
    pub fn begin_run(&self, requests: &[TransferRequest]) {
        let Some(mut state) = self.lock() else {
            return;
        };
        *state = WhyState::default();
        state.transfers = requests
            .iter()
            .enumerate()
            .map(|(id, r)| TransferInfo {
                id,
                volume_gbits: r.volume_gbits,
                arrival_s: r.arrival_s,
                deadline_s: r.deadline_s,
            })
            .collect();
        let window = self
            .inner
            .as_ref()
            .map(|i| i.config.slo.clone())
            .unwrap_or_default();
        state.slo = slo::SloState::new(window, state.transfers.len());
    }

    /// Feeds one slot: retains the record for attribution and advances
    /// the online SLO monitors. Returns the anomaly reason the first
    /// time a monitor trips (`slo.deadline_burn`, `slo.plan_p99`,
    /// `slo.deficit`) — the slot loop forwards it to
    /// `ScopeRecorder::anomaly` so the existing flight-recorder freeze
    /// fires with a self-explaining reason.
    pub fn observe_slot(&self, obs: &WhySlotObservation<'_>) -> Option<&'static str> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.state.lock().expect("why state poisoned");
        state.slots.push(SlotRecord {
            slot: obs.slot,
            now_s: obs.now_s,
            slot_len_s: obs.slot_len_s,
            start_ns: obs.start_ns,
            end_ns: obs.end_ns,
            plan_ns: obs.plan_ns,
            transition_scale: obs.transition_scale,
            throughput_gbps: obs.throughput_gbps,
            attack_active: obs.attack_active,
            samples: obs.samples.to_vec(),
            events: obs.events.to_vec(),
        });
        let transfers = std::mem::take(&mut state.transfers);
        let trip = state.slo.observe_slot(obs, &transfers, &inner.telem);
        state.transfers = transfers;
        if let Some(reason) = trip {
            if state.tripped.is_none() {
                state.tripped = Some((reason, obs.slot));
                inner.telem.trips.incr();
                return Some(reason);
            }
        }
        None
    }

    /// Joins the obs recorder's final snapshot (event ring, counters)
    /// into the timeline. Call once after the run.
    pub fn attach_obs(&self, snapshot: &Snapshot) {
        if let Some(mut state) = self.lock() {
            state.obs = Some(snapshot.clone());
        }
    }

    /// Joins the tier-3 profiler's region tree into the timeline.
    pub fn attach_prof(&self, snapshot: &ProfSnapshot) {
        if let Some(mut state) = self.lock() {
            state.prof = Some(snapshot.clone());
        }
    }

    /// The first tripped SLO monitor, if any: `(reason, slot)`.
    pub fn tripped(&self) -> Option<(&'static str, usize)> {
        self.lock()?.tripped
    }

    /// Joins every attached stream and runs the attribution engine.
    /// `None` when disabled.
    pub fn report(&self) -> Option<WhyReport> {
        let inner = self.inner.as_ref()?;
        let state = inner.state.lock().expect("why state poisoned");
        let run_end_s = state.slots.last().map_or(0.0, |s| s.now_s + s.slot_len_s);
        let transfers = attribute(&state.transfers, &state.slots, run_end_s);
        // The Gb ledger replicates the chaos runner's accumulation
        // order exactly (slot-major, allocation order, same EPS guard)
        // so it compares bit-for-bit against `ChaosStats`.
        let mut total_blackhole_gbits = 0.0;
        for slot in &state.slots {
            for s in &slot.samples {
                let lost = (s.full_rate_gbps - s.live_rate_gbps).max(0.0)
                    * slot.transition_scale
                    * slot.slot_len_s;
                if lost > EPS {
                    total_blackhole_gbits += lost;
                }
            }
        }
        let timeline = Timeline::build(
            &state.transfers,
            &state.slots,
            state.obs.as_ref(),
            state.prof.as_ref(),
        );
        Some(WhyReport {
            transfers,
            total_blackhole_gbits,
            run_end_s,
            slots: state.slots.len(),
            slo: state.slo.report(state.tripped),
            timeline,
        })
    }
}

/// The joined, attributed view of one run.
#[derive(Debug, Clone)]
pub struct WhyReport {
    /// Per-transfer attributions, ordered by id.
    pub transfers: Vec<TransferAttribution>,
    /// Total Gb lost to blackholes, accumulated in the chaos runner's
    /// booking order (bit-exact against `ChaosStats::blackhole_gbits`).
    pub total_blackhole_gbits: f64,
    /// End of the last observed slot, absolute seconds.
    pub run_end_s: f64,
    /// Observed slots.
    pub slots: usize,
    /// Final SLO monitor state.
    pub slo: SloReport,
    /// The cross-stream timeline the attributions were computed from.
    pub timeline: Timeline,
}

impl WhyReport {
    /// The attribution for one transfer id.
    pub fn transfer(&self, id: usize) -> Option<&TransferAttribution> {
        self.transfers.iter().find(|t| t.id == id)
    }

    /// The transfer with the worst deadline slack (most-negative first;
    /// transfers without deadlines rank by longest in-system wall time
    /// and only when no deadline transfer exists).
    pub fn worst_slack(&self) -> Option<&TransferAttribution> {
        let with_deadline = self
            .transfers
            .iter()
            .filter(|t| t.slack_s.is_some())
            .min_by(|a, b| {
                a.slack_s
                    .unwrap_or(f64::INFINITY)
                    .partial_cmp(&b.slack_s.unwrap_or(f64::INFINITY))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        with_deadline.or_else(|| {
            self.transfers.iter().max_by(|a, b| {
                a.wall_s
                    .partial_cmp(&b.wall_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(volume: f64, arrival: f64, deadline: Option<f64>) -> TransferRequest {
        TransferRequest {
            src: 0,
            dst: 1,
            volume_gbits: volume,
            arrival_s: arrival,
            deadline_s: deadline,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let why = WhyRecorder::disabled();
        assert!(!why.is_enabled());
        why.begin_run(&[request(100.0, 0.0, None)]);
        let sample = TransferSample {
            id: 0,
            full_rate_gbps: 1.0,
            live_rate_gbps: 1.0,
            delivered_gbits: 300.0,
            remaining_gbits: 0.0,
            completion_s: Some(300.0),
            queued: false,
        };
        let trip = why.observe_slot(&WhySlotObservation {
            slot: 0,
            now_s: 0.0,
            slot_len_s: 300.0,
            start_ns: 0,
            end_ns: 1,
            plan_ns: 1,
            transition_scale: 1.0,
            throughput_gbps: 1.0,
            attack_active: false,
            samples: &[sample],
            events: &[],
        });
        assert!(trip.is_none());
        assert!(why.report().is_none());
        assert!(why.tripped().is_none());
    }

    #[test]
    fn enabled_recorder_attributes_a_simple_run() {
        let rec = Recorder::enabled();
        let why = WhyRecorder::enabled(WhyConfig::default(), &rec);
        why.begin_run(&[request(300.0, 0.0, Some(600.0))]);
        for slot in 0..2 {
            let now = slot as f64 * 300.0;
            let done = slot == 1;
            let sample = TransferSample {
                id: 0,
                full_rate_gbps: 0.5,
                live_rate_gbps: 0.5,
                delivered_gbits: 150.0,
                remaining_gbits: if done { 0.0 } else { 150.0 },
                completion_s: done.then_some(600.0),
                queued: false,
            };
            why.observe_slot(&WhySlotObservation {
                slot,
                now_s: now,
                slot_len_s: 300.0,
                start_ns: slot as u64 * 1000,
                end_ns: slot as u64 * 1000 + 500,
                plan_ns: 100,
                transition_scale: 1.0,
                throughput_gbps: 0.5,
                attack_active: false,
                samples: &[sample],
                events: &[],
            });
        }
        let report = why.report().unwrap();
        assert_eq!(report.slots, 2);
        let t = report.transfer(0).unwrap();
        assert!((t.wall_s - 600.0).abs() < 1e-9);
        assert!((t.buckets.sum_s() - t.wall_s).abs() < 1e-6);
        assert!(t.buckets.serving_s > 0.0);
        assert_eq!(report.worst_slack().unwrap().id, 0);
        // Met its deadline exactly at 600 s.
        assert_eq!(rec.snapshot().counters.get("slo.deadline_met"), Some(&1));
    }
}
