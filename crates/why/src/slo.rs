//! Online SLO monitors: deadline-miss burn rate over a sliding window,
//! p99 slot-planning latency, and delivered-Gb deficit vs promise.
//!
//! The monitors run inside [`crate::WhyRecorder::observe_slot`] and are
//! deliberately cheap (a few deques and one sort per slot over a small
//! window). When a configured threshold trips, the slot loop forwards
//! the returned reason to `ScopeRecorder::anomaly`, so the **existing**
//! flight-recorder freeze fires and the dump's `anomaly,` line explains
//! itself (`slo.deadline_burn`, `slo.plan_p99`, `slo.deficit`). Every
//! threshold defaults to `None`: monitors always *measure*, they only
//! *trip* when the run opts in.

use crate::{TransferInfo, WhySlotObservation, WhyTelemetry, EPS};
use std::collections::VecDeque;

/// Trip reason for the deadline-miss burn-rate monitor.
pub const TRIP_DEADLINE_BURN: &str = "slo.deadline_burn";
/// Trip reason for the p99 slot-planning latency monitor.
pub const TRIP_PLAN_P99: &str = "slo.plan_p99";
/// Trip reason for the delivered-Gb deficit monitor.
pub const TRIP_DEFICIT: &str = "slo.deficit";

/// Monitor thresholds and window sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Slots in the deadline-outcome sliding window.
    pub burn_window_slots: usize,
    /// Trip when `misses / outcomes` in the window reaches this
    /// fraction (`None`: never trip).
    pub burn_threshold: Option<f64>,
    /// Minimum outcomes in the window before the burn rate counts —
    /// keeps one early miss from reading as a 100% burn.
    pub burn_min_outcomes: usize,
    /// Trip when windowed p99 planning latency exceeds this (`None`:
    /// never trip).
    pub plan_p99_ms: Option<f64>,
    /// Slots in the planning-latency window.
    pub plan_window_slots: usize,
    /// Minimum latency observations before the p99 monitor may trip.
    pub plan_min_samples: usize,
    /// Trip when the pro-rata delivery deficit exceeds this many Gb
    /// (`None`: never trip).
    pub deficit_gbits: Option<f64>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            burn_window_slots: 8,
            burn_threshold: None,
            burn_min_outcomes: 3,
            plan_p99_ms: None,
            plan_window_slots: 32,
            plan_min_samples: 8,
            deficit_gbits: None,
        }
    }
}

/// Rolling monitor state. Created per run by the why recorder.
#[derive(Debug, Default)]
pub(crate) struct SloState {
    config: SloConfig,
    /// Per-transfer "outcome already counted" latch.
    decided: Vec<bool>,
    /// Cumulative Gb delivered per transfer.
    delivered: Vec<f64>,
    /// `(met, missed)` per slot, newest last.
    outcomes: VecDeque<(u32, u32)>,
    /// Planning wall times, newest last, ns.
    plan_ns: VecDeque<u64>,
    met: u64,
    missed: u64,
    burn_rate: f64,
    plan_p99_ms: f64,
    deficit_gbits: f64,
}

impl SloState {
    pub(crate) fn new(config: SloConfig, transfers: usize) -> Self {
        SloState {
            config,
            decided: vec![false; transfers],
            delivered: vec![0.0; transfers],
            ..SloState::default()
        }
    }

    /// Advances every monitor by one slot; returns the first tripped
    /// reason, if any.
    pub(crate) fn observe_slot(
        &mut self,
        obs: &WhySlotObservation<'_>,
        transfers: &[TransferInfo],
        telem: &WhyTelemetry,
    ) -> Option<&'static str> {
        let slot_end = obs.now_s + obs.slot_len_s;
        let mut met_now = 0u32;
        let mut missed_now = 0u32;
        // Completions first, so a transfer finishing in the same slot
        // its deadline falls in is judged by its completion instant.
        for sample in obs.samples {
            let Some(done) = sample.completion_s else {
                continue;
            };
            let Some(flag) = self.decided.get_mut(sample.id) else {
                continue;
            };
            if *flag {
                continue;
            }
            *flag = true;
            if let Some(deadline) = transfers.get(sample.id).and_then(|t| t.deadline_s) {
                if done <= deadline + EPS {
                    met_now += 1;
                    telem.deadline_met.incr();
                } else {
                    missed_now += 1;
                    telem.deadline_missed.incr();
                }
            }
        }
        for sample in obs.samples {
            if let Some(d) = self.delivered.get_mut(sample.id) {
                *d += sample.delivered_gbits;
            }
        }
        // Then expiries: any undecided deadline now in the past missed.
        for t in transfers {
            let Some(deadline) = t.deadline_s else {
                continue;
            };
            let Some(flag) = self.decided.get_mut(t.id) else {
                continue;
            };
            if !*flag && deadline <= slot_end + EPS {
                *flag = true;
                missed_now += 1;
                telem.deadline_missed.incr();
            }
        }
        self.met += u64::from(met_now);
        self.missed += u64::from(missed_now);

        self.outcomes.push_back((met_now, missed_now));
        while self.outcomes.len() > self.config.burn_window_slots.max(1) {
            self.outcomes.pop_front();
        }
        let (w_met, w_missed) = self.outcomes.iter().fold((0u64, 0u64), |(m, x), &(a, b)| {
            (m + u64::from(a), x + u64::from(b))
        });
        let w_outcomes = w_met + w_missed;
        self.burn_rate = if w_outcomes as usize >= self.config.burn_min_outcomes.max(1) {
            w_missed as f64 / w_outcomes as f64
        } else {
            0.0
        };
        telem.burn_gauge.set(self.burn_rate);

        self.plan_ns.push_back(obs.plan_ns);
        while self.plan_ns.len() > self.config.plan_window_slots.max(1) {
            self.plan_ns.pop_front();
        }
        self.plan_p99_ms = windowed_p99_ms(&self.plan_ns);

        // Pro-rata promise: each deadline transfer owes `volume` by its
        // deadline, accrued linearly from arrival; deficit is promised
        // minus delivered so far, floored at zero.
        let mut promised = 0.0;
        let mut delivered = 0.0;
        for t in transfers {
            let Some(deadline) = t.deadline_s else {
                continue;
            };
            let span = deadline - t.arrival_s;
            let due_frac = if span <= EPS {
                1.0
            } else {
                ((slot_end - t.arrival_s) / span).clamp(0.0, 1.0)
            };
            if slot_end + EPS < t.arrival_s {
                continue;
            }
            promised += t.volume_gbits * due_frac;
            delivered += self.delivered.get(t.id).copied().unwrap_or(0.0);
        }
        self.deficit_gbits = (promised - delivered).max(0.0);

        if let Some(threshold) = self.config.burn_threshold {
            if self.burn_rate + EPS >= threshold {
                return Some(TRIP_DEADLINE_BURN);
            }
        }
        if let Some(threshold) = self.config.plan_p99_ms {
            if self.plan_ns.len() >= self.config.plan_min_samples.max(1)
                && self.plan_p99_ms > threshold
            {
                return Some(TRIP_PLAN_P99);
            }
        }
        if let Some(threshold) = self.config.deficit_gbits {
            if self.deficit_gbits > threshold {
                return Some(TRIP_DEFICIT);
            }
        }
        None
    }

    pub(crate) fn report(&self, tripped: Option<(&'static str, usize)>) -> SloReport {
        SloReport {
            deadline_met: self.met,
            deadline_missed: self.missed,
            burn_rate: self.burn_rate,
            burn_window_slots: self.config.burn_window_slots,
            burn_threshold: self.config.burn_threshold,
            plan_p99_ms: self.plan_p99_ms,
            plan_p99_threshold_ms: self.config.plan_p99_ms,
            deficit_gbits: self.deficit_gbits,
            deficit_threshold_gbits: self.config.deficit_gbits,
            tripped: tripped.map(|(reason, slot)| (reason.to_string(), slot)),
        }
    }
}

fn windowed_p99_ms(window: &VecDeque<u64>) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = window.iter().copied().collect();
    sorted.sort_unstable();
    // Nearest-rank p99 (matches how the plan-latency gate will be read:
    // "99% of slots planned faster than this").
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1e6
}

/// Final monitor readings for `owan-cli slo` and the why report.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Deadline transfers that finished in time.
    pub deadline_met: u64,
    /// Deadline transfers that did not.
    pub deadline_missed: u64,
    /// Burn rate over the last window (`misses / outcomes`).
    pub burn_rate: f64,
    /// Window size the burn rate was computed over, slots.
    pub burn_window_slots: usize,
    /// Configured burn threshold, if any.
    pub burn_threshold: Option<f64>,
    /// Windowed p99 planning latency, ms.
    pub plan_p99_ms: f64,
    /// Configured p99 threshold, if any.
    pub plan_p99_threshold_ms: Option<f64>,
    /// Final pro-rata delivery deficit, Gb.
    pub deficit_gbits: f64,
    /// Configured deficit threshold, if any.
    pub deficit_threshold_gbits: Option<f64>,
    /// `(reason, slot)` of the first trip, if any monitor fired.
    pub tripped: Option<(String, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransferSample, WhySlotObservation};

    fn info(id: usize, volume: f64, arrival: f64, deadline: Option<f64>) -> TransferInfo {
        TransferInfo {
            id,
            volume_gbits: volume,
            arrival_s: arrival,
            deadline_s: deadline,
        }
    }

    fn obs<'a>(
        slot: usize,
        slot_len: f64,
        plan_ns: u64,
        samples: &'a [TransferSample],
    ) -> WhySlotObservation<'a> {
        WhySlotObservation {
            slot,
            now_s: slot as f64 * slot_len,
            slot_len_s: slot_len,
            start_ns: slot as u64 * 1000,
            end_ns: slot as u64 * 1000 + 500,
            plan_ns,
            transition_scale: 1.0,
            throughput_gbps: 1.0,
            attack_active: false,
            samples,
            events: &[],
        }
    }

    fn done_sample(id: usize, at: f64) -> TransferSample {
        TransferSample {
            id,
            full_rate_gbps: 1.0,
            live_rate_gbps: 1.0,
            delivered_gbits: 10.0,
            remaining_gbits: 0.0,
            completion_s: Some(at),
            queued: false,
        }
    }

    #[test]
    fn burn_rate_trips_after_min_outcomes() {
        let config = SloConfig {
            burn_threshold: Some(0.5),
            burn_min_outcomes: 3,
            ..SloConfig::default()
        };
        let transfers: Vec<TransferInfo> =
            (0..4).map(|id| info(id, 10.0, 0.0, Some(50.0))).collect();
        let mut state = SloState::new(config, transfers.len());
        let telem = WhyTelemetry::disabled();
        // Slot 0 ends at 100 s: all four deadlines (50 s) expire at
        // once, but only one completed in time.
        let samples = [done_sample(0, 40.0)];
        let trip = state.observe_slot(&obs(0, 100.0, 10, &samples), &transfers, &telem);
        assert_eq!(trip, Some(TRIP_DEADLINE_BURN));
        assert_eq!(state.met, 1);
        assert_eq!(state.missed, 3);
        assert!((state.burn_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_miss_below_min_outcomes_does_not_trip() {
        let config = SloConfig {
            burn_threshold: Some(0.5),
            burn_min_outcomes: 3,
            ..SloConfig::default()
        };
        let transfers = vec![info(0, 10.0, 0.0, Some(50.0))];
        let mut state = SloState::new(config, 1);
        let telem = WhyTelemetry::disabled();
        let trip = state.observe_slot(&obs(0, 100.0, 10, &[]), &transfers, &telem);
        assert_eq!(trip, None);
        assert_eq!(state.missed, 1);
        assert_eq!(state.burn_rate, 0.0); // below min outcomes
    }

    #[test]
    fn outcomes_age_out_of_the_window() {
        let config = SloConfig {
            burn_window_slots: 2,
            burn_threshold: None,
            burn_min_outcomes: 1,
            ..SloConfig::default()
        };
        // One transfer misses early, then nothing: after the window
        // slides past the miss, burn returns to 0.
        let transfers = vec![info(0, 10.0, 0.0, Some(50.0))];
        let mut state = SloState::new(config, 1);
        let telem = WhyTelemetry::disabled();
        state.observe_slot(&obs(0, 100.0, 10, &[]), &transfers, &telem);
        assert!(state.burn_rate > 0.0);
        state.observe_slot(&obs(1, 100.0, 10, &[]), &transfers, &telem);
        state.observe_slot(&obs(2, 100.0, 10, &[]), &transfers, &telem);
        assert_eq!(state.burn_rate, 0.0);
        assert_eq!(state.missed, 1); // lifetime total unchanged
    }

    #[test]
    fn plan_p99_trips_only_with_enough_samples() {
        let config = SloConfig {
            plan_p99_ms: Some(1.0),
            plan_min_samples: 3,
            ..SloConfig::default()
        };
        let transfers = Vec::new();
        let mut state = SloState::new(config, 0);
        let telem = WhyTelemetry::disabled();
        let slow = 5_000_000; // 5 ms
        assert_eq!(
            state.observe_slot(&obs(0, 100.0, slow, &[]), &transfers, &telem),
            None
        );
        assert_eq!(
            state.observe_slot(&obs(1, 100.0, slow, &[]), &transfers, &telem),
            None
        );
        assert_eq!(
            state.observe_slot(&obs(2, 100.0, slow, &[]), &transfers, &telem),
            Some(TRIP_PLAN_P99)
        );
        assert!((state.plan_p99_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn deficit_tracks_pro_rata_promise() {
        let config = SloConfig {
            deficit_gbits: Some(30.0),
            ..SloConfig::default()
        };
        // 100 Gb due by 200 s, arriving at 0: slot 0 (ends 100 s)
        // promises 50 Gb. Delivering 10 leaves a 40 Gb deficit > 30.
        let transfers = vec![info(0, 100.0, 0.0, Some(200.0))];
        let mut state = SloState::new(config, 1);
        let telem = WhyTelemetry::disabled();
        let samples = [TransferSample {
            id: 0,
            full_rate_gbps: 0.1,
            live_rate_gbps: 0.1,
            delivered_gbits: 10.0,
            remaining_gbits: 90.0,
            completion_s: None,
            queued: false,
        }];
        let trip = state.observe_slot(&obs(0, 100.0, 10, &samples), &transfers, &telem);
        assert_eq!(trip, Some(TRIP_DEFICIT));
        assert!((state.deficit_gbits - 40.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_counts_outcomes() {
        let rec = owan_obs::Recorder::enabled();
        let telem = WhyTelemetry::new(&rec);
        let transfers = vec![
            info(0, 10.0, 0.0, Some(500.0)),
            info(1, 10.0, 0.0, Some(50.0)),
        ];
        let mut state = SloState::new(SloConfig::default(), 2);
        let samples = [done_sample(0, 90.0)];
        state.observe_slot(&obs(0, 100.0, 10, &samples), &transfers, &telem);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("slo.deadline_met"), Some(&1));
        assert_eq!(snap.counters.get("slo.deadline_missed"), Some(&1));
        assert!(snap.gauges.contains_key("slo.burn_rate"));
    }
}
